"""Markdown link checker for README.md and docs/ (CI docs job).

Validates every inline markdown link whose target is *internal*:

* ``[text](relative/path.md)`` — the path must exist, resolved against
  the linking file's directory;
* ``[text](relative/path.md#anchor)`` — the path must exist **and** the
  target file must contain a heading whose GitHub slug equals
  ``anchor``;
* ``[text](#anchor)`` — the same file must contain the heading.

External links (``http://``, ``https://``, ``mailto:``) are skipped —
CI must not depend on the network.  Bare URLs outside ``[]()`` syntax
are not checked.

Exit status 1 lists every dead link as ``file:line: target — reason``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documents whose links must stay alive.
DOCUMENTS = ("README.md", "CHANGES.md", "docs")

#: Inline links: [text](target) — images share the syntax via a leading !.
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """The GitHub anchor slug of a heading text.

    Lowercase; spaces become hyphens; everything that is not a word
    character, hyphen or space is dropped (inline code backticks and
    link syntax included); repeated headings get ``-1``, ``-2``, ...
    suffixes in document order.
    """
    # Strip inline markdown that does not contribute to the slug.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links -> text
    text = text.replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", text.strip().lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_anchors(path: Path) -> List[str]:
    """Every heading anchor a markdown file defines, in GitHub slug form."""
    seen: Dict[str, int] = {}
    anchors = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_PATTERN.match(line)
        if match:
            anchors.append(github_slug(match.group(2), seen))
    return anchors


def iter_links(path: Path) -> List[Tuple[int, str]]:
    """``(line_number, target)`` for every inline link in the file.

    Links inside fenced code blocks are skipped — code examples often
    contain bracketed indexing that only looks like a link.
    """
    links = []
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_PATTERN.finditer(line):
            links.append((number, match.group(1)))
    return links


def check_link(path: Path, target: str) -> str:
    """Return a failure reason for ``target`` linked from ``path``, or ''."""
    if target.startswith(_EXTERNAL_PREFIXES):
        return ""
    if target.startswith("#"):
        anchor = target[1:].lower()
        if anchor not in heading_anchors(path):
            return f"no heading with anchor #{anchor}"
        return ""
    raw, _, anchor = target.partition("#")
    resolved = (path.parent / raw).resolve()
    if not resolved.exists():
        return "file does not exist"
    if anchor:
        if resolved.suffix.lower() != ".md":
            return f"anchor #{anchor} into a non-markdown file"
        if anchor.lower() not in heading_anchors(resolved):
            return f"no heading with anchor #{anchor} in {raw}"
    return ""


def collect_documents() -> List[Path]:
    """The markdown files the checker covers."""
    documents: List[Path] = []
    for name in DOCUMENTS:
        path = REPO_ROOT / name
        if path.is_dir():
            documents.extend(sorted(path.glob("*.md")))
        elif path.exists():
            documents.append(path)
    return documents


def check_documents() -> List[str]:
    """Every dead link as ``file:line: target — reason``."""
    failures = []
    for path in collect_documents():
        for line, target in iter_links(path):
            reason = check_link(path, target)
            if reason:
                relative = path.relative_to(REPO_ROOT)
                failures.append(f"{relative}:{line}: {target} — {reason}")
    return failures


def main() -> int:
    documents = collect_documents()
    failures = check_documents()
    if failures:
        print(f"{len(failures)} dead link(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    total = sum(len(iter_links(path)) for path in documents)
    print(f"ok: {total} internal/external link(s) across {len(documents)} document(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
