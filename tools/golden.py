"""Record or check the scenario golden-trajectory files.

The authoritative logic lives in :mod:`repro.scenarios.golden`; this
script is the standalone entry point CI and developers call::

    PYTHONPATH=src python tools/golden.py check            # diff all goldens
    PYTHONPATH=src python tools/golden.py check fp-heavy   # just one
    PYTHONPATH=src python tools/golden.py record           # refresh all

``check`` exits non-zero on any drift and prints a unified diff per
drifted scenario, so an estimator change that silently moves a
trajectory fails the CI golden job with the exact floats that moved.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios.golden import (  # noqa: E402
    check_scenarios,
    record_scenarios,
    report_check_results,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="golden", description="Record or check scenario golden trajectories."
    )
    sub = parser.add_subparsers(dest="command", required=True)
    record = sub.add_parser("record", help="(re)write golden files")
    record.add_argument("names", nargs="*", help="scenarios to record (default: all)")
    check = sub.add_parser("check", help="replay scenarios and diff against goldens")
    check.add_argument("names", nargs="*", help="scenarios to check (default: all)")
    args = parser.parse_args(argv)

    if args.command == "record":
        for path in record_scenarios(args.names or None):
            print(f"recorded {path}")
        return 0

    failures = report_check_results(check_scenarios(args.names or None))
    if failures:
        print(
            f"\n{failures} golden file(s) drifted. If the change is intentional, "
            "re-record with 'python tools/golden.py record' and commit the diff.",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
