"""Keep the markdown documentation honest: runnable blocks + API coverage.

Two checks live here:

* **Executable docs** (the default): every fenced ```python block in
  README.md and docs/*.md must run (blocks within one file share a
  namespace, top to bottom, so docs can build examples progressively).
* **API coverage** (``--api-coverage``): every public symbol exported
  from a ``repro.*`` subpackage ``__init__`` (its ``__all__``) must be
  mentioned in ``docs/api.md`` — an export the reference never names is
  either undocumented surface or a leftover export, and both deserve a
  red build.

Used three ways:

* CI's docs job runs ``PYTHONPATH=src python tools/check_docs.py`` and
  ``PYTHONPATH=src python tools/check_docs.py --api-coverage``;
* ``tests/test_docs.py`` calls :func:`check_file` per document and
  :func:`api_coverage_failures` so a stale snippet or a missing export
  mention fails the tier-1 gate with a precise location.
"""

from __future__ import annotations

import argparse
import importlib
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documents whose python blocks must stay runnable.
DOCUMENTS = (
    "README.md",
    "docs/architecture.md",
    "docs/paper_mapping.md",
    "docs/api.md",
    "docs/scenarios.md",
    "docs/performance.md",
    "docs/serving.md",
    "docs/persistence.md",
    "docs/http.md",
)

#: Packages whose ``__all__`` must be covered by docs/api.md.
API_PACKAGES = (
    "repro",
    "repro.common",
    "repro.core",
    "repro.crowd",
    "repro.data",
    "repro.er",
    "repro.prioritization",
    "repro.streaming",
    "repro.serving",
    "repro.experiments",
    "repro.scenarios",
)

#: The document that must mention every public symbol.
API_REFERENCE = "docs/api.md"

_BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks(markdown: str) -> List[str]:
    """Return the contents of every fenced ```python block, in order."""
    return [match.group(1) for match in _BLOCK_PATTERN.finditer(markdown)]


def check_file(path: Path) -> int:
    """Execute every python block of one document in a shared namespace.

    Returns the number of blocks executed; raises on the first failing
    block with the document and block index in the message.
    """
    blocks = extract_blocks(path.read_text(encoding="utf-8"))
    # Blocks run as if pasted into a script, so ``__main__``-guarded
    # examples (the multiprocessing ones) are exercised too.
    namespace: dict = {"__name__": "__main__"}
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"{path}:block{index}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - the message is the point
            raise RuntimeError(
                f"documentation code block {index} in {path} failed: {error!r}"
            ) from error
    return len(blocks)


def public_api() -> Dict[str, List[str]]:
    """``{package: sorted __all__}`` for every package in ``API_PACKAGES``.

    A package without ``__all__`` is itself a failure — the coverage
    contract requires an explicit export list — reported by the caller.
    """
    exports: Dict[str, List[str]] = {}
    for package in API_PACKAGES:
        module = importlib.import_module(package)
        exports[package] = sorted(getattr(module, "__all__", []))
    return exports


def api_coverage_failures() -> List[str]:
    """Exported-but-undocumented symbols, as ``package.symbol`` strings.

    A symbol counts as documented when it appears as a whole word
    anywhere in ``docs/api.md`` (prose, table or code block) — the goal
    is that a reader searching the reference for any public name gets at
    least one hit.
    """
    text = (REPO_ROOT / API_REFERENCE).read_text(encoding="utf-8")
    words = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text))
    failures = []
    for package, symbols in public_api().items():
        if not symbols:
            failures.append(f"{package}.__all__ is missing or empty")
            continue
        for symbol in symbols:
            if symbol not in words:
                failures.append(f"{package}.{symbol}")
    return failures


def run_api_coverage() -> int:
    failures = api_coverage_failures()
    exports = public_api()
    total = sum(len(symbols) for symbols in exports.values())
    if failures:
        print(
            f"{len(failures)} public symbol(s) missing from {API_REFERENCE}:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"ok {API_REFERENCE}: covers all {total} exported symbols "
          f"across {len(exports)} packages")
    return 0


def run_documents() -> int:
    total = 0
    for name in DOCUMENTS:
        path = REPO_ROOT / name
        if not path.exists():
            print(f"MISSING {name}", file=sys.stderr)
            return 1
        count = check_file(path)
        total += count
        print(f"ok {name}: {count} python block(s)")
    if total == 0:
        print("no python blocks found — check the fence language tags", file=sys.stderr)
        return 1
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Execute doc code blocks and/or check API doc coverage."
    )
    parser.add_argument(
        "--api-coverage",
        action="store_true",
        help=f"check that every repro.* export is mentioned in {API_REFERENCE}",
    )
    args = parser.parse_args(argv)
    if args.api_coverage:
        return run_api_coverage()
    return run_documents()


if __name__ == "__main__":
    sys.exit(main())
