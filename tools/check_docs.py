"""Execute the ``python`` code blocks of the markdown documentation.

Keeps README.md and docs/*.md honest: every fenced ```python block must
run (blocks within one file share a namespace, top to bottom, so docs
can build examples progressively).  Used two ways:

* CI's docs job runs ``PYTHONPATH=src python tools/check_docs.py``;
* ``tests/test_docs.py`` calls :func:`check_file` per document so a
  stale snippet fails the tier-1 gate with a precise location.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documents whose python blocks must stay runnable.
DOCUMENTS = (
    "README.md",
    "docs/architecture.md",
    "docs/paper_mapping.md",
    "docs/api.md",
    "docs/scenarios.md",
    "docs/performance.md",
)

_BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks(markdown: str) -> List[str]:
    """Return the contents of every fenced ```python block, in order."""
    return [match.group(1) for match in _BLOCK_PATTERN.finditer(markdown)]


def check_file(path: Path) -> int:
    """Execute every python block of one document in a shared namespace.

    Returns the number of blocks executed; raises on the first failing
    block with the document and block index in the message.
    """
    blocks = extract_blocks(path.read_text(encoding="utf-8"))
    # Blocks run as if pasted into a script, so ``__main__``-guarded
    # examples (the multiprocessing ones) are exercised too.
    namespace: dict = {"__name__": "__main__"}
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"{path}:block{index}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - the message is the point
            raise RuntimeError(
                f"documentation code block {index} in {path} failed: {error!r}"
            ) from error
    return len(blocks)


def main() -> int:
    total = 0
    for name in DOCUMENTS:
        path = REPO_ROOT / name
        if not path.exists():
            print(f"MISSING {name}", file=sys.stderr)
            return 1
        count = check_file(path)
        total += count
        print(f"ok {name}: {count} python block(s)")
    if total == 0:
        print("no python blocks found — check the fence language tags", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
