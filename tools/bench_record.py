"""Record runner benchmarks into ``BENCH_runner.json`` (thin CLI wrapper).

Usage (from the repo root)::

    PYTHONPATH=src python tools/bench_record.py                 # full workload
    PYTHONPATH=src python tools/bench_record.py --smoke --check # CI smoke job

All logic lives in :mod:`repro.experiments.bench`; this wrapper only makes
the tool runnable without installing the package, mirroring
``tools/check_docs.py`` and ``tools/golden.py``.  The same entry point is
exposed as the ``repro bench`` CLI subcommand.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
