"""Workload builders shared by the per-figure experiment modules.

Each of the paper's real-world experiments is, from the estimators' point
of view, the same thing: a candidate item set with gold labels plus a crowd
with a particular error profile.  The builders here produce those
candidate sets — restaurant, product (entity-resolution pairs behind the
paper's similarity bands) and address (record-level errors) — at either the
paper's full cardinalities or scaled-down variants suitable for fast unit
tests.

Worker error profiles are calibrated to reproduce the qualitative regime
the paper reports for each dataset:

===========  ==============================  =====================================
dataset      paper observation               simulated crowd profile
===========  ==============================  =====================================
restaurant   "workers make a lot of false    moderate FN rate, relatively high FP
             positive errors"; VOTING          rate on the candidate band
             decreases over time
product      "more false negative errors";   high FN rate, small FP rate
             VOTING increases over time
address      "both false positives and       balanced FN and FP rates
             negatives in fair amounts"
===========  ==============================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crowd.worker import WorkerProfile
from repro.data.address import AddressDatasetConfig, generate_address_dataset
from repro.data.pairs import PairDataset
from repro.data.product import ProductDatasetConfig, generate_product_dataset
from repro.data.record import Dataset
from repro.data.restaurant import RestaurantDatasetConfig, generate_restaurant_dataset
from repro.er.crowder import CrowdERPipeline, CrowdERResult
from repro.er.heuristic import PRODUCT_BAND, RESTAURANT_BAND, HeuristicBand


@dataclass
class Workload:
    """A candidate item set ready for crowd simulation.

    Attributes
    ----------
    name:
        Workload name (``"restaurant"``, ``"product"``, ``"address"``).
    items:
        The flat item dataset the crowd votes on (pairs flattened to items
        for entity resolution).
    worker_profile:
        The calibrated crowd error profile for this workload.
    true_errors:
        ``|R_dirty|`` within the candidate set (the ground truth the
        estimates should converge to).
    pipeline_result:
        The CrowdER stage-one output for pair workloads (``None`` for the
        address workload).
    metadata:
        Cardinalities and configuration for reporting.
    """

    name: str
    items: Dataset
    worker_profile: WorkerProfile
    true_errors: int
    pipeline_result: Optional[CrowdERResult] = None
    metadata: Dict[str, object] = None

    def __post_init__(self) -> None:
        self.metadata = dict(self.metadata or {})


#: Crowd profiles calibrated per dataset (see the module docstring).
RESTAURANT_CROWD = WorkerProfile(false_negative_rate=0.20, false_positive_rate=0.03)
PRODUCT_CROWD = WorkerProfile(false_negative_rate=0.35, false_positive_rate=0.005)
ADDRESS_CROWD = WorkerProfile(false_negative_rate=0.20, false_positive_rate=0.02)


def restaurant_workload(
    *,
    scale: float = 1.0,
    seed: int = 7,
    band: HeuristicBand = RESTAURANT_BAND,
) -> Workload:
    """Build the restaurant entity-resolution workload (Figure 3).

    Parameters
    ----------
    scale:
        Fraction of the paper's record count to generate (1.0 reproduces
        858 records; smaller values give faster candidate generation for
        tests).
    seed:
        Generator seed.
    band:
        Similarity ambiguity band (the paper's is (0.5, 0.9)).
    """
    num_records = max(20, int(round(858 * scale)))
    num_duplicated = max(2, int(round(106 * scale)))
    config = RestaurantDatasetConfig(
        num_records=num_records,
        num_duplicated_entities=min(num_duplicated, num_records // 2),
        seed=seed,
    )
    dataset = generate_restaurant_dataset(config, seed=seed)
    pipeline = CrowdERPipeline(band, measure="edit", fields=("name", "address", "city"))
    result = pipeline.run(dataset)
    items = result.candidates.as_item_dataset()
    return Workload(
        name="restaurant",
        items=items,
        worker_profile=RESTAURANT_CROWD,
        true_errors=items.num_dirty,
        pipeline_result=result,
        metadata={
            "num_records": num_records,
            "num_candidate_pairs": len(result.candidates),
            "candidate_duplicates": result.candidates.num_duplicates,
            "band": (band.alpha, band.beta),
            "paper_reference": {"candidate_pairs": 1264, "candidate_duplicates": 12},
        },
    )


def product_workload(
    *,
    scale: float = 0.25,
    seed: int = 11,
    band: HeuristicBand = PRODUCT_BAND,
) -> Workload:
    """Build the product entity-resolution workload (Figure 4).

    The paper's full catalogues (2336 x 1363 records) require blocking to
    score; the default ``scale`` keeps stage one fast while preserving the
    FN-heavy regime.  Pass ``scale=1.0`` to reproduce the full
    cardinalities.
    """
    config = ProductDatasetConfig(
        num_amazon=max(20, int(round(2336 * scale))),
        num_google=max(20, int(round(1363 * scale))),
        num_matches=max(5, int(round(607 * scale))),
        seed=seed,
    )
    dataset = generate_product_dataset(config, seed=seed)
    pipeline = CrowdERPipeline(
        band,
        measure="edit",
        fields=("name1", "vendor"),
        use_blocking=True,
        cross_source=("amazon", "google"),
    )
    result = pipeline.run(dataset)
    items = result.candidates.as_item_dataset()
    return Workload(
        name="product",
        items=items,
        worker_profile=PRODUCT_CROWD,
        true_errors=items.num_dirty,
        pipeline_result=result,
        metadata={
            "num_amazon": config.num_amazon,
            "num_google": config.num_google,
            "num_candidate_pairs": len(result.candidates),
            "candidate_duplicates": result.candidates.num_duplicates,
            "band": (band.alpha, band.beta),
            "paper_reference": {"candidate_pairs": 13022, "candidate_duplicates": 607},
        },
    )


def address_workload(*, scale: float = 1.0, seed: int = 13) -> Workload:
    """Build the address malformed-record workload (Figure 5).

    No prioritisation is applied, matching the paper ("the number of
    candidate entries is reasonable").
    """
    num_records = max(20, int(round(1000 * scale)))
    num_errors = max(2, int(round(90 * scale)))
    config = AddressDatasetConfig(
        num_records=num_records,
        num_errors=min(num_errors, num_records),
        seed=seed,
    )
    dataset = generate_address_dataset(config, seed=seed)
    return Workload(
        name="address",
        items=dataset,
        worker_profile=ADDRESS_CROWD,
        true_errors=dataset.num_dirty,
        pipeline_result=None,
        metadata={
            "num_records": num_records,
            "num_errors": dataset.num_dirty,
            "paper_reference": {"records": 1000, "errors": 90},
        },
    )
