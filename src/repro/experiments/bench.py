"""Recorded runner benchmarks: the repo's performance trajectory.

``repro bench`` (or ``python tools/bench_record.py``) times the
permutation-averaged estimation runner on a pinned workload through both
engines — the classic one-permutation-at-a-time ``serial`` sweep loop and
the cross-permutation ``batch`` tensor engine — verifies the two produce
bit-identical estimates, and appends the measurement to
``BENCH_runner.json``.  The file accumulates machine info, workload
parameters, wall times and speedups per run, so performance drift is a
diff instead of folklore.

Regression checking is **relative**: wall times are machine-specific, but
the batch-vs-serial speedup ratio is not, so ``--check`` fails when the
measured speedup of a run drops below ``baseline_speedup / factor``
(default factor 3).  The first recorded entry of a workload becomes its
baseline; CI runs the scaled-down ``smoke`` workload on every push and
uploads the updated record as an artifact.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.labels import CLEAN, DIRTY, UNSEEN
from repro.common.validation import check_int, check_positive
from repro.crowd.response_matrix import ResponseMatrix
from repro.experiments.runner import EstimationRunner, RunnerConfig

#: Record-file format version (bump when the layout changes).
FORMAT_VERSION = 1

#: Default record location (repo root when run from there).
DEFAULT_RECORD = "BENCH_runner.json"

#: The estimator set of the recorded workloads.
RUNNER_ESTIMATORS = (
    "voting",
    "chao92",
    "vchao92",
    "extrapolation",
    "switch",
    "switch_total",
)


@dataclass(frozen=True)
class BenchWorkload:
    """One pinned runner workload (matrix shape x permutations x checkpoints)."""

    name: str
    num_items: int
    num_columns: int
    num_permutations: int
    num_checkpoints: int
    seed: int = 17
    estimators: Tuple[str, ...] = RUNNER_ESTIMATORS

    def build_matrix(self) -> ResponseMatrix:
        """The workload's vote matrix (identical for every run of the name)."""
        rng = np.random.default_rng(self.seed)
        votes = rng.choice(
            [UNSEEN, CLEAN, DIRTY],
            size=(self.num_items, self.num_columns),
            p=[0.85, 0.05, 0.10],
        ).astype(np.int8)
        return ResponseMatrix.from_array(votes)


#: Registered workloads: the acceptance-criterion shape and a CI-size one.
WORKLOADS: Dict[str, BenchWorkload] = {
    "full": BenchWorkload(
        name="runner_5000x200",
        num_items=5000,
        num_columns=200,
        num_permutations=10,
        num_checkpoints=20,
    ),
    "smoke": BenchWorkload(
        name="runner_smoke_1500x120",
        num_items=1500,
        num_columns=120,
        num_permutations=6,
        num_checkpoints=12,
    ),
}


def machine_info() -> Dict[str, object]:
    """The environment fingerprint stored with every entry."""
    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        usable_cpus = os.cpu_count() or 1
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "usable_cpus": usable_cpus,
    }


def _time_run(runner: EstimationRunner, matrix: ResponseMatrix, repeats: int):
    """Best-of-``repeats`` wall time plus the (identical) last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = runner.run(matrix)
        best = min(best, time.perf_counter() - start)
    return best, result


def _series_values(result) -> Dict[str, List[tuple]]:
    return {
        name: [point.values for point in series.points]
        for name, series in result.series.items()
    }


def run_workload(
    workload: BenchWorkload, *, n_jobs: int = 1, repeats: int = 2
) -> Dict[str, object]:
    """Time one workload through both engines and build a record entry.

    Raises ``RuntimeError`` if the engines disagree on a single estimate —
    a benchmark that silently measures a wrong result is worse than none.
    """
    check_int(n_jobs, "n_jobs", minimum=1)
    check_int(repeats, "repeats", minimum=1)
    matrix = workload.build_matrix()
    shared = dict(
        num_permutations=workload.num_permutations,
        num_checkpoints=workload.num_checkpoints,
        seed=3,
    )
    estimators = list(workload.estimators)
    # Warm-up outside the timed region (imports, registry, allocator).
    EstimationRunner(estimators, RunnerConfig(num_permutations=1, num_checkpoints=2)).run(
        matrix.prefix(min(10, matrix.num_columns))
    )

    serial_seconds, serial_result = _time_run(
        EstimationRunner(estimators, RunnerConfig(engine="serial", **shared)),
        matrix,
        repeats,
    )
    batch_seconds, batch_result = _time_run(
        EstimationRunner(estimators, RunnerConfig(engine="batch", **shared)),
        matrix,
        repeats,
    )
    if _series_values(serial_result) != _series_values(batch_result):
        raise RuntimeError(
            "serial and batch engines disagree — refusing to record the benchmark"
        )

    parallel_seconds = None
    if n_jobs > 1:
        parallel_seconds, parallel_result = _time_run(
            EstimationRunner(
                estimators, RunnerConfig(engine="batch", n_jobs=n_jobs, **shared)
            ),
            matrix,
            repeats,
        )
        if _series_values(parallel_result) != _series_values(batch_result):
            raise RuntimeError(
                "parallel batch engine disagrees — refusing to record the benchmark"
            )

    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": asdict(workload),
        "timings_s": {
            "serial_engine": round(serial_seconds, 4),
            "batch_engine": round(batch_seconds, 4),
            "batch_engine_parallel": (
                round(parallel_seconds, 4) if parallel_seconds is not None else None
            ),
            "n_jobs": n_jobs,
            "repeats": repeats,
        },
        "speedups": {
            "batch_vs_serial": round(serial_seconds / batch_seconds, 3),
            "parallel_vs_serial": (
                round(serial_seconds / parallel_seconds, 3)
                if parallel_seconds
                else None
            ),
        },
    }


def load_record(path: Path) -> Dict[str, object]:
    """Read (or initialise) the benchmark record document."""
    if path.exists():
        record = json.loads(path.read_text(encoding="utf-8"))
        if record.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported benchmark record version in {path}: "
                f"{record.get('format_version')!r}"
            )
        return record
    return {
        "format_version": FORMAT_VERSION,
        "note": (
            "Performance trajectory of the estimation runner; append entries "
            "with `repro bench`. Regression checks compare batch-vs-serial "
            "speedup ratios (machine-independent), not raw wall times."
        ),
        "workloads": {},
    }


def update_record(
    record: Dict[str, object], entry: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """Append ``entry`` to its workload's history; returns the baseline.

    The first entry recorded for a workload becomes the baseline the
    regression check compares against (``None`` is returned for it).
    """
    name = entry["params"]["name"]
    workloads = record.setdefault("workloads", {})
    slot = workloads.setdefault(name, {"baseline": None, "history": []})
    baseline = slot["baseline"]
    if baseline is None:
        slot["baseline"] = entry
    slot["history"].append(entry)
    return baseline


def save_record(record: Dict[str, object], path: Path) -> None:
    """Write the record with stable formatting (diff-friendly)."""
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def regression_failure(
    entry: Dict[str, object],
    baseline: Optional[Dict[str, object]],
    *,
    factor: float = 3.0,
) -> Optional[str]:
    """A message when ``entry`` regressed >``factor``x against ``baseline``.

    Compares speedup *ratios*, which transfer across machines; ``None``
    means no regression (or no baseline to compare against yet).
    """
    check_positive(factor, "factor")
    if baseline is None:
        return None
    current = float(entry["speedups"]["batch_vs_serial"])
    recorded = float(baseline["speedups"]["batch_vs_serial"])
    floor = recorded / factor
    if current < floor:
        return (
            f"batch-engine speedup regressed: {current:.2f}x vs the recorded "
            f"baseline {recorded:.2f}x (floor {floor:.2f}x at factor {factor})"
        )
    return None


def format_summary(entry: Dict[str, object]) -> str:
    """The one-line speedup summary printed in CI logs."""
    timings = entry["timings_s"]
    speedups = entry["speedups"]
    parallel = (
        f", n_jobs={timings['n_jobs']} {timings['batch_engine_parallel']:.3f}s "
        f"({speedups['parallel_vs_serial']:.2f}x)"
        if timings["batch_engine_parallel"] is not None
        else ""
    )
    return (
        f"BENCH {entry['params']['name']}: serial {timings['serial_engine']:.3f}s, "
        f"batch {timings['batch_engine']:.3f}s "
        f"({speedups['batch_vs_serial']:.2f}x){parallel} "
        f"on {entry['machine']['usable_cpus']} usable cpu(s)"
    )


def run_and_record(
    *,
    workload: str = "full",
    n_jobs: int = 1,
    repeats: int = 2,
    output: Optional[str] = None,
    check: bool = False,
    factor: float = 3.0,
    dry_run: bool = False,
) -> int:
    """The ``repro bench`` implementation.  Returns a process exit code."""
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; available: {sorted(WORKLOADS)}"
        )
    path = Path(output or DEFAULT_RECORD)
    record = load_record(path)
    entry = run_workload(WORKLOADS[workload], n_jobs=n_jobs, repeats=repeats)
    baseline = update_record(record, entry)
    print(format_summary(entry))
    if not dry_run:
        save_record(record, path)
        print(f"recorded -> {path}")
    failure = regression_failure(entry, baseline, factor=factor) if check else None
    if failure:
        print(f"REGRESSION: {failure}")
        return 1
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to ``parser``.

    The single definition behind both entry points — the ``repro bench``
    subcommand and ``tools/bench_record.py`` — so workload names and the
    default record path cannot drift between them.
    """
    which = parser.add_mutually_exclusive_group()
    which.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="full",
        help="which pinned workload to time",
    )
    which.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --workload smoke (the CI-sized workload)",
    )
    parser.add_argument("--n-jobs", type=int, default=1, help="also time the chunked parallel dispatch")
    parser.add_argument("--repeats", type=int, default=2, help="best-of-N timing repeats")
    parser.add_argument("--output", default=DEFAULT_RECORD, help="record file to update")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the speedup regressed more than --factor vs the baseline",
    )
    parser.add_argument(
        "--factor", type=float, default=3.0,
        help="allowed relative regression factor for --check",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="measure and print without writing"
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed bench invocation (shared by both entry points)."""
    return run_and_record(
        workload="smoke" if args.smoke else args.workload,
        n_jobs=args.n_jobs,
        repeats=args.repeats,
        output=args.output,
        check=args.check,
        factor=args.factor,
        dry_run=args.dry_run,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_record",
        description="Run the pinned runner workloads and update BENCH_runner.json.",
    )
    add_bench_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point shared by ``repro bench`` and ``tools/bench_record.py``."""
    return run_from_args(build_parser().parse_args(argv))
