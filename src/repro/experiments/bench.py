"""Recorded benchmarks: the repo's performance trajectory.

``repro bench`` (or ``python tools/bench_record.py``) times pinned
workloads and appends the measurements to ``BENCH_runner.json``.  The
file accumulates machine info, workload parameters, wall times and
speedups per run, so performance drift is a diff instead of folklore.

Several workload families are recorded:

* **runner** workloads time the permutation-averaged estimation runner
  through both engines — the classic one-permutation-at-a-time
  ``serial`` sweep loop and the cross-permutation ``batch`` tensor
  engine — and verify the two produce bit-identical estimates;
* **serving** workloads time the multi-tenant serving layer
  (:class:`repro.serving.EstimationService`): batched idempotent
  ingestion across many concurrent sessions, cached estimate reads and a
  full snapshot/restore cycle, reported as columns/s and votes/s;
* **wal** workloads time log-structured durable ingestion end to end —
  ingest through the write-ahead log, simulate a crash, recover by log
  replay and verify the recovered estimates are bit-identical — then run
  the snapshot-per-save baseline under a wall-clock budget derived from
  the WAL time, recording how many sessions the baseline completed (the
  ``wal-100k`` shape is exactly the workload the old full-snapshot path
  cannot finish inside the budget);
* **proc-shards** workloads time hash-sharded ingestion through the
  per-shard worker processes (:class:`repro.serving.ProcessShardedService`)
  against the single-process :class:`repro.streaming.ShardedEstimationService`
  over the same deterministic workload, verify the two topologies produce
  bit-identical estimate reports, and record the machine-specific scaling
  ratio (no regression gate — single-core machines cannot show a win).

Regression checking is **relative**: wall times are machine-specific, but
the batch-vs-serial speedup ratio is not, so ``--check`` fails when the
measured speedup of a runner run drops below ``baseline_speedup /
factor`` (default factor 3; serving entries record throughput only and
are exempt).  The first recorded entry of a workload becomes its
baseline; CI runs the scaled-down ``smoke`` workload on every push and
uploads the updated record as an artifact.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.common.labels import CLEAN, DIRTY, UNSEEN
from repro.common.validation import check_int, check_positive
from repro.core.backend import get_backend
from repro.crowd.response_matrix import ResponseMatrix
from repro.experiments.runner import EstimationRunner, RunnerConfig

#: Record-file format version (bump when the layout changes).
FORMAT_VERSION = 1

#: Default record location (repo root when run from there).
DEFAULT_RECORD = "BENCH_runner.json"

#: The estimator set of the recorded workloads.
RUNNER_ESTIMATORS = (
    "voting",
    "chao92",
    "vchao92",
    "extrapolation",
    "switch",
    "switch_total",
)


@dataclass(frozen=True)
class BenchWorkload:
    """One pinned runner workload (matrix shape x permutations x checkpoints)."""

    name: str
    num_items: int
    num_columns: int
    num_permutations: int
    num_checkpoints: int
    seed: int = 17
    estimators: Tuple[str, ...] = RUNNER_ESTIMATORS

    def build_matrix(self) -> ResponseMatrix:
        """The workload's vote matrix (identical for every run of the name)."""
        rng = np.random.default_rng(self.seed)
        votes = rng.choice(
            [UNSEEN, CLEAN, DIRTY],
            size=(self.num_items, self.num_columns),
            p=[0.85, 0.05, 0.10],
        ).astype(np.int8)
        return ResponseMatrix.from_array(votes)


#: Registered runner workloads: the acceptance-criterion shape, a CI-size one,
#: and the wide sweeps (R >= 32) where the (R, N, K) tensor engine and the
#: compiled scan kernels are meant to pay off.
WORKLOADS: Dict[str, BenchWorkload] = {
    "full": BenchWorkload(
        name="runner_5000x200",
        num_items=5000,
        num_columns=200,
        num_permutations=10,
        num_checkpoints=20,
    ),
    "smoke": BenchWorkload(
        name="runner_smoke_1500x120",
        num_items=1500,
        num_columns=120,
        num_permutations=6,
        num_checkpoints=12,
    ),
    "wide": BenchWorkload(
        name="runner_wide_3000x200x32",
        num_items=3000,
        num_columns=200,
        num_permutations=32,
        num_checkpoints=20,
    ),
    "wide-smoke": BenchWorkload(
        name="runner_wide_smoke_800x100x32",
        num_items=800,
        num_columns=100,
        num_permutations=32,
        num_checkpoints=10,
    ),
}


@dataclass(frozen=True)
class ServingWorkload:
    """One pinned multi-session serving workload.

    ``num_sessions`` tenants each ingest ``num_columns`` task columns in
    batches of ``batch_columns`` (every batch carrying a ``(source,
    sequence)`` idempotency pair, with one duplicate delivery per batch to
    exercise the no-op path), read estimates after every batch plus one
    guaranteed-cached re-read, and finally round-trip through
    snapshot/restore.
    """

    name: str
    num_sessions: int
    num_items: int
    num_columns: int
    items_per_column: int = 12
    batch_columns: int = 10
    seed: int = 23
    estimators: Tuple[str, ...] = ("voting", "chao92", "switch_total")

    def build_columns(self) -> List[List[Dict[int, int]]]:
        """Per-session column batches (identical for every run of the name)."""
        rng = np.random.default_rng(self.seed)
        sessions = []
        for _ in range(self.num_sessions):
            columns = []
            for _ in range(self.num_columns):
                items = rng.choice(
                    self.num_items, size=self.items_per_column, replace=False
                )
                votes = rng.choice([CLEAN, DIRTY], size=self.items_per_column, p=[0.6, 0.4])
                columns.append(
                    {int(item): int(vote) for item, vote in zip(items, votes)}
                )
            sessions.append(columns)
        return sessions


#: Registered serving workloads (ingestion-throughput family).
SERVING_WORKLOADS: Dict[str, ServingWorkload] = {
    "serving": ServingWorkload(
        name="serving_16x240",
        num_sessions=16,
        num_items=2000,
        num_columns=240,
    ),
    "serving-smoke": ServingWorkload(
        name="serving_smoke_6x80",
        num_sessions=6,
        num_items=600,
        num_columns=80,
    ),
}


@dataclass(frozen=True)
class WalWorkload:
    """One pinned durable-ingestion workload (WAL vs snapshot-per-save).

    ``num_sessions`` sessions are created and fed ``num_batches`` batches
    of ``columns_per_batch`` task columns each through a
    :class:`~repro.streaming.store.DirectorySessionStore` write-ahead
    log, with ``max_active`` bounding live memory (eviction is free under
    a WAL).  A crash is then simulated — the service and its in-memory
    sessions are dropped — and a sample of ``verify_sample`` sessions is
    recovered by snapshot + log replay and checked **bit-identical**
    against the estimates recorded live.  Finally the snapshot-per-save
    baseline (the pre-WAL durable path: a full npz snapshot after every
    mutation) runs the same ingestion under a wall-clock budget of
    ``max(wal_time * baseline_budget_factor, baseline_budget_floor_s)``
    seconds, recording how many sessions it completed.

    Columns are a pure arithmetic function of (session, batch, column) —
    no RNG state to carry — so any subset of sessions can be regenerated
    independently for verification.
    """

    name: str
    num_sessions: int
    num_items: int = 30
    num_batches: int = 4
    columns_per_batch: int = 3
    items_per_column: int = 8
    max_active: int = 256
    verify_sample: int = 25
    baseline_budget_factor: float = 3.0
    baseline_budget_floor_s: float = 5.0
    estimators: Tuple[str, ...] = ("voting", "chao92")

    def session_name(self, session_index: int) -> str:
        return f"wal-{session_index:06d}"

    def batch(self, session_index: int, batch_index: int) -> List[Dict[int, int]]:
        """The batch's columns, regenerable for any session independently."""
        columns = []
        for column_index in range(self.columns_per_batch):
            base = (
                session_index * 7919
                + batch_index * 104729
                + column_index * 1299709
            )
            columns.append(
                {
                    (base + slot * 17) % self.num_items: (
                        CLEAN if (base >> slot) & 1 else DIRTY
                    )
                    for slot in range(self.items_per_column)
                }
            )
        return columns

    def verify_indexes(self) -> List[int]:
        """Evenly spread sample of sessions to recover and verify."""
        sample = min(self.verify_sample, self.num_sessions)
        step = max(1, self.num_sessions // sample)
        return list(range(0, self.num_sessions, step))[:sample]


#: Registered WAL workloads: the CI-sized shape and the acceptance-criterion
#: 100k-session shape the snapshot-per-save baseline cannot complete.
WAL_WORKLOADS: Dict[str, WalWorkload] = {
    "wal-smoke": WalWorkload(
        name="wal_smoke_400x12",
        num_sessions=400,
    ),
    "wal-100k": WalWorkload(
        name="wal_100000x12",
        num_sessions=100_000,
        baseline_budget_factor=2.0,
        baseline_budget_floor_s=30.0,
    ),
}


@dataclass(frozen=True)
class HttpWorkload:
    """One pinned HTTP serving workload (synthetic worker fleet).

    A real :class:`~repro.serving.http.HttpServingServer` is booted
    in-process over an in-memory store (so the numbers isolate the wire
    path, not the disk), and a :class:`~repro.serving.loadgen.FleetConfig`
    worker fleet drives it concurrently through the urllib
    :class:`~repro.serving.http.SessionClient` — bursty arrivals,
    deliberate duplicate re-sends and reordered deliveries included.
    Before anything is recorded, the served estimates are checked
    **bit-identical** against :func:`replay_applied_batches` replaying the
    acknowledged batches through plain sessions; a throughput number for
    a server that loses or double-applies batches is worse than none.

    The recorded entry carries multi-client throughput (requests/s,
    columns/s) and the request-latency tail (p50/p95/p99 ms).  Like the
    serving family it records machine-specific numbers and therefore has
    no ``speedups`` ratio and no regression gate.
    """

    name: str
    num_sessions: int = 2
    num_workers: int = 6
    num_items: int = 100
    batches_per_worker: int = 5
    columns_per_batch: int = 3
    items_per_column: int = 10
    workers_per_burst: int = 4
    burst_gap_s: float = 0.0
    duplicate_every: int = 3
    reorder_every: int = 4
    estimators: Tuple[str, ...] = ("voting", "chao92", "switch_total")
    seed: int = 7


#: Registered HTTP workloads: the CI-sized smoke shape and the heavier
#: multi-burst load shape behind the recorded latency tail.
HTTP_WORKLOADS: Dict[str, HttpWorkload] = {
    "http-smoke": HttpWorkload(
        name="http_smoke_2x6",
    ),
    "http-load": HttpWorkload(
        name="http_load_4x16",
        num_sessions=4,
        num_workers=16,
        num_items=250,
        batches_per_worker=12,
        columns_per_batch=4,
        items_per_column=12,
        workers_per_burst=4,
        burst_gap_s=0.05,
        reorder_every=5,
    ),
}


@dataclass(frozen=True)
class ProcShardsWorkload:
    """One pinned process-sharding workload (worker processes vs one process).

    ``num_sessions`` sessions are spread over ``num_shards`` shards by the
    sha256 routing both services share and fed ``num_batches`` batches of
    ``columns_per_batch`` columns each from ``threads`` concurrent client
    threads — first through the single-process
    :class:`~repro.streaming.ShardedEstimationService`, then through the
    :class:`~repro.serving.ProcessShardedService` per-shard worker
    processes over a fresh root.  Before anything is recorded every
    session's estimate report is checked **bit-identical** between the
    two topologies.

    Columns are a pure arithmetic function of (session, batch, column) in
    the WAL-workload style, so both runs ingest the same bytes without
    carrying RNG state.  Wall times are machine-specific, so the entry
    records a ``scaling`` section (not ``speedups``) and carries no
    regression gate — a single-core machine cannot show a multi-process
    win.
    """

    name: str
    num_shards: int = 4
    num_sessions: int = 16
    num_items: int = 30
    num_batches: int = 6
    columns_per_batch: int = 4
    items_per_column: int = 8
    threads: int = 4
    estimators: Tuple[str, ...] = ("voting", "chao92")

    def session_name(self, session_index: int) -> str:
        return f"tenant-{session_index:04d}"

    def batch(self, session_index: int, batch_index: int) -> List[Dict[int, int]]:
        """The batch's columns, regenerable for any session independently."""
        columns = []
        for column_index in range(self.columns_per_batch):
            base = (
                session_index * 7919
                + batch_index * 104729
                + column_index * 1299709
            )
            columns.append(
                {
                    (base + slot * 17) % self.num_items: (
                        CLEAN if (base >> slot) & 1 else DIRTY
                    )
                    for slot in range(self.items_per_column)
                }
            )
        return columns


#: Registered process-sharding workloads: the CI-sized smoke shape and the
#: heavier shape behind the recorded multi-core scaling ratio.
PROC_SHARDS_WORKLOADS: Dict[str, ProcShardsWorkload] = {
    "proc-shards": ProcShardsWorkload(
        name="proc_shards_4x32",
        num_shards=4,
        num_sessions=32,
        num_batches=10,
        threads=8,
    ),
    "proc-shards-smoke": ProcShardsWorkload(
        name="proc_shards_smoke_2x8",
        num_shards=2,
        num_sessions=8,
        num_batches=4,
        threads=4,
    ),
}


def machine_info() -> Dict[str, object]:
    """The environment fingerprint stored with every entry."""
    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        usable_cpus = os.cpu_count() or 1
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "usable_cpus": usable_cpus,
    }


def _time_run(runner: EstimationRunner, matrix: ResponseMatrix, repeats: int):
    """Best-of-``repeats`` wall time plus the (identical) last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = runner.run(matrix)
        best = min(best, time.perf_counter() - start)
    return best, result


def _series_values(result) -> Dict[str, List[tuple]]:
    return {
        name: [point.values for point in series.points]
        for name, series in result.series.items()
    }


def run_workload(
    workload: BenchWorkload,
    *,
    n_jobs: int = 1,
    repeats: int = 2,
    backend: "Optional[str]" = None,
) -> Dict[str, object]:
    """Time one workload through both engines and build a record entry.

    ``backend`` selects the array backend the *batch* engine runs on
    (``None`` = ``$REPRO_BACKEND`` or numpy); the serial engine always runs
    the numpy reference, so the mandatory serial-vs-batch equality check is
    also a cross-backend bit-identity verification.  When a non-numpy
    backend is selected the numpy batch engine is timed as well, giving the
    like-for-like ``backend_vs_numpy_batch`` speedup.

    Raises ``RuntimeError`` if the engines disagree on a single estimate —
    a benchmark that silently measures a wrong result is worse than none.
    """
    check_int(n_jobs, "n_jobs", minimum=1)
    check_int(repeats, "repeats", minimum=1)
    # Resolve up front: an unknown/unavailable backend must fail before any
    # timing work, and the entry records the resolved name, not None.
    backend_name = get_backend(backend).name
    matrix = workload.build_matrix()
    shared = dict(
        num_permutations=workload.num_permutations,
        num_checkpoints=workload.num_checkpoints,
        seed=3,
    )
    estimators = list(workload.estimators)
    # Warm-up outside the timed region (imports, registry, allocator, and —
    # for the numba backend — JIT compilation of the scan kernels).
    EstimationRunner(
        estimators, RunnerConfig(num_permutations=1, num_checkpoints=2, backend=backend)
    ).run(matrix.prefix(min(10, matrix.num_columns)))

    serial_seconds, serial_result = _time_run(
        EstimationRunner(estimators, RunnerConfig(engine="serial", **shared)),
        matrix,
        repeats,
    )
    batch_seconds, batch_result = _time_run(
        EstimationRunner(
            estimators, RunnerConfig(engine="batch", backend=backend, **shared)
        ),
        matrix,
        repeats,
    )
    if _series_values(serial_result) != _series_values(batch_result):
        raise RuntimeError(
            f"serial and batch engines disagree (backend {backend_name!r}) — "
            "refusing to record the benchmark"
        )

    numpy_batch_seconds = None
    if backend_name != "numpy":
        numpy_batch_seconds, numpy_batch_result = _time_run(
            EstimationRunner(
                estimators, RunnerConfig(engine="batch", backend="numpy", **shared)
            ),
            matrix,
            repeats,
        )
        if _series_values(numpy_batch_result) != _series_values(batch_result):
            raise RuntimeError(
                f"numpy and {backend_name!r} batch engines disagree — "
                "refusing to record the benchmark"
            )

    parallel_seconds = None
    if n_jobs > 1:
        parallel_seconds, parallel_result = _time_run(
            EstimationRunner(
                estimators,
                RunnerConfig(engine="batch", n_jobs=n_jobs, backend=backend, **shared),
            ),
            matrix,
            repeats,
        )
        if _series_values(parallel_result) != _series_values(batch_result):
            raise RuntimeError(
                "parallel batch engine disagrees — refusing to record the benchmark"
            )

    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": asdict(workload),
        "backend": backend_name,
        "timings_s": {
            "serial_engine": round(serial_seconds, 4),
            "batch_engine": round(batch_seconds, 4),
            "batch_engine_numpy": (
                round(numpy_batch_seconds, 4)
                if numpy_batch_seconds is not None
                else None
            ),
            "batch_engine_parallel": (
                round(parallel_seconds, 4) if parallel_seconds is not None else None
            ),
            "n_jobs": n_jobs,
            "repeats": repeats,
        },
        "speedups": {
            "batch_vs_serial": round(serial_seconds / batch_seconds, 3),
            "backend_vs_numpy_batch": (
                round(numpy_batch_seconds / batch_seconds, 3)
                if numpy_batch_seconds is not None
                else None
            ),
            "parallel_vs_serial": (
                round(serial_seconds / parallel_seconds, 3)
                if parallel_seconds
                else None
            ),
        },
    }


def run_serving_workload(
    workload: ServingWorkload, *, repeats: int = 2
) -> Dict[str, object]:
    """Time one multi-session serving workload and build a record entry.

    The measured loop is the operational hot path: batched ingestion with
    idempotency bookkeeping (including one duplicate delivery per batch,
    which must be a fast no-op), an estimate read after every batch plus a
    cached re-read, and one final snapshot/restore round trip per session.
    Raises ``RuntimeError`` if a restored session disagrees with its live
    original — a throughput number for a broken serving layer is worse
    than none.
    """
    check_int(repeats, "repeats", minimum=1)
    from repro.streaming import EstimationService, MemorySessionStore

    per_session = workload.build_columns()
    batches = max(1, -(-workload.num_columns // workload.batch_columns))
    best_ingest = float("inf")
    best_cycle = float("inf")
    cache_hit_rate = 0.0
    for _ in range(repeats):
        gc.collect()
        service = EstimationService(MemorySessionStore())
        for session_index in range(workload.num_sessions):
            service.create_session(
                f"tenant-{session_index:03d}",
                range(workload.num_items),
                list(workload.estimators),
                keep_votes=False,
            )
        start = time.perf_counter()
        for batch_index in range(batches):
            low = batch_index * workload.batch_columns
            high = min(low + workload.batch_columns, workload.num_columns)
            for session_index in range(workload.num_sessions):
                name = f"tenant-{session_index:03d}"
                batch = per_session[session_index][low:high]
                service.ingest(
                    name, batch, source="bench", sequence=batch_index + 1
                )
                # A retried delivery of the same batch must be a no-op.
                duplicate = service.ingest(
                    name, batch, source="bench", sequence=batch_index + 1
                )
                if not duplicate.duplicate:
                    raise RuntimeError("duplicate delivery was not dropped")
                service.estimates(name)
                service.estimates(name)  # guaranteed cache hit
        best_ingest = min(best_ingest, time.perf_counter() - start)
        cache_hit_rate = service.estimate_cache_hits / service.estimates_served

        start = time.perf_counter()
        for session_index in range(workload.num_sessions):
            name = f"tenant-{session_index:03d}"
            before = service.estimates(name)
            service.snapshot(name)
            service.evict(name)
            after = service.estimates(name)  # transparently restored
            if before != after:
                raise RuntimeError(
                    "restored session disagrees with the live original — "
                    "refusing to record the benchmark"
                )
        best_cycle = min(best_cycle, time.perf_counter() - start)

    total_columns = workload.num_sessions * workload.num_columns
    total_votes = total_columns * workload.items_per_column
    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": asdict(workload),
        "timings_s": {
            "ingest_and_estimate": round(best_ingest, 4),
            "snapshot_restore_cycle": round(best_cycle, 4),
            "repeats": repeats,
        },
        "throughput": {
            "columns_per_s": round(total_columns / best_ingest, 1),
            "votes_per_s": round(total_votes / best_ingest, 1),
            "estimate_cache_hit_rate": round(cache_hit_rate, 3),
        },
    }


def run_wal_workload(workload: WalWorkload) -> Dict[str, object]:
    """Time one durable-ingestion workload and build a record entry.

    Three phases, all over real directory stores in a temporary root:

    1. **WAL ingest** — create every session and ingest every batch
       through the write-ahead log (O(batch) appends, LRU eviction free),
       recording live estimates for the verification sample.
    2. **Crash + recover** — drop the service, reopen the store cold and
       verify the sampled sessions' recovered estimates are bit-identical
       to the live ones (``RuntimeError`` on any mismatch — a throughput
       number for a lossy log is worse than none).
    3. **Snapshot-per-save baseline** — the pre-WAL durable path (full
       npz snapshot after every mutation) under a wall-clock budget
       derived from phase 1, recording completed sessions and whether
       the budget ran out.
    """
    import shutil
    import tempfile

    from repro.streaming import DirectorySessionStore, EstimationService

    root = Path(tempfile.mkdtemp(prefix="repro-bench-wal-"))
    try:
        verify = workload.verify_indexes()
        live_estimates: Dict[str, object] = {}

        gc.collect()
        service = EstimationService(
            DirectorySessionStore(root / "wal"), max_active=workload.max_active
        )
        start = time.perf_counter()
        for session_index in range(workload.num_sessions):
            name = workload.session_name(session_index)
            service.create_session(
                name,
                range(workload.num_items),
                list(workload.estimators),
                keep_votes=False,
            )
            for batch_index in range(workload.num_batches):
                service.ingest(
                    name,
                    workload.batch(session_index, batch_index),
                    source="bench",
                    sequence=batch_index + 1,
                )
        wal_seconds = time.perf_counter() - start
        for session_index in verify:
            name = workload.session_name(session_index)
            live_estimates[name] = service.estimates(name)

        # Crash simulation: the service (and every live session) is gone;
        # only the store's snapshots + logs survive.  A cold service must
        # rebuild the sampled sessions by log replay, bit-identically.
        del service
        gc.collect()
        start = time.perf_counter()
        recovered = EstimationService(DirectorySessionStore(root / "wal"))
        for session_index in verify:
            name = workload.session_name(session_index)
            if recovered.estimates(name) != live_estimates[name]:
                raise RuntimeError(
                    f"recovered estimates for {name!r} differ from the live "
                    "session — refusing to record the benchmark"
                )
        verify_seconds = time.perf_counter() - start

        # Snapshot-per-save baseline under a budget: the old durable path
        # wrote a full snapshot after every mutation, so it pays O(state)
        # where the WAL pays O(batch).
        budget = max(
            wal_seconds * workload.baseline_budget_factor,
            workload.baseline_budget_floor_s,
        )
        gc.collect()
        baseline = EstimationService(
            DirectorySessionStore(root / "baseline"),
            max_active=workload.max_active,
            wal=False,
        )
        completed = 0
        exceeded = False
        start = time.perf_counter()
        for session_index in range(workload.num_sessions):
            if time.perf_counter() - start > budget:
                exceeded = True
                break
            name = workload.session_name(session_index)
            baseline.create_session(
                name,
                range(workload.num_items),
                list(workload.estimators),
                keep_votes=False,
            )
            baseline.snapshot(name)
            for batch_index in range(workload.num_batches):
                baseline.ingest(
                    name,
                    workload.batch(session_index, batch_index),
                    source="bench",
                    sequence=batch_index + 1,
                )
                baseline.snapshot(name)
            completed += 1
        baseline_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(root, ignore_errors=True)

    columns_per_session = workload.num_batches * workload.columns_per_batch
    total_columns = workload.num_sessions * columns_per_session
    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": asdict(workload),
        "timings_s": {
            "wal_ingest": round(wal_seconds, 4),
            "recovery_verify": round(verify_seconds, 4),
            "baseline_snapshot_per_save": round(baseline_seconds, 4),
        },
        "wal": {
            "columns_per_s": round(total_columns / wal_seconds, 1),
            "verified_sessions": len(verify),
            "bit_identical": True,
            "baseline": {
                "budget_s": round(budget, 2),
                "completed_sessions": completed,
                "total_sessions": workload.num_sessions,
                "budget_exceeded": exceeded,
                "columns_per_s": round(
                    completed * columns_per_session / baseline_seconds, 1
                )
                if baseline_seconds > 0
                else None,
            },
        },
    }


def run_http_workload(workload: HttpWorkload) -> Dict[str, object]:
    """Time one HTTP serving workload and build a record entry.

    Boots the threaded HTTP server over an in-memory service, runs the
    workload's worker fleet against it through real sockets, then
    replays the acknowledged batches through plain
    :class:`~repro.streaming.StreamingSession` objects and refuses to
    record unless every session's served estimates are bit-identical to
    the replay.
    """
    from repro.serving import (
        EstimationService,
        FleetConfig,
        HttpServingServer,
        LoadGenerator,
        MemorySessionStore,
        SessionClient,
        replay_applied_batches,
    )

    config = FleetConfig(
        num_sessions=workload.num_sessions,
        num_workers=workload.num_workers,
        num_items=workload.num_items,
        batches_per_worker=workload.batches_per_worker,
        columns_per_batch=workload.columns_per_batch,
        items_per_column=workload.items_per_column,
        workers_per_burst=workload.workers_per_burst,
        burst_gap_s=workload.burst_gap_s,
        duplicate_every=workload.duplicate_every,
        reorder_every=workload.reorder_every,
        estimators=workload.estimators,
        seed=workload.seed,
    )
    gc.collect()
    service = EstimationService(MemorySessionStore())
    with HttpServingServer(service) as server:
        client = SessionClient(server.url)
        report = LoadGenerator(client, config).run()
        served = {
            name: client.estimates(name) for name in config.session_names()
        }
    replayed = replay_applied_batches(report)
    for name, results in served.items():
        if results != replayed[name]:
            raise RuntimeError(
                f"served estimates for {name!r} differ from the deterministic "
                "replay of the acknowledged batches — refusing to record the "
                "benchmark"
            )

    latency = report.latency_summary()
    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": asdict(workload),
        "timings_s": {
            "fleet_wall": round(report.wall_s, 4),
        },
        "http": {
            "requests": report.deliveries,
            "applied_batches": report.applied_deliveries,
            "duplicate_acks": report.duplicate_acks,
            "late_drops": report.late_drops,
            "requests_per_s": round(report.requests_per_s, 1),
            "columns_per_s": round(report.columns_per_s, 1),
            "votes_applied": report.votes_applied,
            "latency_ms": {
                key: round(value * 1000, 3) for key, value in latency.items()
            },
            "verified_sessions": len(served),
            "bit_identical": True,
        },
    }


def run_proc_shards_workload(workload: ProcShardsWorkload) -> Dict[str, object]:
    """Time one process-sharding workload and build a record entry.

    Both topologies ingest the identical deterministic workload from
    ``workload.threads`` client threads over real directory stores in a
    temporary root: the single-process
    :class:`~repro.streaming.ShardedEstimationService` first, then the
    :class:`~repro.serving.ProcessShardedService` per-shard worker
    processes.  Every session's estimate report is compared
    **bit-identically** between the two (``RuntimeError`` on mismatch — a
    scaling number for a topology that changes answers is worse than
    none) before the entry is built.
    """
    import shutil
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.serving import ProcessShardedService
    from repro.serving.http import report_to_payload
    from repro.streaming import ShardedEstimationService

    def feed(service, session_index: int) -> None:
        name = workload.session_name(session_index)
        for batch_index in range(workload.num_batches):
            service.ingest(
                name,
                workload.batch(session_index, batch_index),
                source="bench",
                sequence=batch_index + 1,
            )

    def drive(service) -> float:
        for session_index in range(workload.num_sessions):
            service.create_session(
                workload.session_name(session_index),
                range(workload.num_items),
                list(workload.estimators),
                keep_votes=False,
            )
        gc.collect()
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=workload.threads) as pool:
            for future in [
                pool.submit(feed, service, index)
                for index in range(workload.num_sessions)
            ]:
                future.result()
        return time.perf_counter() - start

    def reports(service) -> Dict[str, str]:
        return {
            workload.session_name(index): json.dumps(
                report_to_payload(
                    service.estimate_report(workload.session_name(index))
                ),
                sort_keys=True,
            )
            for index in range(workload.num_sessions)
        }

    root = Path(tempfile.mkdtemp(prefix="repro-bench-proc-"))
    try:
        single = ShardedEstimationService(
            root / "single", num_shards=workload.num_shards
        )
        single_seconds = drive(single)
        single_reports = reports(single)

        with ProcessShardedService(
            root / "workers", num_shards=workload.num_shards
        ) as workers:
            workers_seconds = drive(workers)
            worker_reports = reports(workers)
            worker_count = len(workers.worker_pids())
    finally:
        shutil.rmtree(root, ignore_errors=True)

    for name, expected in single_reports.items():
        if worker_reports[name] != expected:
            raise RuntimeError(
                f"process-worker estimates for {name!r} differ from the "
                "single-process shards — refusing to record the benchmark"
            )

    total_columns = (
        workload.num_sessions * workload.num_batches * workload.columns_per_batch
    )
    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": asdict(workload),
        "timings_s": {
            "single_process_ingest": round(single_seconds, 4),
            "process_workers_ingest": round(workers_seconds, 4),
        },
        "scaling": {
            "single_columns_per_s": round(total_columns / single_seconds, 1),
            "workers_columns_per_s": round(total_columns / workers_seconds, 1),
            "proc_vs_single": round(single_seconds / workers_seconds, 2),
            "workers": worker_count,
            "verified_sessions": workload.num_sessions,
            "bit_identical": True,
        },
    }


#: Schema note written into the record document (refreshed on every save so
#: an existing file picks up wording changes).
RECORD_NOTE = (
    "Performance trajectory of the estimation runner; append entries with "
    "`repro bench`. Regression checks compare batch-vs-serial speedup ratios "
    "(machine-independent), not raw wall times. Runner entries carry a "
    "'backend' field (numpy/numba/cupy/torch); each workload keeps per-backend "
    "baselines under 'baselines' and `--check` compares like-for-like backends "
    "only ('baseline' remains the first entry ever recorded, for back-compat)."
)


def load_record(path: Path) -> Dict[str, object]:
    """Read (or initialise) the benchmark record document."""
    if path.exists():
        record = json.loads(path.read_text(encoding="utf-8"))
        if record.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported benchmark record version in {path}: "
                f"{record.get('format_version')!r}"
            )
        return record
    return {
        "format_version": FORMAT_VERSION,
        "note": RECORD_NOTE,
        "workloads": {},
    }


def _entry_backend(entry: Dict[str, object]) -> str:
    """The backend an entry was recorded on (pre-backend entries: numpy)."""
    return str(entry.get("backend") or "numpy")


def update_record(
    record: Dict[str, object], entry: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """Append ``entry`` to its workload's history; returns the baseline.

    Baselines are kept *per backend* (``slot["baselines"][backend]``) so
    the regression gate only ever compares like-for-like: a numba entry is
    never judged against a numpy baseline or vice versa.  The first entry
    recorded for a given (workload, backend) pair becomes that pair's
    baseline and ``None`` is returned for it.  The legacy top-level
    ``slot["baseline"]`` (first entry ever, any backend) is preserved for
    readers of the old schema and seeds the per-backend table on upgrade.
    """
    name = entry["params"]["name"]
    backend = _entry_backend(entry)
    workloads = record.setdefault("workloads", {})
    slot = workloads.setdefault(name, {"baseline": None, "history": []})
    baselines = slot.setdefault("baselines", {})
    legacy = slot.get("baseline")
    if (
        legacy is not None
        and _entry_backend(legacy) not in baselines
    ):
        baselines[_entry_backend(legacy)] = legacy
    baseline = baselines.get(backend)
    if baseline is None:
        baselines[backend] = entry
    if slot.get("baseline") is None:
        slot["baseline"] = entry
    slot["history"].append(entry)
    return baseline


def save_record(record: Dict[str, object], path: Path) -> None:
    """Write the record with stable formatting (diff-friendly)."""
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def regression_failure(
    entry: Dict[str, object],
    baseline: Optional[Dict[str, object]],
    *,
    factor: float = 3.0,
) -> Optional[str]:
    """A message when ``entry`` regressed >``factor``x against ``baseline``.

    Compares speedup *ratios*, which transfer across machines; ``None``
    means no regression (or no baseline to compare against yet).
    """
    check_positive(factor, "factor")
    if baseline is None:
        return None
    if "speedups" not in entry or "speedups" not in baseline:
        # Serving entries record machine-specific throughput, not a
        # machine-independent ratio, so they carry no regression gate.
        return None
    if _entry_backend(entry) != _entry_backend(baseline):
        # Like-for-like only: comparing a numba entry against a numpy
        # baseline (or the reverse) would measure the backend, not a
        # regression.  ``update_record`` already returns the matching
        # per-backend baseline; this guards callers holding older records.
        return None
    current = float(entry["speedups"]["batch_vs_serial"])
    recorded = float(baseline["speedups"]["batch_vs_serial"])
    floor = recorded / factor
    if current < floor:
        return (
            f"batch-engine speedup regressed: {current:.2f}x vs the recorded "
            f"baseline {recorded:.2f}x (floor {floor:.2f}x at factor {factor})"
        )
    return None


def format_summary(entry: Dict[str, object]) -> str:
    """The one-line summary printed in CI logs."""
    timings = entry["timings_s"]
    if "scaling" in entry:
        scaling = entry["scaling"]
        return (
            f"BENCH {entry['params']['name']}: single-process "
            f"{timings['single_process_ingest']:.3f}s "
            f"({scaling['single_columns_per_s']:.0f} col/s), "
            f"{scaling['workers']} worker process(es) "
            f"{timings['process_workers_ingest']:.3f}s "
            f"({scaling['workers_columns_per_s']:.0f} col/s, "
            f"{scaling['proc_vs_single']:.2f}x), "
            f"{scaling['verified_sessions']} session(s) verified bit-identical "
            f"on {entry['machine']['usable_cpus']} usable cpu(s)"
        )
    if "http" in entry:
        http = entry["http"]
        latency = http["latency_ms"]
        return (
            f"BENCH {entry['params']['name']}: {http['requests']} requests in "
            f"{timings['fleet_wall']:.3f}s ({http['requests_per_s']:.0f} req/s, "
            f"{http['columns_per_s']:.0f} col/s), latency p50/p95/p99 "
            f"{latency['p50']:.1f}/{latency['p95']:.1f}/{latency['p99']:.1f} ms, "
            f"{http['duplicate_acks']} duplicate(s) acknowledged, "
            f"{http['verified_sessions']} session(s) verified bit-identical "
            f"on {entry['machine']['usable_cpus']} usable cpu(s)"
        )
    if "wal" in entry:
        wal = entry["wal"]
        base = wal["baseline"]
        completed = (
            f"completed {base['completed_sessions']}/{base['total_sessions']} "
            f"sessions before the {base['budget_s']:.0f}s budget ran out"
            if base["budget_exceeded"]
            else f"completed all {base['total_sessions']} sessions "
            f"in {timings['baseline_snapshot_per_save']:.3f}s"
        )
        return (
            f"BENCH {entry['params']['name']}: WAL ingest "
            f"{timings['wal_ingest']:.3f}s ({wal['columns_per_s']:.0f} col/s), "
            f"crash-recovery verified {wal['verified_sessions']} session(s) "
            f"bit-identical in {timings['recovery_verify']:.3f}s; "
            f"snapshot-per-save baseline {completed} "
            f"on {entry['machine']['usable_cpus']} usable cpu(s)"
        )
    if "throughput" in entry:
        throughput = entry["throughput"]
        return (
            f"BENCH {entry['params']['name']}: "
            f"ingest+estimate {timings['ingest_and_estimate']:.3f}s "
            f"({throughput['columns_per_s']:.0f} col/s, "
            f"{throughput['votes_per_s']:.0f} votes/s, "
            f"cache hit {throughput['estimate_cache_hit_rate']:.0%}), "
            f"snapshot/restore cycle {timings['snapshot_restore_cycle']:.3f}s "
            f"on {entry['machine']['usable_cpus']} usable cpu(s)"
        )
    speedups = entry["speedups"]
    backend = (
        f"[{_entry_backend(entry)}] " if entry.get("backend") is not None else ""
    )
    versus_numpy = (
        f", numpy batch {timings['batch_engine_numpy']:.3f}s "
        f"({speedups['backend_vs_numpy_batch']:.2f}x vs numpy)"
        if timings.get("batch_engine_numpy") is not None
        else ""
    )
    parallel = (
        f", n_jobs={timings['n_jobs']} {timings['batch_engine_parallel']:.3f}s "
        f"({speedups['parallel_vs_serial']:.2f}x)"
        if timings["batch_engine_parallel"] is not None
        else ""
    )
    return (
        f"BENCH {entry['params']['name']}: {backend}serial "
        f"{timings['serial_engine']:.3f}s, "
        f"batch {timings['batch_engine']:.3f}s "
        f"({speedups['batch_vs_serial']:.2f}x){versus_numpy}{parallel} "
        f"on {entry['machine']['usable_cpus']} usable cpu(s)"
    )


def run_and_record(
    *,
    workload: str = "full",
    n_jobs: int = 1,
    repeats: int = 2,
    backend: Optional[str] = None,
    output: Optional[str] = None,
    check: bool = False,
    factor: float = 3.0,
    dry_run: bool = False,
) -> int:
    """The ``repro bench`` implementation.  Returns a process exit code."""
    known = {
        **WORKLOADS,
        **SERVING_WORKLOADS,
        **WAL_WORKLOADS,
        **HTTP_WORKLOADS,
        **PROC_SHARDS_WORKLOADS,
    }
    if workload not in known:
        raise ValueError(
            f"unknown workload {workload!r}; available: {sorted(known)}"
        )
    if backend is not None and workload not in WORKLOADS:
        raise ConfigurationError(
            f"--backend only applies to the runner workloads "
            f"{sorted(WORKLOADS)}; {workload!r} does not run the tensor engine"
        )
    path = Path(output or DEFAULT_RECORD)
    record = load_record(path)
    record["note"] = RECORD_NOTE
    if workload in PROC_SHARDS_WORKLOADS:
        entry = run_proc_shards_workload(PROC_SHARDS_WORKLOADS[workload])
    elif workload in HTTP_WORKLOADS:
        entry = run_http_workload(HTTP_WORKLOADS[workload])
    elif workload in WAL_WORKLOADS:
        entry = run_wal_workload(WAL_WORKLOADS[workload])
    elif workload in SERVING_WORKLOADS:
        entry = run_serving_workload(SERVING_WORKLOADS[workload], repeats=repeats)
    else:
        entry = run_workload(
            WORKLOADS[workload], n_jobs=n_jobs, repeats=repeats, backend=backend
        )
    baseline = update_record(record, entry)
    print(format_summary(entry))
    if not dry_run:
        save_record(record, path)
        print(f"recorded -> {path}")
    failure = regression_failure(entry, baseline, factor=factor) if check else None
    if failure:
        print(f"REGRESSION: {failure}")
        return 1
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to ``parser``.

    The single definition behind both entry points — the ``repro bench``
    subcommand and ``tools/bench_record.py`` — so workload names and the
    default record path cannot drift between them.
    """
    which = parser.add_mutually_exclusive_group()
    which.add_argument(
        "--workload",
        choices=sorted(WORKLOADS)
        + sorted(SERVING_WORKLOADS)
        + sorted(WAL_WORKLOADS)
        + sorted(HTTP_WORKLOADS)
        + sorted(PROC_SHARDS_WORKLOADS),
        default="full",
        help=(
            "which pinned workload to time "
            "(runner, serving, wal, http or proc-shards family)"
        ),
    )
    which.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --workload smoke (the CI-sized workload)",
    )
    parser.add_argument(
        "--backend", default=None,
        help=(
            "array backend for the batch engine on runner workloads "
            "(numpy/numba/cupy/torch; default: $REPRO_BACKEND or numpy)"
        ),
    )
    parser.add_argument("--n-jobs", type=int, default=1, help="also time the chunked parallel dispatch")
    parser.add_argument("--repeats", type=int, default=2, help="best-of-N timing repeats")
    parser.add_argument("--output", default=DEFAULT_RECORD, help="record file to update")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the speedup regressed more than --factor vs the baseline",
    )
    parser.add_argument(
        "--factor", type=float, default=3.0,
        help="allowed relative regression factor for --check",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="measure and print without writing"
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed bench invocation (shared by both entry points)."""
    return run_and_record(
        workload="smoke" if args.smoke else args.workload,
        n_jobs=args.n_jobs,
        repeats=args.repeats,
        backend=args.backend,
        output=args.output,
        check=args.check,
        factor=args.factor,
        dry_run=args.dry_run,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_record",
        description="Run the pinned runner workloads and update BENCH_runner.json.",
    )
    add_bench_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point shared by ``repro bench`` and ``tools/bench_record.py``."""
    return run_from_args(build_parser().parse_args(argv))
