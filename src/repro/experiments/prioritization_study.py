"""Prioritisation study (Figure 8 of the paper).

For a fixed error rate and task budget (50 tasks), the study measures the
accuracy of the SWITCH estimate as a function of the sampling parameter
``ε`` for heuristics of different quality (the paper uses heuristics with
10 % and 50 % error rates).  A heuristic with error rate ``h`` misplaces a
fraction ``h`` of the items: true errors that should be in the ambiguous
band fall outside it, and clean items take their place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.rng import derive_rng, ensure_rng
from repro.common.validation import check_probability
from repro.core.metrics import scaled_rmse
from repro.core.total_error import SwitchTotalErrorEstimator
from repro.crowd.simulator import SimulationConfig
from repro.crowd.worker import WorkerProfile
from repro.data.record import Dataset
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs
from repro.prioritization.imperfect import EpsilonGreedyPrioritizer


@dataclass
class PrioritizationConfig:
    """Parameters of the Figure 8 sweep.

    Parameters
    ----------
    num_items / num_errors:
        Simulated population.
    ambiguous_fraction:
        Fraction of the population a (perfect) heuristic would place in the
        ambiguous band.
    heuristic_error_rates:
        The heuristic qualities to compare (0.1 and 0.5 in the paper).
    epsilons:
        The ε grid.
    num_tasks / items_per_task:
        Task budget (50 tasks in the paper).
    worker_profile:
        Crowd error rates.
    num_trials:
        Repetitions behind each SRMSE value.
    seed:
        Root seed.
    """

    num_items: int = 1000
    num_errors: int = 100
    ambiguous_fraction: float = 0.3
    heuristic_error_rates: Sequence[float] = (0.1, 0.5)
    epsilons: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6)
    num_tasks: int = 50
    items_per_task: int = 15
    worker_profile: WorkerProfile = field(
        default_factory=lambda: WorkerProfile(false_negative_rate=0.1, false_positive_rate=0.01)
    )
    num_trials: int = 5
    seed: int = 0


@dataclass
class PrioritizationSweepResult:
    """SRMSE of the SWITCH estimate per (heuristic error rate, ε).

    Attributes
    ----------
    epsilons:
        The ε grid.
    srmse:
        ``srmse[heuristic_error_rate][i]`` — scaled RMSE at ``epsilons[i]``.
    ground_truth:
        The true error count.
    """

    epsilons: List[float]
    srmse: Dict[float, List[float]] = field(default_factory=dict)
    ground_truth: float = 0.0


def imperfect_heuristic_partition(
    dataset: Dataset,
    *,
    ambiguous_fraction: float,
    heuristic_error_rate: float,
    seed=None,
) -> List[int]:
    """Build the ambiguous set ``R_H`` of a heuristic with a given error rate.

    A perfect heuristic (error rate 0) places every true error plus enough
    random clean items in the band to reach ``ambiguous_fraction`` of the
    population.  A heuristic with error rate ``h`` swaps a fraction ``h`` of
    the true errors out of the band for additional clean items, modelling
    both heuristic false negatives (missed errors) and false positives
    (clean items soaking up review capacity).
    """
    check_probability(ambiguous_fraction, "ambiguous_fraction")
    check_probability(heuristic_error_rate, "heuristic_error_rate")
    rng = ensure_rng(seed)
    dirty = [rid for rid in dataset.record_ids if dataset.is_dirty(rid)]
    clean = [rid for rid in dataset.record_ids if not dataset.is_dirty(rid)]
    rng.shuffle(dirty)
    rng.shuffle(clean)

    band_size = max(1, int(round(ambiguous_fraction * len(dataset))))
    num_dirty_missed = int(round(heuristic_error_rate * len(dirty)))
    dirty_in_band = dirty[: len(dirty) - num_dirty_missed]
    num_clean_needed = max(0, band_size - len(dirty_in_band))
    clean_in_band = clean[:num_clean_needed]
    return sorted(dirty_in_band + clean_in_band)


def epsilon_sweep(config: Optional[PrioritizationConfig] = None) -> PrioritizationSweepResult:
    """Run the Figure 8 sweep: SWITCH accuracy vs ε for each heuristic quality."""
    config = config or PrioritizationConfig()
    result = PrioritizationSweepResult(
        epsilons=[float(e) for e in config.epsilons],
        ground_truth=float(config.num_errors),
    )
    estimator = SwitchTotalErrorEstimator()
    for rate in config.heuristic_error_rates:
        rate = float(rate)
        srmse_per_epsilon: List[float] = []
        for eps_index, epsilon in enumerate(config.epsilons):
            estimates: List[float] = []
            for trial in range(config.num_trials):
                trial_seed = config.seed + 997 * trial + 13 * eps_index + int(rate * 10_000)
                dataset = generate_synthetic_pairs(
                    SyntheticPairConfig(
                        num_items=config.num_items, num_errors=config.num_errors
                    ),
                    seed=trial_seed,
                )
                ambiguous_ids = imperfect_heuristic_partition(
                    dataset,
                    ambiguous_fraction=config.ambiguous_fraction,
                    heuristic_error_rate=rate,
                    seed=derive_rng(trial_seed, 5),
                )
                prioritizer = EpsilonGreedyPrioritizer(
                    dataset,
                    ambiguous_ids,
                    epsilon=float(epsilon),
                    config=SimulationConfig(
                        num_tasks=config.num_tasks,
                        items_per_task=config.items_per_task,
                        worker_profile=config.worker_profile,
                        seed=trial_seed,
                    ),
                )
                estimates.append(prioritizer.estimate(estimator).result.estimate)
            srmse_per_epsilon.append(scaled_rmse(estimates, config.num_errors))
        result.srmse[rate] = srmse_per_epsilon
    return result
