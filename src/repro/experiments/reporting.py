"""Plain-text and CSV rendering of experiment results.

The benchmarks print the same rows/series the paper's figures plot; these
helpers turn :class:`~repro.experiments.results.ExperimentResult` objects
into aligned text tables and CSV strings without any plotting dependency.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.results import EstimateSeries, ExperimentResult


def render_series_table(
    result: ExperimentResult,
    *,
    max_rows: Optional[int] = None,
    float_format: str = "{:.1f}",
) -> str:
    """Render an experiment result as an aligned plain-text table.

    One row per checkpoint, one column per estimator, plus the ground truth
    when known.

    Parameters
    ----------
    result:
        The experiment result to render.
    max_rows:
        Limit the number of checkpoint rows (evenly subsampled) so large
        traces stay readable in benchmark output.
    float_format:
        Format applied to estimate values.
    """
    names = result.estimator_names()
    if not names:
        return f"{result.name}: (no series)"
    checkpoints = result.series[names[0]].x
    rows = list(range(len(checkpoints)))
    if max_rows is not None and len(rows) > max_rows:
        step = len(rows) / max_rows
        rows = sorted({int(round(step * i)) for i in range(max_rows)} | {len(checkpoints) - 1})
        rows = [r for r in rows if r < len(checkpoints)]

    header = ["tasks"] + names
    if result.ground_truth is not None:
        header.append("truth")
    table: List[List[str]] = [header]
    for row in rows:
        cells = [str(checkpoints[row])]
        for name in names:
            series = result.series[name]
            cells.append(float_format.format(series.points[row].mean))
        if result.ground_truth is not None:
            cells.append(float_format.format(result.ground_truth))
        table.append(cells)

    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.rjust(widths[col]) for col, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(header))))
    return f"{result.name}\n" + "\n".join(lines)


def series_to_csv(result: ExperimentResult) -> str:
    """Render an experiment result as CSV (tasks, one column per estimator, truth)."""
    names = result.estimator_names()
    buffer = io.StringIO()
    header = ["tasks"] + names + (["truth"] if result.ground_truth is not None else [])
    buffer.write(",".join(header) + "\n")
    if not names:
        return buffer.getvalue()
    checkpoints = result.series[names[0]].x
    for row, tasks in enumerate(checkpoints):
        cells = [str(tasks)]
        for name in names:
            cells.append(f"{result.series[name].points[row].mean:.4f}")
        if result.ground_truth is not None:
            cells.append(f"{result.ground_truth:.4f}")
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def render_summary(result: ExperimentResult, *, float_format: str = "{:.1f}") -> str:
    """One-line-per-estimator summary: final estimate and SRMSE when available."""
    lines = [f"{result.name} (truth={result.ground_truth})"]
    finals = result.final_estimates()
    srmse = result.srmse_table()
    for name in result.estimator_names():
        parts = [f"  {name}: final=" + float_format.format(finals.get(name, float('nan')))]
        if name in srmse:
            parts.append(f"srmse={srmse[name]:.3f}")
        lines.append(" ".join(parts))
    return "\n".join(lines)
