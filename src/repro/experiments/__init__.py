"""Experiment harness: everything needed to regenerate the paper's figures.

The harness separates three concerns:

* :mod:`~repro.experiments.runner` — feed a vote matrix to a set of
  estimators prefix-by-prefix (the paper's "# tasks" x-axis) and average
  over random worker permutations,
* per-figure experiment modules
  (:mod:`~repro.experiments.real_world`,
  :mod:`~repro.experiments.sensitivity`,
  :mod:`~repro.experiments.robustness`,
  :mod:`~repro.experiments.prioritization_study`,
  :mod:`~repro.experiments.extrapolation_study`) — set up the workloads of
  Figures 2–8 and the two worked examples,
* :mod:`~repro.experiments.reporting` — render result series as plain-text
  tables/CSV so the benchmarks can print the same rows the paper plots.
"""

from repro.experiments.results import EstimateSeries, ExperimentResult, TracePoint
from repro.experiments.runner import EstimationRunner, RunnerConfig
from repro.experiments.scm import sample_clean_minimum
from repro.experiments.reporting import render_series_table, series_to_csv

__all__ = [
    "EstimationRunner",
    "RunnerConfig",
    "EstimateSeries",
    "ExperimentResult",
    "TracePoint",
    "sample_clean_minimum",
    "render_series_table",
    "series_to_csv",
]
