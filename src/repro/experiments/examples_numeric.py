"""The two worked numeric examples of Section 3.2.1 of the paper.

Example 1 (no false positives): 1000 critical pairs with 100 duplicates,
100 tasks of 20 randomly selected pairs, a 90 % detection rate and no false
positives.  The plain coverage estimate of the remaining errors comes out
close to the truth (the paper quotes about 17 remaining after 83 found).

Example 2 (with false positives): the same setup plus a 1 % false-positive
rate.  The inflated singleton count pushes the estimate of the remaining
errors to roughly 131, an overestimate of more than 30 % of the true total
— the singleton–error entanglement the rest of the paper addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.chao92 import Chao92Estimator
from repro.core.descriptive import nominal_estimate
from repro.core.total_error import SwitchTotalErrorEstimator
from repro.crowd.simulator import CrowdSimulator, SimulationConfig
from repro.crowd.worker import WorkerProfile
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs


@dataclass
class NumericExampleConfig:
    """Parameters shared by both worked examples.

    Parameters
    ----------
    num_items / num_errors:
        1000 candidate pairs with 100 true duplicates.
    num_tasks / items_per_task:
        100 tasks of 20 pairs each.
    detection_rate:
        Worker probability of catching a true error (0.9).
    false_positive_rate:
        0 for Example 1, 0.01 for Example 2.
    seed:
        Simulation seed.
    """

    num_items: int = 1000
    num_errors: int = 100
    num_tasks: int = 100
    items_per_task: int = 20
    detection_rate: float = 0.9
    false_positive_rate: float = 0.0
    seed: int = 42


def run_numeric_example(config: Optional[NumericExampleConfig] = None) -> Dict[str, float]:
    """Simulate one worked example and report the key quantities.

    Returns
    -------
    dict
        ``nominal`` (errors found so far), ``chao92_total`` and
        ``chao92_remaining`` (the species estimate and its remaining-error
        implication), ``switch_total`` (the SWITCH estimate for
        comparison), and ``true_errors``.
    """
    config = config or NumericExampleConfig()
    dataset = generate_synthetic_pairs(
        SyntheticPairConfig(num_items=config.num_items, num_errors=config.num_errors),
        seed=config.seed,
    )
    profile = WorkerProfile(
        false_negative_rate=1.0 - config.detection_rate,
        false_positive_rate=config.false_positive_rate,
    )
    simulation = CrowdSimulator(
        dataset,
        SimulationConfig(
            num_tasks=config.num_tasks,
            items_per_task=config.items_per_task,
            worker_profile=profile,
            seed=config.seed,
        ),
    ).run()

    chao92 = Chao92Estimator(use_skew_correction=False).estimate(simulation.matrix)
    switch = SwitchTotalErrorEstimator().estimate(simulation.matrix)
    found = nominal_estimate(simulation.matrix)
    return {
        "nominal": float(found),
        "chao92_total": chao92.estimate,
        "chao92_remaining": chao92.remaining,
        "switch_total": switch.estimate,
        "true_errors": float(simulation.true_error_count),
    }


def run_example_1(seed: int = 42) -> Dict[str, float]:
    """Example 1: no false positives."""
    return run_numeric_example(NumericExampleConfig(false_positive_rate=0.0, seed=seed))


def run_example_2(seed: int = 42) -> Dict[str, float]:
    """Example 2: a 1 % false-positive rate."""
    return run_numeric_example(NumericExampleConfig(false_positive_rate=0.01, seed=seed))
