"""Real-world dataset experiments (Figures 3, 4 and 5 of the paper).

Each figure has three panels: (a) the total-error estimates of SWITCH,
V-CHAO, VOTING (plus the EXTRAPOL band and the SCM cost marker) against the
ground truth, and (b)/(c) the remaining positive and negative switch
estimates.  :func:`run_real_world_experiment` produces all three panels for
one workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.rng import derive_rng
from repro.core.extrapolation import extrapolation_band, oracle_sample_extrapolations
from repro.core.switch import (
    NEGATIVE,
    POSITIVE,
    SwitchStatistics,
    estimate_remaining_switches,
    switch_statistics,
)
from repro.core.total_error import SwitchTotalErrorEstimator
from repro.core.vchao92 import VChao92Estimator
from repro.core.descriptive import VotingEstimator
from repro.crowd.simulator import CrowdSimulator, SimulationConfig
from repro.experiments.results import ExperimentResult, build_series
from repro.experiments.runner import EstimationRunner, RunnerConfig
from repro.experiments.scm import sample_clean_minimum
from repro.experiments.workloads import Workload


@dataclass
class RealWorldExperimentConfig:
    """Parameters for a Figure 3/4/5-style experiment.

    Parameters
    ----------
    num_tasks:
        Total number of crowd tasks to simulate.
    items_per_task:
        Items per task (10 in the paper's AMT deployment).
    num_permutations:
        Worker permutations to average over (10 in the paper).
    num_checkpoints:
        Number of x-axis points.
    extrapolation_sample_fraction:
        Size of the oracle-cleaned sample backing the EXTRAPOL band (5% in
        the paper).
    extrapolation_samples:
        Number of oracle samples in the band.
    seed:
        Root seed.
    """

    num_tasks: int = 300
    items_per_task: int = 10
    num_permutations: int = 5
    num_checkpoints: int = 15
    extrapolation_sample_fraction: float = 0.05
    extrapolation_samples: int = 4
    seed: int = 0


def ground_truth_switches(
    stats: SwitchStatistics,
    ground_truth: Dict[int, int],
    direction: str,
) -> int:
    """Number of switches (of one direction) the current consensus still needs.

    The paper defines the switch ground truth as the number of consensus
    flips needed for the current majority vector to reach the true labels,
    split by direction: positive = items currently clean-by-consensus that
    are truly dirty, negative = items currently dirty-by-consensus that are
    truly clean.
    """
    needed = 0
    for item, truth in ground_truth.items():
        consensus = stats.final_consensus.get(item, 0)
        if direction == POSITIVE and consensus == 0 and truth == 1:
            needed += 1
        elif direction == NEGATIVE and consensus == 1 and truth == 0:
            needed += 1
    return needed


def run_real_world_experiment(
    workload: Workload,
    config: Optional[RealWorldExperimentConfig] = None,
) -> Dict[str, ExperimentResult]:
    """Run the three panels of a real-world figure for ``workload``.

    Returns
    -------
    dict
        ``{"total_error": ..., "positive_switches": ..., "negative_switches": ...}``
        — each an :class:`~repro.experiments.results.ExperimentResult`.
    """
    config = config or RealWorldExperimentConfig()
    items = workload.items
    num_tasks = config.num_tasks
    items_per_task = min(config.items_per_task, len(items))

    simulation = CrowdSimulator(
        items,
        SimulationConfig(
            num_tasks=num_tasks,
            items_per_task=items_per_task,
            worker_profile=workload.worker_profile,
            seed=config.seed,
        ),
    ).run()

    # ------------------------------------------------------------------ #
    # Panel (a): total error estimates.
    # ------------------------------------------------------------------ #
    runner = EstimationRunner(
        [SwitchTotalErrorEstimator(), VChao92Estimator(), VotingEstimator()],
        RunnerConfig(
            num_permutations=config.num_permutations,
            num_checkpoints=config.num_checkpoints,
            seed=config.seed,
        ),
    )
    total_error = runner.run(
        simulation.matrix,
        ground_truth=float(workload.true_errors),
        name=f"{workload.name}-total-error",
        metadata=dict(workload.metadata),
    )

    # EXTRAPOL band from oracle-cleaned samples.
    extrapolations = oracle_sample_extrapolations(
        items,
        sample_fraction=config.extrapolation_sample_fraction,
        num_samples=config.extrapolation_samples,
        seed=derive_rng(config.seed, 77),
    )
    total_error.metadata["extrapolation_band"] = extrapolation_band(
        [e["total"] for e in extrapolations]
    )

    # SCM cost marker.
    sample_size = max(1, int(round(config.extrapolation_sample_fraction * len(items))))
    total_error.metadata["scm_tasks"] = sample_clean_minimum(
        sample_size, workers_per_record=3, records_per_task=items_per_task
    )
    total_error.metadata["num_tasks"] = num_tasks

    # ------------------------------------------------------------------ #
    # Panels (b) and (c): remaining positive / negative switch estimates
    # against the switch ground truth at each checkpoint.
    # ------------------------------------------------------------------ #
    checkpoints = runner.config.resolve_checkpoints(simulation.matrix.num_columns)
    panels: Dict[str, ExperimentResult] = {"total_error": total_error}
    for direction, key in ((POSITIVE, "positive_switches"), (NEGATIVE, "negative_switches")):
        estimated_trace: List[float] = []
        needed_trace: List[float] = []
        for checkpoint in checkpoints:
            stats = switch_statistics(simulation.matrix, checkpoint)
            estimated_trace.append(
                estimate_remaining_switches(stats, direction=direction)
            )
            needed_trace.append(
                float(ground_truth_switches(stats, simulation.ground_truth, direction))
            )
        result = ExperimentResult(
            name=f"{workload.name}-{key}",
            ground_truth=needed_trace[-1] if needed_trace else 0.0,
            metadata={"direction": direction},
        )
        result.add_series(build_series("switch_remaining", checkpoints, [estimated_trace]))
        result.add_series(build_series("switches_needed", checkpoints, [needed_trace]))
        panels[key] = result
    return panels
