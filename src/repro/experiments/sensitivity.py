"""Sensitivity study (Figure 6 of the paper).

Figure 6(a) fixes the task budget (50 tasks of 15 items) and sweeps the
worker precision, reporting the scaled RMSE of Chao92, SWITCH and VOTING.
Figure 6(b) keeps workers free of false positives and sweeps the number of
items per task (the coverage), again reporting scaled errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.chao92 import Chao92Estimator
from repro.core.descriptive import VotingEstimator
from repro.core.metrics import scaled_rmse
from repro.core.total_error import SwitchTotalErrorEstimator
from repro.crowd.simulator import CrowdSimulator, SimulationConfig
from repro.crowd.worker import WorkerProfile
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs


@dataclass
class SensitivityConfig:
    """Parameters of the Figure 6 sweeps.

    Parameters
    ----------
    num_items / num_errors:
        Simulation population (1000 candidate pairs with 100 duplicates in
        the paper).
    num_tasks:
        Fixed task budget (50).
    items_per_task:
        Items per task for the precision sweep (15).
    precisions:
        Worker precision grid for panel (a).
    items_per_task_grid:
        Items-per-task grid for panel (b).
    false_negative_rate_for_coverage:
        FN rate used in panel (b), where workers make no false positives.
    num_trials:
        Repetitions (``r``) behind each SRMSE value.
    seed:
        Root seed.
    """

    num_items: int = 1000
    num_errors: int = 100
    num_tasks: int = 50
    items_per_task: int = 15
    precisions: Sequence[float] = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)
    items_per_task_grid: Sequence[int] = (5, 10, 25, 50, 75, 100)
    false_negative_rate_for_coverage: float = 0.1
    num_trials: int = 5
    seed: int = 0


@dataclass
class SweepResult:
    """SRMSE of every estimator at every sweep point.

    Attributes
    ----------
    parameter_name:
        Name of the swept parameter (``"precision"`` or
        ``"items_per_task"``).
    values:
        The sweep grid.
    srmse:
        ``srmse[estimator_name][i]`` is the scaled RMSE at ``values[i]``.
    ground_truth:
        The true error count of the simulated population.
    """

    parameter_name: str
    values: List[float]
    srmse: Dict[str, List[float]] = field(default_factory=dict)
    ground_truth: float = 0.0


def _estimators():
    return [Chao92Estimator(), SwitchTotalErrorEstimator(), VotingEstimator()]


def _run_trials(
    config: SensitivityConfig,
    worker_profile: WorkerProfile,
    items_per_task: int,
    *,
    seed_offset: int,
) -> Dict[str, List[float]]:
    """Run ``num_trials`` independent simulations and collect final estimates."""
    estimates: Dict[str, List[float]] = {est.name: [] for est in _estimators()}
    for trial in range(config.num_trials):
        dataset = generate_synthetic_pairs(
            SyntheticPairConfig(num_items=config.num_items, num_errors=config.num_errors),
            seed=config.seed + 1000 * trial + seed_offset,
        )
        simulation = CrowdSimulator(
            dataset,
            SimulationConfig(
                num_tasks=config.num_tasks,
                items_per_task=min(items_per_task, config.num_items),
                worker_profile=worker_profile,
                seed=config.seed + 31 * trial + seed_offset,
            ),
        ).run()
        for estimator in _estimators():
            estimates[estimator.name].append(
                estimator.estimate(simulation.matrix).estimate
            )
    return estimates


def precision_sweep(config: Optional[SensitivityConfig] = None) -> SweepResult:
    """Figure 6(a): scaled error as a function of worker precision."""
    config = config or SensitivityConfig()
    result = SweepResult(
        parameter_name="precision",
        values=[float(p) for p in config.precisions],
        ground_truth=float(config.num_errors),
    )
    for estimator in _estimators():
        result.srmse[estimator.name] = []
    for index, precision in enumerate(config.precisions):
        profile = WorkerProfile.from_precision(precision)
        estimates = _run_trials(
            config, profile, config.items_per_task, seed_offset=index * 17
        )
        for name, values in estimates.items():
            result.srmse[name].append(scaled_rmse(values, config.num_errors))
    return result


def coverage_sweep(config: Optional[SensitivityConfig] = None) -> SweepResult:
    """Figure 6(b): scaled error as a function of items per task (coverage).

    Workers make no false positives here, which is the regime where the
    paper reports Chao92 doing very well.
    """
    config = config or SensitivityConfig()
    result = SweepResult(
        parameter_name="items_per_task",
        values=[float(v) for v in config.items_per_task_grid],
        ground_truth=float(config.num_errors),
    )
    for estimator in _estimators():
        result.srmse[estimator.name] = []
    profile = WorkerProfile.false_negative_only(config.false_negative_rate_for_coverage)
    for index, items_per_task in enumerate(config.items_per_task_grid):
        estimates = _run_trials(
            config, profile, int(items_per_task), seed_offset=500 + index * 17
        )
        for name, values in estimates.items():
            result.srmse[name].append(scaled_rmse(values, config.num_errors))
    return result
