"""Extrapolation-baseline study (Figure 2 of the paper).

Panel (a): the paper randomly samples 2 % of the restaurant dataset's
367,653 entity pairs four times, cleans each sample with an oracle, and
extrapolates — showing that with rare errors the estimate swings wildly
with the particular sample.

Panel (b): the more realistic variant uses the CrowdER candidate pairs and
actual (fallible) crowd labels over samples of 100 pairs, showing that the
average estimate can drift away from the truth as more workers correct the
early false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.common.rng import derive_rng
from repro.core.extrapolation import extrapolate_from_sample, oracle_sample_extrapolations
from repro.crowd.consensus import majority_labels
from repro.crowd.simulator import CrowdSimulator, SimulationConfig
from repro.crowd.worker import WorkerProfile
from repro.data.pairs import duplicate_keys_from_entities
from repro.experiments.workloads import RESTAURANT_CROWD, Workload, restaurant_workload


@dataclass
class ExtrapolationStudyConfig:
    """Parameters of the Figure 2 study.

    Parameters
    ----------
    scale:
        Restaurant dataset scale (1.0 = the paper's 858 records).
    sample_fraction:
        Oracle-sample fraction for panel (a) (2 % in the paper).
    num_samples:
        Number of independent samples in both panels (4 in the paper).
    crowd_sample_size:
        Size of each crowd-cleaned sample in panel (b) (100 pairs).
    task_grid:
        Numbers of tasks at which panel (b) re-evaluates the extrapolation.
    items_per_task:
        Items per task in panel (b).
    seed:
        Root seed.
    """

    scale: float = 0.35
    sample_fraction: float = 0.02
    num_samples: int = 4
    crowd_sample_size: int = 100
    task_grid: tuple = (10, 20, 40, 80, 120)
    items_per_task: int = 10
    seed: int = 0


@dataclass
class ExtrapolationStudyResult:
    """Output of the Figure 2 study.

    Attributes
    ----------
    oracle_estimates:
        Panel (a): one total-error extrapolation per oracle-cleaned sample
        of the full pair population.
    oracle_truth:
        The true number of duplicate pairs in the full pair population.
    crowd_estimates:
        Panel (b): ``crowd_estimates[sample_index][i]`` is the extrapolated
        total at ``task_grid[i]`` tasks for that sample.
    crowd_truth:
        The true number of duplicates among the candidate pairs.
    task_grid:
        The panel (b) x-axis.
    """

    oracle_estimates: List[float]
    oracle_truth: float
    crowd_estimates: List[List[float]]
    crowd_truth: float
    task_grid: List[int]


def run_extrapolation_study(
    config: Optional[ExtrapolationStudyConfig] = None,
    workload: Optional[Workload] = None,
) -> ExtrapolationStudyResult:
    """Run both panels of the Figure 2 extrapolation study."""
    config = config or ExtrapolationStudyConfig()
    workload = workload or restaurant_workload(scale=config.scale, seed=7)

    # ------------------------------------------------------------------ #
    # Panel (a): oracle-cleaned samples of the *full* pair population.
    # The full population has N*(N-1)/2 pairs of which only the duplicated
    # entities form errors, so we extrapolate analytically from the gold
    # labels without materialising every pair.
    # ------------------------------------------------------------------ #
    base = workload.pipeline_result.scored_pairs.base if workload.pipeline_result else None
    if base is None:
        raise ValueError("the extrapolation study needs a pair workload")
    num_records = len(base)
    total_pairs = num_records * (num_records - 1) // 2
    total_duplicates = len(duplicate_keys_from_entities(base))
    sample_size = max(1, int(round(config.sample_fraction * total_pairs)))

    rng = derive_rng(config.seed, 21)
    oracle_estimates: List[float] = []
    for _ in range(config.num_samples):
        # Hypergeometric draw: how many of the rare duplicate pairs land in
        # a random sample of `sample_size` of the `total_pairs` pairs.
        found = int(rng.hypergeometric(total_duplicates, total_pairs - total_duplicates, sample_size))
        oracle_estimates.append(
            extrapolate_from_sample(sample_size, found, total_pairs)["total"]
        )

    # ------------------------------------------------------------------ #
    # Panel (b): crowd-cleaned samples of the candidate pairs.
    # ------------------------------------------------------------------ #
    items = workload.items
    crowd_estimates: List[List[float]] = []
    task_grid = [int(t) for t in config.task_grid]
    for sample_index in range(config.num_samples):
        sample_rng = derive_rng(config.seed, 100 + sample_index)
        sample_size_b = min(config.crowd_sample_size, len(items))
        chosen = sample_rng.choice(len(items), size=sample_size_b, replace=False)
        sample_ids = [items.record_ids[int(i)] for i in chosen]
        sample_dataset = items.subset(sample_ids, name=f"sample-{sample_index}")
        simulator = CrowdSimulator(
            sample_dataset,
            SimulationConfig(
                num_tasks=max(task_grid),
                items_per_task=min(config.items_per_task, sample_size_b),
                worker_profile=RESTAURANT_CROWD,
                seed=config.seed + 7 * sample_index,
            ),
        )
        simulation = simulator.run()
        trace: List[float] = []
        for num_tasks in task_grid:
            labels = majority_labels(simulation.matrix, num_tasks)
            sample_errors = sum(labels.values())
            trace.append(
                extrapolate_from_sample(sample_size_b, sample_errors, len(items))["total"]
            )
        crowd_estimates.append(trace)

    return ExtrapolationStudyResult(
        oracle_estimates=oracle_estimates,
        oracle_truth=float(total_duplicates),
        crowd_estimates=crowd_estimates,
        crowd_truth=float(workload.true_errors),
        task_grid=task_grid,
    )
