"""The estimation runner: estimators x task-stream prefixes x permutations.

Every figure in the paper plots estimates against the number of consumed
tasks, averaged over ``r = 10`` random permutations of the workers.  The
runner implements exactly that loop:

1. take a fully collected vote matrix,
2. draw ``num_permutations`` random column orders,
3. evaluate every estimator at every checkpoint of every permutation —
   by default through the cross-permutation tensor engine
   (:class:`~repro.core.state.PermutationBatch`): the permuted matrices
   are stacked, the checkpoint count tables become one
   ``(permutations x checkpoints x items)`` pass and all switch scans
   collapse into a single scan, shared by every estimator,
4. aggregate per-checkpoint means and standard deviations into
   :class:`~repro.experiments.results.EstimateSeries`.

``RunnerConfig(engine="serial")`` keeps the classic one-permutation-at-a-
time sweep loop (useful for benchmarking the batch engine against it);
both engines produce bit-identical estimates.

Permutations are independent of each other, so the loop parallelises
across processes: ``RunnerConfig(n_jobs=4)`` farms contiguous chunks of
permutation orders out to a :mod:`multiprocessing` pool — the matrix and
estimators ship once per worker (pool initializer), and each task carries
only its chunk's column-order index arrays, which every worker evaluates
through its own :class:`PermutationBatch`.  The permutation orders are
drawn *before* dispatch from the same seeded generator the serial path
uses, so results are bit-identical for any ``n_jobs`` and either engine
(pinned by ``tests/test_experiments_runner_results.py`` and the golden
scenario suite).
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.exceptions import ValidationError
from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import check_int
from repro.core.backend import get_backend
from repro.core.base import EstimatorProtocol, batch_estimates, sweep_estimates
from repro.core.registry import get_estimator
from repro.core.state import PermutationBatch, matrix_sweep_states
from repro.crowd.response_matrix import ResponseMatrix
from repro.experiments.results import EstimateSeries, ExperimentResult, build_series

#: Recognised evaluation engines.
ENGINES = ("batch", "serial")


@dataclass(frozen=True)
class RunnerConfig:
    """Configuration of an estimation run.

    Parameters
    ----------
    num_permutations:
        Number of random column permutations to average over (the paper
        uses 10).
    num_checkpoints:
        Number of evenly spaced prefix lengths at which the estimators are
        evaluated.  Ignored when ``checkpoints`` is given explicitly.
    checkpoints:
        Explicit prefix lengths to evaluate at.
    seed:
        Seed for the permutation randomness.
    n_jobs:
        Worker processes to spread the permutation trials over.  ``1``
        (the default) runs in-process; higher values use a
        :mod:`multiprocessing` pool fed one contiguous chunk of
        permutation orders per worker.  Results are identical for any
        value.
    engine:
        ``"batch"`` (default) evaluates all permutations through the
        cross-permutation tensor engine
        (:class:`~repro.core.state.PermutationBatch`); ``"serial"`` keeps
        the classic one-permutation-at-a-time sweep loop.  Results are
        bit-identical; only the wall-clock differs.
    backend:
        Name of the :class:`~repro.core.backend.ArrayBackend` the batch
        engine's tensor kernels run on (``"numpy"``, ``"numba"``,
        ``"cupy"``, ``"torch"``; ``None`` resolves via the
        ``REPRO_BACKEND`` environment variable and defaults to numpy).
        The serial engine always runs the numpy reference.  Every backend
        produces bit-identical estimates; unknown or unavailable names
        raise :class:`~repro.common.exceptions.ConfigurationError` at
        construction, not mid-run.
    """

    num_permutations: int = 10
    num_checkpoints: int = 20
    checkpoints: Optional[Sequence[int]] = None
    seed: Optional[int] = 0
    n_jobs: int = 1
    engine: str = "batch"
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_int(self.num_permutations, "num_permutations", minimum=1)
        check_int(self.num_checkpoints, "num_checkpoints", minimum=1)
        check_int(self.n_jobs, "n_jobs", minimum=1)
        if self.engine not in ENGINES:
            raise ValidationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        # Fail fast on an unknown/unavailable backend (including a bad
        # REPRO_BACKEND value) — a ConfigurationError here beats one from
        # the middle of a long sweep or a pool worker.
        get_backend(self.backend)

    def resolve_checkpoints(self, num_columns: int) -> List[int]:
        """The prefix lengths to evaluate for a matrix with ``num_columns`` columns."""
        if self.checkpoints is not None:
            points = sorted({int(c) for c in self.checkpoints if 0 < int(c) <= num_columns})
            return points or [num_columns]
        if num_columns <= self.num_checkpoints:
            return list(range(1, num_columns + 1))
        step = num_columns / self.num_checkpoints
        points = sorted({int(round(step * (i + 1))) for i in range(self.num_checkpoints)})
        return [p for p in points if p >= 1]


def _evaluate_permutation(
    matrix: ResponseMatrix,
    order: Optional[List[int]],
    estimators: List[EstimatorProtocol],
    checkpoints: List[int],
) -> Dict[str, List[float]]:
    """Evaluate every estimator's sweep for one permutation trial.

    The body of both the serial loop and the pool workers, guaranteeing
    the two run identical code.  The sweep states are built once and
    shared by all estimators of the trial.
    """
    permuted = matrix if order is None else matrix.permute_columns(order)
    states = matrix_sweep_states(permuted, checkpoints)
    return {
        estimator.name: [
            result.estimate
            for result in sweep_estimates(estimator, permuted, checkpoints, states=states)
        ]
        for estimator in estimators
    }


def _evaluate_permutation_batch(
    matrix: ResponseMatrix,
    orders: List[Optional[List[int]]],
    estimators: List[EstimatorProtocol],
    checkpoints: List[int],
    backend: Optional[str] = None,
) -> List[Dict[str, List[float]]]:
    """Evaluate a chunk of permutation trials through one tensor batch.

    The body of both the serial batch path and the pool workers of the
    chunked dispatch, guaranteeing the two run identical code.  Returns
    one ``{estimator: [estimates]}`` dict per order, in order — the same
    shape the per-permutation loop produces.
    """
    batch = PermutationBatch(matrix, orders, checkpoints, backend=backend)
    per_estimator = {
        estimator.name: batch_estimates(estimator, batch)
        for estimator in estimators
    }
    return [
        {
            name: [result.estimate for result in results[p]]
            for name, results in per_estimator.items()
        }
        for p in range(batch.num_permutations)
    ]


def _chunk_orders(
    orders: List[Optional[List[int]]], num_chunks: int
) -> List[List[Optional[List[int]]]]:
    """Split the trial orders into at most ``num_chunks`` contiguous chunks."""
    size, extra = divmod(len(orders), num_chunks)
    chunks, start = [], 0
    for index in range(num_chunks):
        end = start + size + (1 if index < extra else 0)
        if end > start:
            chunks.append(orders[start:end])
        start = end
    return chunks


#: Per-process trial context installed by the pool initializer: only the
#: permutation orders travel per task, not the (identical) matrix.
_worker_context: Dict[str, object] = {}


def _init_worker(
    matrix: ResponseMatrix,
    estimators: List[EstimatorProtocol],
    checkpoints: List[int],
    backend: Optional[str] = None,
) -> None:
    """Install the shared trial inputs in a pool worker (once per process)."""
    _worker_context["args"] = (matrix, estimators, checkpoints, backend)


def _evaluate_order(order: Optional[List[int]]) -> Dict[str, List[float]]:
    """Pool task: one permutation trial against the worker's installed context."""
    matrix, estimators, checkpoints, _ = _worker_context["args"]
    return _evaluate_permutation(matrix, order, estimators, checkpoints)


def _evaluate_order_chunk(
    orders: List[Optional[List[int]]],
) -> List[Dict[str, List[float]]]:
    """Pool task: one chunk of batched trials against the installed context."""
    matrix, estimators, checkpoints, backend = _worker_context["args"]
    return _evaluate_permutation_batch(
        matrix, orders, estimators, checkpoints, backend=backend
    )


class EstimationRunner:
    """Evaluate a set of estimators over a vote matrix's task stream.

    Parameters
    ----------
    estimators:
        Estimator instances or registry names.
    config:
        Runner configuration.
    """

    def __init__(
        self,
        estimators: Sequence,
        config: Optional[RunnerConfig] = None,
    ) -> None:
        self.estimators: List[EstimatorProtocol] = [
            get_estimator(e) if isinstance(e, str) else e for e in estimators
        ]
        if not self.estimators:
            raise ValueError("at least one estimator is required")
        names = [est.name for est in self.estimators]
        if len(set(names)) != len(names):
            raise ValueError(f"estimator names must be unique, got {names}")
        self.config = config or RunnerConfig()

    def _permutation_orders(
        self, matrix: ResponseMatrix, seed: RandomState
    ) -> List[Optional[List[int]]]:
        """Column orders per trial, drawn sequentially from the seeded rng.

        Trial 0 always evaluates the original column order (``None``); the
        sequential draw keeps the orders — and therefore every estimate —
        independent of ``n_jobs`` and identical to earlier serial runs.
        """
        rng = ensure_rng(seed if seed is not None else derive_rng(self.config.seed, 101))
        orders: List[Optional[List[int]]] = [None]
        for _ in range(1, self.config.num_permutations):
            orders.append([int(i) for i in rng.permutation(matrix.num_columns)])
        return orders

    def run(
        self,
        matrix: ResponseMatrix,
        *,
        ground_truth: Optional[float] = None,
        name: str = "experiment",
        metadata: Optional[Dict[str, object]] = None,
        seed: RandomState = None,
    ) -> ExperimentResult:
        """Run the permutation-averaged evaluation.

        Parameters
        ----------
        matrix:
            The fully collected worker-response matrix.
        ground_truth:
            The true number of errors (or switches), recorded in the result
            for scoring.
        name:
            Experiment name recorded in the result.
        metadata:
            Extra metadata to carry along.
        seed:
            Permutation seed; defaults to the runner config's seed.
        """
        checkpoints = self.config.resolve_checkpoints(matrix.num_columns)
        orders = self._permutation_orders(matrix, seed)
        engine = self.config.engine

        n_jobs = min(self.config.n_jobs, len(orders))
        trial_results = None
        if n_jobs > 1:
            # The matrix and estimators are identical across trials, so they
            # ship once per worker process (initializer) rather than once
            # per task; only the column-order index arrays travel with the
            # tasks (one order per task for the serial engine, one chunk of
            # orders per task for the batch engine).
            # Platforms without usable multiprocessing (no /dev/shm, no
            # sem_open, sandboxed interpreters) fail at pool *construction*
            # and degrade to the serial path — results are identical either
            # way, only wall-clock differs.  Errors raised while evaluating
            # (inside pool.map) are real and propagate.
            try:
                pool = multiprocessing.get_context().Pool(
                    n_jobs,
                    initializer=_init_worker,
                    initargs=(matrix, self.estimators, checkpoints, self.config.backend),
                )
            except (ImportError, NotImplementedError, OSError, PermissionError) as error:
                warnings.warn(
                    f"multiprocessing is unavailable on this platform ({error!r}); "
                    f"falling back to serial execution (n_jobs=1)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                n_jobs = 1
            else:
                with pool:
                    if engine == "batch":
                        chunk_results = pool.map(
                            _evaluate_order_chunk, _chunk_orders(orders, n_jobs)
                        )
                        trial_results = [
                            trial for chunk in chunk_results for trial in chunk
                        ]
                    else:
                        trial_results = pool.map(_evaluate_order, orders)
        if trial_results is None:
            if engine == "batch":
                trial_results = _evaluate_permutation_batch(
                    matrix, orders, self.estimators, checkpoints,
                    backend=self.config.backend,
                )
            else:
                trial_results = [
                    _evaluate_permutation(matrix, order, self.estimators, checkpoints)
                    for order in orders
                ]

        experiment = ExperimentResult(
            name=name,
            ground_truth=ground_truth,
            metadata=dict(metadata or {}),
        )
        for estimator in self.estimators:
            per_trial = [trial[estimator.name] for trial in trial_results]
            experiment.add_series(build_series(estimator.name, checkpoints, per_trial))
        experiment.metadata.setdefault("num_permutations", self.config.num_permutations)
        experiment.metadata.setdefault("checkpoints", list(checkpoints))
        experiment.metadata.setdefault("n_jobs", n_jobs)
        experiment.metadata.setdefault("engine", engine)
        experiment.metadata.setdefault(
            "backend", get_backend(self.config.backend).name
        )
        return experiment
