"""The estimation runner: estimators x task-stream prefixes x permutations.

Every figure in the paper plots estimates against the number of consumed
tasks, averaged over ``r = 10`` random permutations of the workers.  The
runner implements exactly that loop:

1. take a fully collected vote matrix,
2. for each of ``num_permutations`` random column orders,
3. run every estimator's incremental ``estimate_sweep`` over the
   checkpoint prefixes (one single-pass sweep per estimator instead of a
   full recomputation per checkpoint — identical estimates),
4. aggregate per-checkpoint means and standard deviations into
   :class:`~repro.experiments.results.EstimateSeries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import check_int
from repro.core.base import EstimatorProtocol, sweep_estimates
from repro.core.registry import get_estimator
from repro.crowd.response_matrix import ResponseMatrix
from repro.experiments.results import EstimateSeries, ExperimentResult, build_series


@dataclass(frozen=True)
class RunnerConfig:
    """Configuration of an estimation run.

    Parameters
    ----------
    num_permutations:
        Number of random column permutations to average over (the paper
        uses 10).
    num_checkpoints:
        Number of evenly spaced prefix lengths at which the estimators are
        evaluated.  Ignored when ``checkpoints`` is given explicitly.
    checkpoints:
        Explicit prefix lengths to evaluate at.
    seed:
        Seed for the permutation randomness.
    """

    num_permutations: int = 10
    num_checkpoints: int = 20
    checkpoints: Optional[Sequence[int]] = None
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        check_int(self.num_permutations, "num_permutations", minimum=1)
        check_int(self.num_checkpoints, "num_checkpoints", minimum=1)

    def resolve_checkpoints(self, num_columns: int) -> List[int]:
        """The prefix lengths to evaluate for a matrix with ``num_columns`` columns."""
        if self.checkpoints is not None:
            points = sorted({int(c) for c in self.checkpoints if 0 < int(c) <= num_columns})
            return points or [num_columns]
        if num_columns <= self.num_checkpoints:
            return list(range(1, num_columns + 1))
        step = num_columns / self.num_checkpoints
        points = sorted({int(round(step * (i + 1))) for i in range(self.num_checkpoints)})
        return [p for p in points if p >= 1]


class EstimationRunner:
    """Evaluate a set of estimators over a vote matrix's task stream.

    Parameters
    ----------
    estimators:
        Estimator instances or registry names.
    config:
        Runner configuration.
    """

    def __init__(
        self,
        estimators: Sequence,
        config: Optional[RunnerConfig] = None,
    ) -> None:
        self.estimators: List[EstimatorProtocol] = [
            get_estimator(e) if isinstance(e, str) else e for e in estimators
        ]
        if not self.estimators:
            raise ValueError("at least one estimator is required")
        names = [est.name for est in self.estimators]
        if len(set(names)) != len(names):
            raise ValueError(f"estimator names must be unique, got {names}")
        self.config = config or RunnerConfig()

    def run(
        self,
        matrix: ResponseMatrix,
        *,
        ground_truth: Optional[float] = None,
        name: str = "experiment",
        metadata: Optional[Dict[str, object]] = None,
        seed: RandomState = None,
    ) -> ExperimentResult:
        """Run the permutation-averaged evaluation.

        Parameters
        ----------
        matrix:
            The fully collected worker-response matrix.
        ground_truth:
            The true number of errors (or switches), recorded in the result
            for scoring.
        name:
            Experiment name recorded in the result.
        metadata:
            Extra metadata to carry along.
        seed:
            Permutation seed; defaults to the runner config's seed.
        """
        rng = ensure_rng(seed if seed is not None else derive_rng(self.config.seed, 101))
        checkpoints = self.config.resolve_checkpoints(matrix.num_columns)

        # per_estimator[name][trial] -> list of estimates per checkpoint
        per_estimator: Dict[str, List[List[float]]] = {
            est.name: [] for est in self.estimators
        }
        for trial in range(self.config.num_permutations):
            if trial == 0:
                permuted = matrix
            else:
                order = rng.permutation(matrix.num_columns)
                permuted = matrix.permute_columns([int(i) for i in order])
            # One incremental sweep per estimator instead of a full
            # recomputation at every checkpoint (identical estimates).
            for estimator in self.estimators:
                results = sweep_estimates(estimator, permuted, checkpoints)
                per_estimator[estimator.name].append(
                    [result.estimate for result in results]
                )

        experiment = ExperimentResult(
            name=name,
            ground_truth=ground_truth,
            metadata=dict(metadata or {}),
        )
        for estimator in self.estimators:
            series = build_series(estimator.name, checkpoints, per_estimator[estimator.name])
            experiment.add_series(series)
        experiment.metadata.setdefault("num_permutations", self.config.num_permutations)
        experiment.metadata.setdefault("checkpoints", list(checkpoints))
        return experiment
