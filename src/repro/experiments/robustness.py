"""Robustness study (Figure 7 of the paper).

Three simulated regimes over the 1000-pair / 100-duplicate population, each
traced against the number of tasks:

* (a) false negatives only (10 % miss rate),
* (b) false positives only (1 % false-alarm rate),
* (c) both error types together.

The estimators compared are Chao92, V-CHAO, SWITCH and VOTING; the expected
shapes are: Chao92 converges fastest when there are no false positives but
blows up as soon as there are any; V-CHAO is robust in the evenly-spread
simulation but converges slowly; SWITCH is accurate in all three regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.chao92 import Chao92Estimator
from repro.core.descriptive import VotingEstimator
from repro.core.total_error import SwitchTotalErrorEstimator
from repro.core.vchao92 import VChao92Estimator
from repro.crowd.simulator import CrowdSimulator, SimulationConfig
from repro.crowd.worker import WorkerProfile
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import EstimationRunner, RunnerConfig


@dataclass
class RobustnessConfig:
    """Parameters of the Figure 7 robustness traces.

    Parameters
    ----------
    num_items / num_errors:
        Simulated population (1000 / 100 in the paper).
    num_tasks:
        Length of the task stream.
    items_per_task:
        Items per task (15 in the paper).
    false_negative_rate / false_positive_rate:
        The two error rates (10 % and 1 % in the paper).
    num_permutations:
        Worker permutations averaged per checkpoint.
    num_checkpoints:
        Number of x-axis points.
    seed:
        Root seed.
    """

    num_items: int = 1000
    num_errors: int = 100
    num_tasks: int = 150
    items_per_task: int = 15
    false_negative_rate: float = 0.10
    false_positive_rate: float = 0.01
    num_permutations: int = 5
    num_checkpoints: int = 15
    seed: int = 0


#: The three regimes of Figure 7, keyed by panel name.
SCENARIOS = ("false_negatives_only", "false_positives_only", "both")


def scenario_profile(scenario: str, config: RobustnessConfig) -> WorkerProfile:
    """The worker profile of one Figure 7 panel."""
    if scenario == "false_negatives_only":
        return WorkerProfile.false_negative_only(config.false_negative_rate)
    if scenario == "false_positives_only":
        return WorkerProfile.false_positive_only(config.false_positive_rate)
    if scenario == "both":
        return WorkerProfile(
            false_negative_rate=config.false_negative_rate,
            false_positive_rate=config.false_positive_rate,
        )
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")


def run_robustness_scenario(
    scenario: str,
    config: Optional[RobustnessConfig] = None,
) -> ExperimentResult:
    """Run one Figure 7 panel and return the estimator traces."""
    config = config or RobustnessConfig()
    profile = scenario_profile(scenario, config)
    dataset = generate_synthetic_pairs(
        SyntheticPairConfig(num_items=config.num_items, num_errors=config.num_errors),
        seed=config.seed,
    )
    simulation = CrowdSimulator(
        dataset,
        SimulationConfig(
            num_tasks=config.num_tasks,
            items_per_task=config.items_per_task,
            worker_profile=profile,
            seed=config.seed,
        ),
    ).run()
    runner = EstimationRunner(
        [
            Chao92Estimator(),
            VChao92Estimator(),
            SwitchTotalErrorEstimator(),
            VotingEstimator(),
        ],
        RunnerConfig(
            num_permutations=config.num_permutations,
            num_checkpoints=config.num_checkpoints,
            seed=config.seed,
        ),
    )
    return runner.run(
        simulation.matrix,
        ground_truth=float(simulation.true_error_count),
        name=f"robustness-{scenario}",
        metadata={
            "scenario": scenario,
            "false_negative_rate": profile.false_negative_rate,
            "false_positive_rate": profile.false_positive_rate,
            "num_tasks": config.num_tasks,
            "items_per_task": config.items_per_task,
        },
    )


def run_all_scenarios(config: Optional[RobustnessConfig] = None) -> Dict[str, ExperimentResult]:
    """Run all three Figure 7 panels."""
    config = config or RobustnessConfig()
    return {scenario: run_robustness_scenario(scenario, config) for scenario in SCENARIOS}
