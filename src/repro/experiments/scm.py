"""Sample-Clean-Minimum (SCM): the task-cost reference line.

The paper compares the number of tasks its estimators need against the
minimum number of tasks required to clean a sample with a fixed quorum of
workers per record:

.. math::

    SCM = \\frac{q \\cdot S}{p}

with ``q`` workers per record (3 in the paper), ``S`` records in the
sample, and ``p`` records per task.  The point is that the proposed
estimators reach reliable estimates at a comparable task budget, even
though their random assignment adds redundancy.
"""

from __future__ import annotations

import math

from repro.common.validation import check_int


def sample_clean_minimum(
    sample_size: int,
    *,
    workers_per_record: int = 3,
    records_per_task: int = 10,
) -> int:
    """The minimum number of tasks needed to quorum-clean a sample.

    Parameters
    ----------
    sample_size:
        ``S`` — the number of records in the sample to clean.
    workers_per_record:
        ``q`` — the fixed quorum (3 in the paper's SCM definition).
    records_per_task:
        ``p`` — records per task, each task handled by a single worker.

    Returns
    -------
    int
        ``ceil(q * S / p)``.
    """
    check_int(sample_size, "sample_size", minimum=0)
    check_int(workers_per_record, "workers_per_record", minimum=1)
    check_int(records_per_task, "records_per_task", minimum=1)
    return int(math.ceil(workers_per_record * sample_size / records_per_task))
