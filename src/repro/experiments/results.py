"""Result containers shared by the experiment harness and the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import scaled_rmse


@dataclass(frozen=True)
class TracePoint:
    """One point of an estimate trace.

    Attributes
    ----------
    num_tasks:
        Position on the x-axis (number of worker-task columns consumed).
    mean:
        Mean estimate across the permutation trials.
    std:
        Sample standard deviation across trials (0 for a single trial).
    values:
        The per-trial estimates the mean/std summarise.
    """

    num_tasks: int
    mean: float
    std: float
    values: tuple


@dataclass
class EstimateSeries:
    """The trace of one estimator across the task stream.

    Attributes
    ----------
    estimator_name:
        Name of the estimator that produced the trace.
    points:
        Trace points ordered by ``num_tasks``.
    """

    estimator_name: str
    points: List[TracePoint] = field(default_factory=list)

    @property
    def x(self) -> List[int]:
        """The task counts of the trace."""
        return [p.num_tasks for p in self.points]

    @property
    def means(self) -> List[float]:
        """The mean estimates of the trace."""
        return [p.mean for p in self.points]

    @property
    def stds(self) -> List[float]:
        """The per-point standard deviations."""
        return [p.std for p in self.points]

    def final(self) -> Optional[TracePoint]:
        """The last point of the trace (``None`` for an empty trace)."""
        return self.points[-1] if self.points else None

    def value_at(self, num_tasks: int) -> float:
        """Mean estimate at the trace point closest to ``num_tasks``."""
        if not self.points:
            raise ValueError("the series is empty")
        closest = min(self.points, key=lambda p: abs(p.num_tasks - num_tasks))
        return closest.mean

    def srmse(self, truth: float) -> float:
        """Scaled RMSE of the final point's per-trial estimates against ``truth``."""
        final = self.final()
        if final is None:
            raise ValueError("the series is empty")
        return scaled_rmse(final.values, truth)

    def mean_absolute_error(self, truth: float) -> float:
        """Mean absolute error of the trace means against ``truth``."""
        if not self.points:
            raise ValueError("the series is empty")
        return float(np.mean([abs(p.mean - truth) for p in self.points]))


@dataclass
class ExperimentResult:
    """The complete output of one experiment (one figure panel).

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"figure3_restaurant"``).
    series:
        One :class:`EstimateSeries` per estimator, keyed by estimator name.
    ground_truth:
        The true value the estimates should converge to (errors or
        switches, depending on the panel).
    metadata:
        Workload parameters, dataset summaries, SCM cost, extrapolation
        bands — anything the report should carry along.
    """

    name: str
    series: Dict[str, EstimateSeries] = field(default_factory=dict)
    ground_truth: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_series(self, series: EstimateSeries) -> None:
        """Attach a series, keyed by its estimator name."""
        self.series[series.estimator_name] = series

    def estimator_names(self) -> List[str]:
        """Names of the estimators present in the result."""
        return sorted(self.series)

    def final_estimates(self) -> Dict[str, float]:
        """Final mean estimate of every series."""
        return {
            name: series.final().mean
            for name, series in self.series.items()
            if series.final() is not None
        }

    def srmse_table(self) -> Dict[str, float]:
        """Scaled RMSE of every series against the ground truth."""
        if self.ground_truth is None or self.ground_truth == 0:
            return {}
        return {name: series.srmse(self.ground_truth) for name, series in self.series.items()}


def build_series(
    estimator_name: str,
    checkpoints: Sequence[int],
    per_trial_estimates: Sequence[Sequence[float]],
) -> EstimateSeries:
    """Assemble an :class:`EstimateSeries` from per-trial estimate traces.

    Parameters
    ----------
    estimator_name:
        Name to attach to the series.
    checkpoints:
        The task counts, one per trace point.
    per_trial_estimates:
        ``per_trial_estimates[t][i]`` is trial ``t``'s estimate at
        checkpoint ``i``; every trial must cover every checkpoint.
    """
    series = EstimateSeries(estimator_name=estimator_name)
    trials = [list(t) for t in per_trial_estimates]
    for index, num_tasks in enumerate(checkpoints):
        values = tuple(trial[index] for trial in trials)
        arr = np.asarray(values, dtype=float)
        mean = float(arr.mean()) if arr.size else 0.0
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        series.points.append(
            TracePoint(num_tasks=int(num_tasks), mean=mean, std=std, values=values)
        )
    return series
