"""Command-line interface for the DQM reproduction.

The CLI exposes the experiment harness without writing any Python::

    python -m repro list                      # available experiments / estimators
    python -m repro example1                  # worked Example 1 (Section 3.2.1)
    python -m repro figure3 --tasks 300       # restaurant dataset experiment
    python -m repro figure7 --scenario both   # robustness simulation
    python -m repro quality --items 1000 --errors 100 --tasks 150
    python -m repro stream --items 500 --errors 50 --tasks 120
    python -m repro sweep --tasks 150 --permutations 5 --n-jobs 4
    python -m repro scenario list                # the declarative suite
    python -m repro scenario run spammer-infested --seed 7
    python -m repro scenario record              # refresh golden files
    python -m repro bench --smoke --check        # record perf, fail on regression
    python -m repro session create mydata --items 500   # durable serving session
    python -m repro session ingest mydata --votes batch.json --source loader --sequence 1
    python -m repro session estimate mydata
    python -m repro session compact mydata    # fold the session's log into a snapshot
    python -m repro session create other --items 200 --shards 4   # hash-sharded store
    python -m repro serve --port 8080 --store .repro-sessions     # HTTP JSON API

Every command prints the same text tables the benchmark harness produces,
so the CLI is the quickest way to eyeball a figure without running pytest.
``stream`` drives the online :class:`~repro.streaming.StreamingSession`;
``sweep`` drives the (optionally process-parallel) permutation runner;
``scenario`` drives the declarative scenario suite (``run`` prints the
canonical trajectory JSON — byte-identical to the golden file when run at
the scenario's default seed); ``session`` drives the multi-tenant serving
layer against an on-disk session store, so successive invocations build
one durable estimation session (idempotent when ``--source/--sequence``
accompany each ingested batch).  The store is log-structured: ingests
append to a per-session write-ahead log and ``session compact`` folds the
log into a fresh snapshot; ``--shards N`` partitions sessions across N
hash-routed stores under the same root (the shard count is recorded in
the root manifest and reused by later invocations).  Store errors —
unknown sessions, corrupt session directories, malformed ``--votes``
payloads — exit with code 2 and a one-line ``error:`` message instead of
a traceback.  ``serve`` exposes the same store over a JSON HTTP API
(:mod:`repro.serving.http`): it prints one parseable ``serving on
http://host:port`` line, runs until SIGTERM/SIGINT, and shuts down
cleanly with exit code 0; bind failures and store errors exit 2 with the
same one-line diagnosis.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.registry import available_estimators
from repro.core.remaining import data_quality_report
from repro.crowd.simulator import CrowdSimulator, SimulationConfig
from repro.crowd.worker import WorkerProfile
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs
from repro.experiments.examples_numeric import NumericExampleConfig, run_numeric_example
from repro.experiments.prioritization_study import PrioritizationConfig, epsilon_sweep
from repro.experiments.real_world import RealWorldExperimentConfig, run_real_world_experiment
from repro.experiments.reporting import render_series_table
from repro.experiments.robustness import SCENARIOS, RobustnessConfig, run_robustness_scenario
from repro.experiments.runner import EstimationRunner, RunnerConfig
from repro.experiments.sensitivity import SensitivityConfig, coverage_sweep, precision_sweep
from repro.experiments.workloads import address_workload, product_workload, restaurant_workload
from repro.streaming import StreamingSession

#: Experiments the CLI knows how to run.
EXPERIMENTS = (
    "example1",
    "example2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
)

#: Workload-independent tool commands.
TOOLS = (
    "list",
    "quality",
    "stream",
    "sweep",
    "scenario",
    "replay",
    "bench",
    "session",
    "serve",
)

#: Where ``repro session`` keeps its snapshots unless ``--store`` says else.
DEFAULT_SESSION_STORE = ".repro-sessions"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DQM (VLDB 2017) experiments from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and estimators")

    for name in ("example1", "example2"):
        example = sub.add_parser(name, help=f"run worked {name} from Section 3.2.1")
        example.add_argument("--seed", type=int, default=42)

    for name, helptext in (
        ("figure3", "restaurant dataset experiment (FP-heavy crowd)"),
        ("figure4", "product dataset experiment (FN-heavy crowd)"),
        ("figure5", "address dataset experiment (both error types)"),
    ):
        figure = sub.add_parser(name, help=helptext)
        figure.add_argument("--tasks", type=int, default=300, help="number of crowd tasks")
        figure.add_argument("--scale", type=float, default=0.25, help="dataset scale (1.0 = paper size)")
        figure.add_argument("--permutations", type=int, default=3)
        figure.add_argument("--seed", type=int, default=0)

    figure6 = sub.add_parser("figure6", help="sensitivity sweeps (precision and coverage)")
    figure6.add_argument("--trials", type=int, default=3)
    figure6.add_argument("--seed", type=int, default=0)

    figure7 = sub.add_parser("figure7", help="robustness simulation")
    figure7.add_argument("--scenario", choices=SCENARIOS, default="both")
    figure7.add_argument("--tasks", type=int, default=150)
    figure7.add_argument("--seed", type=int, default=0)

    figure8 = sub.add_parser("figure8", help="epsilon-prioritisation sweep")
    figure8.add_argument("--trials", type=int, default=3)
    figure8.add_argument("--seed", type=int, default=0)

    quality = sub.add_parser("quality", help="run a synthetic quality-report demo")
    quality.add_argument("--items", type=int, default=1000)
    quality.add_argument("--errors", type=int, default=100)
    quality.add_argument("--tasks", type=int, default=150)
    quality.add_argument("--fn-rate", type=float, default=0.1)
    quality.add_argument("--fp-rate", type=float, default=0.01)
    quality.add_argument("--seed", type=int, default=0)

    stream = sub.add_parser(
        "stream",
        help="feed a simulated crowd through a streaming session, printing live estimates",
    )
    stream.add_argument("--items", type=int, default=500)
    stream.add_argument("--errors", type=int, default=50)
    stream.add_argument("--tasks", type=int, default=120)
    stream.add_argument("--report-every", type=int, default=20, help="tasks between printed rows")
    stream.add_argument("--fn-rate", type=float, default=0.1)
    stream.add_argument("--fp-rate", type=float, default=0.01)
    stream.add_argument(
        "--estimators",
        nargs="+",
        default=["voting", "chao92", "switch_total"],
        help="registry names to track",
    )
    stream.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep",
        help="permutation-averaged sweep over a simulated crowd (optionally parallel)",
    )
    sweep.add_argument("--items", type=int, default=1000)
    sweep.add_argument("--errors", type=int, default=100)
    sweep.add_argument("--tasks", type=int, default=150)
    sweep.add_argument("--permutations", type=int, default=5)
    sweep.add_argument("--checkpoints", type=int, default=10)
    sweep.add_argument("--n-jobs", type=int, default=1, help="worker processes for the permutation loop")
    sweep.add_argument(
        "--backend",
        default=None,
        help="array backend for the tensor engine (numpy/numba/cupy/torch; "
        "default: $REPRO_BACKEND or numpy)",
    )
    sweep.add_argument("--fn-rate", type=float, default=0.1)
    sweep.add_argument("--fp-rate", type=float, default=0.01)
    sweep.add_argument(
        "--estimators",
        nargs="+",
        default=["voting", "chao92", "vchao92", "switch_total"],
        help="registry names to evaluate",
    )
    sweep.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench",
        help="time the runner workloads and update BENCH_runner.json",
    )
    # Options are defined once in repro.experiments.bench and shared with
    # tools/bench_record.py, so the two entry points cannot drift.
    from repro.experiments.bench import add_bench_arguments

    add_bench_arguments(bench)

    scenario = sub.add_parser(
        "scenario",
        help="run the declarative scenario suite (adversarial regimes + goldens)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list registered scenarios with tags")
    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario and print its canonical trajectory JSON"
    )
    scenario_run.add_argument("name", help="registered scenario name")
    scenario_run.add_argument(
        "--seed", type=int, default=None, help="override the scenario's default seed"
    )
    scenario_record = scenario_sub.add_parser(
        "record", help="(re)write golden trajectory files under tests/golden/"
    )
    scenario_record.add_argument(
        "names", nargs="*", help="scenarios to record (default: all)"
    )
    scenario_check = scenario_sub.add_parser(
        "check", help="replay scenarios against their golden files and diff"
    )
    scenario_check.add_argument(
        "names", nargs="*", help="scenarios to check (default: all)"
    )

    replay = sub.add_parser(
        "replay",
        help="convert a recorded session WAL into a traced scenario "
        "(the trace-replay regression codec)",
    )
    replay.add_argument("wal", help="path to a session write-ahead log file")
    replay.add_argument(
        "--name", required=True, help="name for the traced scenario"
    )
    replay.add_argument(
        "--estimators",
        nargs="+",
        default=None,
        help="override the estimator list recorded in the log",
    )
    replay.add_argument(
        "--run",
        action="store_true",
        help="run the traced scenario and print its canonical trajectory "
        "JSON instead of the scenario spec",
    )

    session = sub.add_parser(
        "session",
        help="durable serving sessions: create/ingest/estimate/compact/snapshot/restore/list",
    )
    session_sub = session.add_subparsers(dest="session_command", required=True)

    def _session_parser(command: str, helptext: str, named: bool = True):
        sub_parser = session_sub.add_parser(command, help=helptext)
        if named:
            sub_parser.add_argument("name", help="session name")
        sub_parser.add_argument(
            "--store",
            default=DEFAULT_SESSION_STORE,
            help=f"session store directory (default: {DEFAULT_SESSION_STORE})",
        )
        sub_parser.add_argument(
            "--shards",
            type=int,
            default=None,
            help="partition sessions across N hash-routed shard stores "
            "(recorded in the store root on first use; later invocations "
            "may omit it)",
        )
        return sub_parser

    session_create = _session_parser("create", "create a new named session")
    items = session_create.add_mutually_exclusive_group(required=True)
    items.add_argument("--items", type=int, help="item ids 0..N-1")
    items.add_argument("--item-ids", type=int, nargs="+", help="explicit item ids")
    session_create.add_argument(
        "--estimators", nargs="+", default=None, help="registry names to track"
    )
    session_create.add_argument(
        "--no-keep-votes",
        action="store_true",
        help="run in O(state) memory (no matrix materialisation)",
    )

    session_ingest = _session_parser("ingest", "ingest a JSON batch of task columns")
    session_ingest.add_argument(
        "--votes",
        required=True,
        help="JSON file of columns ('-' for stdin): "
        '[{"votes": {"0": 1, "5": 0}, "worker": 3}, ...] or plain vote maps',
    )
    session_ingest.add_argument("--source", default=None, help="delivery source id")
    session_ingest.add_argument(
        "--sequence", type=int, default=None, help="delivery sequence number"
    )

    _session_parser("estimate", "print the session's current estimates")
    _session_parser("compact", "fold the session's write-ahead log into a snapshot")
    session_snapshot = _session_parser("snapshot", "persist the session snapshot")
    session_snapshot.add_argument(
        "--out", default=None, help="also export the snapshot to this directory"
    )
    session_restore = _session_parser("restore", "activate a session from a snapshot")
    session_restore.add_argument(
        "--from",
        dest="source_dir",
        default=None,
        help="import a foreign snapshot directory under this name",
    )
    _session_parser("list", "list stored sessions with progress", named=False)

    serve = sub.add_parser(
        "serve",
        help="serve the session store over a JSON HTTP API (see docs/http.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: 0 = ephemeral; the resolved port is printed)",
    )
    serve.add_argument(
        "--store",
        default=DEFAULT_SESSION_STORE,
        help=f"session store directory (default: {DEFAULT_SESSION_STORE})",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition sessions across N hash-routed shard stores",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run each shard in its own worker process (process-per-shard "
        "serving; implies a sharded store with this many shards)",
    )
    return parser


def _print_numeric_example(result: dict) -> None:
    for key in ("nominal", "chao92_total", "chao92_remaining", "switch_total", "true_errors"):
        print(f"  {key:>16}: {result[key]:.1f}")


def _run_real_world(name: str, args: argparse.Namespace) -> None:
    builders = {
        "figure3": lambda: restaurant_workload(scale=args.scale, seed=7),
        "figure4": lambda: product_workload(scale=max(0.02, args.scale / 2), seed=11),
        "figure5": lambda: address_workload(scale=min(1.0, args.scale * 4), seed=13),
    }
    workload = builders[name]()
    config = RealWorldExperimentConfig(
        num_tasks=args.tasks,
        num_permutations=args.permutations,
        seed=args.seed,
    )
    panels = run_real_world_experiment(workload, config)
    print(render_series_table(panels["total_error"], max_rows=12))
    print()
    print(render_series_table(panels["positive_switches"], max_rows=6))
    print()
    print(render_series_table(panels["negative_switches"], max_rows=6))


def _simulate_crowd(args: argparse.Namespace):
    """Build the synthetic crowd simulation the tool commands share."""
    dataset = generate_synthetic_pairs(
        SyntheticPairConfig(num_items=args.items, num_errors=args.errors), seed=args.seed
    )
    simulation = CrowdSimulator(
        dataset,
        SimulationConfig(
            num_tasks=args.tasks,
            items_per_task=15,
            worker_profile=WorkerProfile(
                false_negative_rate=args.fn_rate, false_positive_rate=args.fp_rate
            ),
            seed=args.seed,
        ),
    ).run()
    return simulation


def _run_stream(args: argparse.Namespace) -> None:
    simulation = _simulate_crowd(args)
    matrix = simulation.matrix
    # Registry estimators all consume the live state, so the session can
    # drop the raw columns and run in O(state) memory.
    session = StreamingSession(matrix.item_ids, args.estimators, keep_votes=False)
    names = [est.name for est in session.estimators]
    print(
        f"streaming {matrix.num_columns} tasks over {session.num_items} items "
        f"(true errors: {simulation.true_error_count})"
    )
    print(f"  {'tasks':>6} {'votes':>7} " + "".join(f"{name:>14}" for name in names))
    report_every = max(1, args.report_every)
    workers = matrix.column_workers
    for column in range(matrix.num_columns):
        session.add_column(matrix.column_votes(column), workers[column])
        if (column + 1) % report_every == 0 or column + 1 == matrix.num_columns:
            results = session.estimate()
            row = f"  {session.num_columns:>6} {session.total_votes:>7} "
            row += "".join(f"{results[name].estimate:>14.1f}" for name in names)
            print(row)


def _run_sweep(args: argparse.Namespace) -> None:
    simulation = _simulate_crowd(args)
    runner = EstimationRunner(
        args.estimators,
        RunnerConfig(
            num_permutations=args.permutations,
            num_checkpoints=args.checkpoints,
            seed=args.seed,
            n_jobs=args.n_jobs,
            backend=args.backend,
        ),
    )
    result = runner.run(
        simulation.matrix,
        ground_truth=float(simulation.true_error_count),
        name="cli_sweep",
    )
    print(
        f"sweep over {simulation.matrix.num_columns} tasks, "
        f"{args.permutations} permutations, n_jobs={args.n_jobs}"
    )
    print(render_series_table(result, max_rows=args.checkpoints))


def _print_sweep(result) -> None:
    names = sorted(result.srmse)
    print(f"  {result.parameter_name:>16} " + "".join(f"{str(n):>14}" for n in names))
    for index, value in enumerate(result.values):
        row = f"  {value:>16.2f} "
        for name in names:
            row += f"{result.srmse[name][index]:>14.3f}"
        print(row)


def _run_scenario_command(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        ScenarioRunner,
        available_scenarios,
        check_scenarios,
        get_scenario,
        record_scenarios,
    )
    from repro.scenarios.golden import report_check_results

    if args.scenario_command == "list":
        print(f"{'scenario':<22} {'tags':<24} description")
        for name in available_scenarios():
            scenario = get_scenario(name)
            print(f"{name:<22} {','.join(scenario.tags):<24} {scenario.description}")
        return 0

    if args.scenario_command == "run":
        trajectory = ScenarioRunner().run(get_scenario(args.name), seed=args.seed)
        print(trajectory.canonical_json())
        return 0

    if args.scenario_command == "record":
        for path in record_scenarios(args.names or None):
            print(f"recorded {path}")
        return 0

    if args.scenario_command == "check":
        failures = report_check_results(check_scenarios(args.names or None))
        return 1 if failures else 0

    return 1  # pragma: no cover - argparse enforces the subcommand choices


def _run_replay_command(args: argparse.Namespace) -> int:
    """``repro replay``: session WAL in, traced scenario (or trajectory) out.

    Prints canonical JSON either way — piping the spec into a file and
    registering it, or diffing the ``--run`` trajectory against a pinned
    golden, both work byte-for-byte.
    """
    import json as _json

    from repro.scenarios import ScenarioRunner, scenario_from_wal

    scenario = scenario_from_wal(
        args.wal, args.name, estimators=args.estimators
    )
    if args.run:
        print(ScenarioRunner().run(scenario).canonical_json())
        return 0
    print(
        _json.dumps(
            scenario.to_dict(), sort_keys=True, indent=2, ensure_ascii=True
        )
    )
    return 0


def _print_estimates(results) -> None:
    print(f"  {'estimator':>16} {'estimate':>12} {'observed':>12} {'remaining':>12}")
    for name in sorted(results):
        result = results[name]
        print(
            f"  {name:>16} {result.estimate:>12.1f} "
            f"{result.observed:>12.1f} {result.remaining:>12.1f}"
        )


def _build_session_service(args: argparse.Namespace):
    """The serving façade behind ``repro session`` — sharded when asked.

    ``--workers N`` gets the process-per-shard
    :class:`~repro.serving.workers.ProcessShardedService` (each shard in
    its own worker process, exclusively owning its store).  A root that
    carries a shard manifest (or an explicit ``--shards``) gets the
    in-process hash-partitioned :class:`ShardedEstimationService`;
    anything else stays a single :class:`EstimationService` over a
    directory store, exactly as before the split.
    """
    from repro.streaming import DirectorySessionStore, EstimationService
    from repro.streaming.serving import SHARD_MANIFEST_FILENAME, ShardedEstimationService

    shards = getattr(args, "shards", None)
    workers = getattr(args, "workers", None)
    if workers is not None:
        from repro.common.exceptions import ConfigurationError
        from repro.serving.workers import ProcessShardedService

        if shards is not None and shards != workers:
            raise ConfigurationError(
                f"--workers {workers} conflicts with --shards {shards}: "
                "process serving runs exactly one worker per shard"
            )
        return ProcessShardedService(args.store, num_shards=workers)
    manifest = Path(args.store) / SHARD_MANIFEST_FILENAME
    if shards is not None or manifest.exists():
        return ShardedEstimationService(args.store, num_shards=shards)
    return EstimationService(DirectorySessionStore(args.store))


def _run_session_command(args: argparse.Namespace) -> int:
    import json as _json

    from repro.streaming import read_snapshot, write_snapshot

    service = _build_session_service(args)
    # On a log-structured store every mutation is durable the moment the
    # call returns, so the explicit post-command snapshots below are only
    # needed for stores without a write-ahead log.
    needs_snapshot = not service.wal_enabled

    if args.session_command == "create":
        item_ids = args.item_ids if args.item_ids is not None else range(args.items)
        service.create_session(
            args.name,
            list(item_ids),
            args.estimators,
            keep_votes=not args.no_keep_votes,
        )
        if needs_snapshot:
            service.snapshot(args.name)  # durable from the first moment
        print(f"created session {args.name!r} in {args.store}")
        return 0

    if args.session_command == "ingest":
        from repro.common.exceptions import ConfigurationError, ValidationError
        from repro.serving.http import parse_columns_payload

        try:
            if args.votes == "-":
                payload = _json.load(sys.stdin)
            else:
                with open(args.votes, "r", encoding="utf-8") as handle:
                    payload = _json.load(handle)
        except _json.JSONDecodeError as error:
            raise ValidationError(
                f"--votes payload is not valid JSON: {error}"
            ) from error
        except OSError as error:
            raise ConfigurationError(
                f"cannot read --votes file {args.votes!r}: {error}"
            ) from error
        # Same column grammar as the HTTP batch endpoint: either
        # {"votes": {...}, "worker": n} or the bare {item: vote} mapping,
        # with every malformed shape diagnosed as a ValidationError.
        columns, workers = parse_columns_payload(payload)
        result = service.ingest(
            args.name,
            columns,
            worker_ids=workers,
            source=args.source,
            sequence=args.sequence,
        )
        if needs_snapshot:
            service.snapshot(args.name)
        status = "duplicate batch skipped" if result.duplicate else "applied"
        print(
            f"{status}: {result.applied} column(s); session now at "
            f"{result.num_columns} column(s), {result.total_votes} vote(s)"
        )
        return 0

    if args.session_command == "estimate":
        _print_estimates(service.estimates(args.name))
        return 0

    if args.session_command == "compact":
        service.compact(args.name)
        print(f"compacted {args.name!r}: log folded into a fresh snapshot")
        return 0

    if args.session_command == "snapshot":
        snapshot = service.snapshot(args.name)
        print(f"snapshotted {args.name!r} -> {Path(args.store) / args.name}")
        if args.out:
            write_snapshot(snapshot, args.out)
            print(f"exported -> {args.out}")
        return 0

    if args.session_command == "restore":
        snapshot = read_snapshot(args.source_dir) if args.source_dir else None
        progress = service.restore(args.name, snapshot)
        if needs_snapshot:
            service.snapshot(args.name)
        print(f"restored {args.name!r}: " + ", ".join(
            f"{key}={value:.0f}" for key, value in progress.items()
        ))
        return 0

    if args.session_command == "list":
        names = service.sessions()
        if not names:
            print(f"no sessions in {args.store}")
            return 0
        print(f"{'session':<24} {'columns':>8} {'votes':>8} {'majority':>9}")
        for name in names:
            progress = service.progress(name)
            print(
                f"{name:<24} {progress['num_columns']:>8.0f} "
                f"{progress['total_votes']:>8.0f} {progress['majority_count']:>9.0f}"
            )
        return 0

    return 1  # pragma: no cover - argparse enforces the subcommand choices


def _run_serve_command(args: argparse.Namespace) -> int:
    """``repro serve``: the session store behind the JSON HTTP API.

    Prints one parseable ``serving on http://host:port`` line once the
    socket is bound (ephemeral ``--port 0`` included), then serves until
    SIGTERM/SIGINT asks for a clean shutdown.  Runs the listener on its
    own thread and waits on an event here, because calling
    ``shutdown()`` from a signal handler on the serving thread would
    deadlock the poll loop it interrupts.
    """
    import signal
    import threading

    from repro.serving.http import HttpServingServer

    service = _build_session_service(args)
    server = HttpServingServer(service, host=args.host, port=args.port)

    # Handlers go in before the banner: a supervisor that signals the
    # moment it parses the URL must still get a clean shutdown.
    stop = threading.Event()
    previous = {
        signum: signal.signal(signum, lambda *_: stop.set())
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"serving on {server.url} (store: {args.store})", flush=True)
    try:
        server.start()
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        server.shutdown()
        # Process-sharded services drain their shard workers here; the
        # in-process façades expose no close() and are skipped.
        drain = getattr(service, "close", None)
        if callable(drain):
            drain()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("shutdown complete", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "scenario":
        return _run_scenario_command(args)

    if args.command == "replay":
        from repro.common.exceptions import ConfigurationError, ValidationError

        try:
            return _run_replay_command(args)
        except (ConfigurationError, ValidationError, OSError) as error:
            # Missing or torn log files, logs without a create record:
            # operator-facing problems get a one-line diagnosis.
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command in ("session", "serve"):
        from repro.common.exceptions import ConfigurationError, ValidationError

        try:
            if args.command == "serve":
                return _run_serve_command(args)
            return _run_session_command(args)
        except (ConfigurationError, ValidationError, OSError) as error:
            # Unknown sessions, corrupt session directories, bad batches,
            # occupied ports: operator-facing problems get a one-line
            # diagnosis and a distinct exit code, not a traceback.
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command in ("bench", "sweep"):
        from repro.common.exceptions import ConfigurationError, ValidationError

        try:
            if args.command == "bench":
                from repro.experiments.bench import run_from_args

                return run_from_args(args)
            _run_sweep(args)
            return 0
        except (ConfigurationError, ValidationError) as error:
            # Unknown or unavailable backends (--backend torch without
            # torch, a stray REPRO_BACKEND): a one-line diagnosis naming
            # the usable backends, never a traceback.
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command == "list":
        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("tools:")
        for name in TOOLS:
            print(f"  {name}")
        print("estimators:")
        for name in available_estimators():
            print(f"  {name}")
        return 0

    if args.command == "stream":
        _run_stream(args)
        return 0

    if args.command in ("example1", "example2"):
        fp_rate = 0.0 if args.command == "example1" else 0.01
        result = run_numeric_example(
            NumericExampleConfig(false_positive_rate=fp_rate, seed=args.seed)
        )
        print(f"{args.command} (false positive rate = {fp_rate})")
        _print_numeric_example(result)
        return 0

    if args.command in ("figure3", "figure4", "figure5"):
        _run_real_world(args.command, args)
        return 0

    if args.command == "figure6":
        config = SensitivityConfig(num_trials=args.trials, seed=args.seed)
        print("Figure 6(a): scaled error vs precision")
        _print_sweep(precision_sweep(config))
        print()
        print("Figure 6(b): scaled error vs items per task")
        _print_sweep(coverage_sweep(config))
        return 0

    if args.command == "figure7":
        config = RobustnessConfig(num_tasks=args.tasks, seed=args.seed)
        result = run_robustness_scenario(args.scenario, config)
        print(render_series_table(result, max_rows=12))
        return 0

    if args.command == "figure8":
        config = PrioritizationConfig(num_trials=args.trials, seed=args.seed)
        result = epsilon_sweep(config)
        print("Figure 8: SWITCH scaled error vs epsilon")
        header = "  epsilon " + "".join(f"  h-err={rate:>4.0%}" for rate in sorted(result.srmse))
        print(header)
        for index, epsilon in enumerate(result.epsilons):
            row = f"  {epsilon:>7.2f} "
            for rate in sorted(result.srmse):
                row += f"  {result.srmse[rate][index]:>10.3f}"
            print(row)
        return 0

    if args.command == "quality":
        simulation = _simulate_crowd(args)
        report = data_quality_report(simulation.matrix)
        print(f"detected errors      : {report.detected_errors:.0f}")
        print(f"estimated total      : {report.estimated_total_errors:.1f}")
        print(f"estimated remaining  : {report.estimated_remaining_errors:.1f}")
        print(f"quality score        : {report.quality_score:.2f}")
        print(f"(true errors         : {simulation.true_error_count})")
        return 0

    return 1  # pragma: no cover - argparse enforces the command choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
