"""Parametric worker models.

The paper's simulation study distinguishes three worker types: workers who
only make false-negative errors (miss true errors), workers who only make
false-positive errors (flag clean items), and workers who make both.  Real
crowds mix all three.  :class:`WorkerProfile` captures the two error rates,
:class:`Worker` applies them to gold labels, and :class:`WorkerPool` draws
workers from a configurable population (optionally with per-worker rate
variation, modelling the heterogeneous AMT workforce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.common.labels import CLEAN, DIRTY
from repro.common.rng import RandomState, ensure_rng
from repro.common.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class WorkerProfile:
    """Error-rate profile of a worker (or a worker population).

    Parameters
    ----------
    false_negative_rate:
        Probability that the worker labels a truly dirty item as clean
        (misses an error).  ``1 - false_negative_rate`` is the paper's
        "error detection rate".
    false_positive_rate:
        Probability that the worker labels a truly clean item as dirty.
    """

    false_negative_rate: float = 0.1
    false_positive_rate: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.false_negative_rate, "false_negative_rate")
        check_probability(self.false_positive_rate, "false_positive_rate")

    @property
    def detection_rate(self) -> float:
        """Probability of correctly flagging a dirty item."""
        return 1.0 - self.false_negative_rate

    @property
    def specificity(self) -> float:
        """Probability of correctly passing a clean item."""
        return 1.0 - self.false_positive_rate

    @classmethod
    def false_negative_only(cls, rate: float) -> "WorkerProfile":
        """Profile for the paper's "false negative errors only" worker type."""
        return cls(false_negative_rate=rate, false_positive_rate=0.0)

    @classmethod
    def false_positive_only(cls, rate: float) -> "WorkerProfile":
        """Profile for the paper's "false positive errors only" worker type."""
        return cls(false_negative_rate=0.0, false_positive_rate=rate)

    @classmethod
    def from_precision(cls, precision: float) -> "WorkerProfile":
        """Profile with symmetric error rates ``1 - precision`` on both classes.

        Figure 6(a) of the paper sweeps "worker quality (precision)"; this
        constructor reproduces that knob: a precision of 0.9 means the
        worker answers correctly with probability 0.9 regardless of the true
        label.
        """
        check_probability(precision, "precision")
        return cls(false_negative_rate=1.0 - precision, false_positive_rate=1.0 - precision)

    @classmethod
    def perfect(cls) -> "WorkerProfile":
        """An infallible worker (oracle)."""
        return cls(false_negative_rate=0.0, false_positive_rate=0.0)


@dataclass
class Worker:
    """A single crowd worker.

    Parameters
    ----------
    worker_id:
        Stable identifier.
    profile:
        The worker's error rates.
    """

    worker_id: int
    profile: WorkerProfile

    def vote(self, truly_dirty: bool, rng: RandomState = None) -> int:
        """Produce a vote for one item given its gold label.

        Parameters
        ----------
        truly_dirty:
            Whether the item is erroneous according to the gold standard.
        rng:
            Seed or generator.

        Returns
        -------
        int
            :data:`~repro.common.labels.DIRTY` or
            :data:`~repro.common.labels.CLEAN`.
        """
        rng = ensure_rng(rng)
        if truly_dirty:
            return CLEAN if rng.random() < self.profile.false_negative_rate else DIRTY
        return DIRTY if rng.random() < self.profile.false_positive_rate else CLEAN

    def vote_batch(self, truly_dirty: Sequence[bool], rng: RandomState = None) -> List[int]:
        """Vectorised :meth:`vote` over a sequence of gold labels."""
        rng = ensure_rng(rng)
        dirty = np.asarray(truly_dirty, dtype=bool)
        draws = rng.random(dirty.shape[0])
        votes = np.where(
            dirty,
            np.where(draws < self.profile.false_negative_rate, CLEAN, DIRTY),
            np.where(draws < self.profile.false_positive_rate, DIRTY, CLEAN),
        )
        return [int(v) for v in votes]


class WorkerPool:
    """A population of workers drawn on demand.

    The paper models workers as draws from a single infinite population with
    some noise around the population error rates.  ``rate_jitter`` controls
    that per-worker variation: each new worker's rates are drawn from a
    truncated normal centred on the pool profile.

    Parameters
    ----------
    profile:
        Population-level error rates.
    rate_jitter:
        Standard deviation of the per-worker rate perturbation (0 disables
        heterogeneity).
    seed:
        Seed or generator for worker-creation randomness.
    """

    def __init__(
        self,
        profile: WorkerProfile,
        *,
        rate_jitter: float = 0.0,
        seed: RandomState = None,
    ) -> None:
        check_non_negative(rate_jitter, "rate_jitter")
        self.profile = profile
        self.rate_jitter = float(rate_jitter)
        self._rng = ensure_rng(seed)
        self._workers: List[Worker] = []

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> List[Worker]:
        """Workers created so far."""
        return list(self._workers)

    def _jittered_rate(self, rate: float) -> float:
        if self.rate_jitter == 0.0:
            return rate
        perturbed = rate + float(self._rng.normal(0.0, self.rate_jitter))
        return float(min(1.0, max(0.0, perturbed)))

    def new_worker(self) -> Worker:
        """Create (and remember) a fresh worker from the population."""
        profile = WorkerProfile(
            false_negative_rate=self._jittered_rate(self.profile.false_negative_rate),
            false_positive_rate=self._jittered_rate(self.profile.false_positive_rate),
        )
        worker = Worker(worker_id=len(self._workers), profile=profile)
        self._workers.append(worker)
        return worker

    def get(self, worker_id: int) -> Worker:
        """Return a previously created worker by id."""
        return self._workers[worker_id]

    def observed_rates(self) -> Dict[str, float]:
        """Average realised error rates of the created workers (for reports)."""
        if not self._workers:
            return {
                "false_negative_rate": self.profile.false_negative_rate,
                "false_positive_rate": self.profile.false_positive_rate,
            }
        return {
            "false_negative_rate": float(
                np.mean([w.profile.false_negative_rate for w in self._workers])
            ),
            "false_positive_rate": float(
                np.mean([w.profile.false_positive_rate for w in self._workers])
            ),
        }
