"""Parametric worker models and crowd regimes.

The paper's simulation study distinguishes three worker types: workers who
only make false-negative errors (miss true errors), workers who only make
false-positive errors (flag clean items), and workers who make both.  Real
crowds mix all three — and worse.  :class:`WorkerProfile` captures the two
error rates, :class:`Worker` applies them to gold labels, and
:class:`WorkerPool` draws workers from a configurable population.

A :class:`WorkerRegime` generalises the population beyond the paper's
single-profile crowd to the adversarial regimes real platforms exhibit:

* :class:`MixtureRegime` — a population mixing honest workers with
  spammers (:meth:`WorkerProfile.spammer`) or other profile groups;
* :class:`CliqueRegime` — colluding cliques whose members submit
  *identical* answers (including identical mistakes) on every item;
* :class:`DriftRegime` — accuracy drifting over time (worker fatigue or
  a degrading worker marketplace);
* :class:`StratifiedRegime` — class-imbalanced error rates, where some
  strata of items are much harder than others;
* every regime additionally supports sparse/abandoning workers through
  ``completion_rate`` (the probability an assigned item is answered).

Regimes only *add* behaviour: a :class:`WorkerPool` built from a plain
profile is bit-identical to the pre-regime implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.common.labels import CLEAN, DIRTY
from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import (
    check_int,
    check_known_keys,
    check_non_negative,
    check_probability,
)


@dataclass(frozen=True)
class WorkerProfile:
    """Error-rate profile of a worker (or a worker population).

    Parameters
    ----------
    false_negative_rate:
        Probability that the worker labels a truly dirty item as clean
        (misses an error).  ``1 - false_negative_rate`` is the paper's
        "error detection rate".
    false_positive_rate:
        Probability that the worker labels a truly clean item as dirty.
    """

    false_negative_rate: float = 0.1
    false_positive_rate: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.false_negative_rate, "false_negative_rate")
        check_probability(self.false_positive_rate, "false_positive_rate")

    @property
    def detection_rate(self) -> float:
        """Probability of correctly flagging a dirty item."""
        return 1.0 - self.false_negative_rate

    @property
    def specificity(self) -> float:
        """Probability of correctly passing a clean item."""
        return 1.0 - self.false_positive_rate

    @classmethod
    def false_negative_only(cls, rate: float) -> "WorkerProfile":
        """Profile for the paper's "false negative errors only" worker type."""
        return cls(false_negative_rate=rate, false_positive_rate=0.0)

    @classmethod
    def false_positive_only(cls, rate: float) -> "WorkerProfile":
        """Profile for the paper's "false positive errors only" worker type."""
        return cls(false_negative_rate=0.0, false_positive_rate=rate)

    @classmethod
    def from_precision(cls, precision: float) -> "WorkerProfile":
        """Profile with symmetric error rates ``1 - precision`` on both classes.

        Figure 6(a) of the paper sweeps "worker quality (precision)"; this
        constructor reproduces that knob: a precision of 0.9 means the
        worker answers correctly with probability 0.9 regardless of the true
        label.
        """
        check_probability(precision, "precision")
        return cls(false_negative_rate=1.0 - precision, false_positive_rate=1.0 - precision)

    @classmethod
    def perfect(cls) -> "WorkerProfile":
        """An infallible worker (oracle)."""
        return cls(false_negative_rate=0.0, false_positive_rate=0.0)

    @classmethod
    def spammer(cls, dirty_bias: float = 0.5) -> "WorkerProfile":
        """A worker whose vote ignores the true label entirely.

        The vote is DIRTY with probability ``dirty_bias`` regardless of the
        gold label: 0.5 is a coin-flip spammer, values near 1.0 model
        ballot-stuffers who flag everything, values near 0.0 model lazy
        workers who pass everything.
        """
        check_probability(dirty_bias, "dirty_bias")
        return cls(false_negative_rate=1.0 - dirty_bias, false_positive_rate=dirty_bias)

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly representation (used by scenario specs)."""
        return {
            "false_negative_rate": self.false_negative_rate,
            "false_positive_rate": self.false_positive_rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "WorkerProfile":
        """Rebuild a profile from :meth:`to_dict` output.

        The dictionary is treated exactly like constructor keyword
        arguments: omitted rates take the constructor defaults, and
        unknown keys raise — profile dictionaries are hand-edited in
        scenario specs, and a typoed rate silently defaulting to 0 would
        pin an oracle crowd where an adversarial one was intended.
        """
        check_known_keys(
            data, "worker-profile keys", {"false_negative_rate", "false_positive_rate"}
        )
        return cls(**{key: float(value) for key, value in data.items()})


@dataclass
class Worker:
    """A single crowd worker.

    Parameters
    ----------
    worker_id:
        Stable identifier.
    profile:
        The worker's error rates.
    """

    worker_id: int
    profile: WorkerProfile

    def vote(self, truly_dirty: bool, rng: RandomState = None) -> int:
        """Produce a vote for one item given its gold label.

        Parameters
        ----------
        truly_dirty:
            Whether the item is erroneous according to the gold standard.
        rng:
            Seed or generator.

        Returns
        -------
        int
            :data:`~repro.common.labels.DIRTY` or
            :data:`~repro.common.labels.CLEAN`.
        """
        rng = ensure_rng(rng)
        if truly_dirty:
            return CLEAN if rng.random() < self.profile.false_negative_rate else DIRTY
        return DIRTY if rng.random() < self.profile.false_positive_rate else CLEAN

    def vote_item(self, item_id: int, truly_dirty: bool, rng: RandomState = None) -> int:
        """Produce a vote for a specific item.

        The base worker's errors are independent of the item identity, so
        this simply delegates to :meth:`vote` (consuming exactly one draw
        from ``rng``).  Adversarial workers override it: colluding workers
        answer deterministically per (clique, item) and stratified workers
        pick their error rates from the item's stratum.
        """
        return self.vote(truly_dirty, rng)

    def vote_batch(self, truly_dirty: Sequence[bool], rng: RandomState = None) -> List[int]:
        """Vectorised :meth:`vote` over a sequence of gold labels."""
        rng = ensure_rng(rng)
        dirty = np.asarray(truly_dirty, dtype=bool)
        draws = rng.random(dirty.shape[0])
        votes = np.where(
            dirty,
            np.where(draws < self.profile.false_negative_rate, CLEAN, DIRTY),
            np.where(draws < self.profile.false_positive_rate, DIRTY, CLEAN),
        )
        return [int(v) for v in votes]


#: Item-aware workers cannot answer without knowing which item is shown —
#: falling back to the base profile here would silently drop the regime.
_ITEM_AWARE_VOTE_ERROR = (
    "a {kind} worker's vote depends on the item shown; call "
    "vote_item(item_id, truly_dirty, rng) instead of the item-blind "
    "vote/vote_batch API"
)


@lru_cache(maxsize=262_144)
def _clique_draw(clique_seed: int, item_id: int) -> float:
    """The clique's shared uniform draw for one item.

    Cached because every member of a clique re-derives the same value on
    every encounter with the item — without the cache each vote would
    construct a fresh numpy ``Generator`` (orders of magnitude more
    expensive than the draw itself) at benchmark-scale simulations.
    """
    return float(derive_rng(clique_seed, item_id).random())


@dataclass
class CliqueWorker(Worker):
    """A colluding worker: answers are shared across the whole clique.

    Every member of a clique derives its vote for item ``i`` from the same
    ``(clique_seed, i)`` draw, so all members submit *identical* votes —
    including identical mistakes — on every item they see.  This breaks the
    independence assumption behind the species-estimation machinery: a
    clique of size ``k`` looks like ``k`` independent confirmations but
    carries the information of one worker.
    """

    clique_id: int = 0
    clique_seed: int = 0

    def vote_item(self, item_id: int, truly_dirty: bool, rng: RandomState = None) -> int:
        draw = _clique_draw(int(self.clique_seed), int(item_id))
        if truly_dirty:
            return CLEAN if draw < self.profile.false_negative_rate else DIRTY
        return DIRTY if draw < self.profile.false_positive_rate else CLEAN

    def vote(self, truly_dirty: bool, rng: RandomState = None) -> int:
        raise ConfigurationError(_ITEM_AWARE_VOTE_ERROR.format(kind="colluding"))

    def vote_batch(self, truly_dirty: Sequence[bool], rng: RandomState = None) -> List[int]:
        raise ConfigurationError(_ITEM_AWARE_VOTE_ERROR.format(kind="colluding"))


@dataclass
class StratifiedWorker(Worker):
    """A worker whose error rates depend on the item's stratum.

    Items are partitioned into ``num_strata`` classes by
    ``item_id % num_strata``; each stratum can carry its own error profile
    (falling back to the worker's base profile).  This models
    class-imbalanced error distributions: e.g. a rare class of hard items
    whose errors are missed far more often than the easy majority.
    """

    stratum_profiles: Dict[int, WorkerProfile] = field(default_factory=dict)
    num_strata: int = 2

    def profile_for(self, item_id: int) -> WorkerProfile:
        """The error profile governing votes on ``item_id``."""
        return self.stratum_profiles.get(int(item_id) % self.num_strata, self.profile)

    def vote_item(self, item_id: int, truly_dirty: bool, rng: RandomState = None) -> int:
        rng = ensure_rng(rng)
        profile = self.profile_for(item_id)
        if truly_dirty:
            return CLEAN if rng.random() < profile.false_negative_rate else DIRTY
        return DIRTY if rng.random() < profile.false_positive_rate else CLEAN

    def vote(self, truly_dirty: bool, rng: RandomState = None) -> int:
        raise ConfigurationError(_ITEM_AWARE_VOTE_ERROR.format(kind="stratified"))

    def vote_batch(self, truly_dirty: Sequence[bool], rng: RandomState = None) -> List[int]:
        raise ConfigurationError(_ITEM_AWARE_VOTE_ERROR.format(kind="stratified"))


# ---------------------------------------------------------------------- #
# worker regimes
# ---------------------------------------------------------------------- #


class WorkerRegime:
    """A distribution over workers, drawn one worker at a time.

    Subclasses implement :meth:`make_worker`; :meth:`setup` lets a regime
    derive run-level shared state (e.g. clique seeds) from the pool's
    generator before the first worker is drawn.  ``completion_rate`` is the
    probability an assigned item is actually answered — values below 1
    model sparse/abandoning workers who skip items or quit tasks partway.
    """

    #: Probability an assigned item is actually answered (1.0 = diligent).
    completion_rate: float = 1.0

    def setup(self, rng: np.random.Generator) -> object:
        """Draw run-level shared state (default: none)."""
        return None

    def make_worker(
        self, worker_id: int, rng: np.random.Generator, shared: object
    ) -> Worker:
        """Draw the next worker from the population."""
        raise NotImplementedError

    def population_profile(self) -> WorkerProfile:
        """A representative profile for reporting."""
        return getattr(self, "profile", WorkerProfile())


def _check_completion(rate: float) -> None:
    check_probability(rate, "completion_rate")
    if rate == 0.0:
        raise ConfigurationError("completion_rate must be positive (0 means no votes at all)")


@dataclass(frozen=True)
class HomogeneousRegime(WorkerRegime):
    """The paper's population: one profile, optional per-worker jitter.

    Reproduces the historical :class:`WorkerPool` behaviour exactly (same
    draws in the same order), so pools built from a plain profile are
    bit-identical to pre-regime runs.
    """

    profile: WorkerProfile = field(default_factory=WorkerProfile)
    rate_jitter: float = 0.0
    completion_rate: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.rate_jitter, "rate_jitter")
        _check_completion(self.completion_rate)

    def make_worker(
        self, worker_id: int, rng: np.random.Generator, shared: object
    ) -> Worker:
        def jittered(rate: float) -> float:
            if self.rate_jitter == 0.0:
                return rate
            perturbed = rate + float(rng.normal(0.0, self.rate_jitter))
            return float(min(1.0, max(0.0, perturbed)))

        profile = WorkerProfile(
            false_negative_rate=jittered(self.profile.false_negative_rate),
            false_positive_rate=jittered(self.profile.false_positive_rate),
        )
        return Worker(worker_id=worker_id, profile=profile)


@dataclass(frozen=True)
class MixtureRegime(WorkerRegime):
    """A population mixing several profile groups (e.g. honest + spammers).

    Parameters
    ----------
    components:
        ``(weight, profile)`` pairs; weights are normalised internally.
        Each new worker's group is drawn independently.
    completion_rate:
        See :class:`WorkerRegime`.
    """

    components: Tuple[Tuple[float, WorkerProfile], ...] = ()
    completion_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("a mixture regime needs at least one component")
        for weight, _ in self.components:
            check_non_negative(weight, "component weight")
        if not sum(weight for weight, _ in self.components) > 0:
            raise ConfigurationError("mixture weights must not all be zero")
        _check_completion(self.completion_rate)

    def make_worker(
        self, worker_id: int, rng: np.random.Generator, shared: object
    ) -> Worker:
        total = sum(weight for weight, _ in self.components)
        draw = float(rng.random()) * total
        cumulative = 0.0
        profile = self.components[-1][1]
        for weight, candidate in self.components:
            cumulative += weight
            if draw < cumulative:
                profile = candidate
                break
        return Worker(worker_id=worker_id, profile=profile)

    def population_profile(self) -> WorkerProfile:
        total = sum(weight for weight, _ in self.components)
        return WorkerProfile(
            false_negative_rate=sum(
                w * p.false_negative_rate for w, p in self.components
            )
            / total,
            false_positive_rate=sum(
                w * p.false_positive_rate for w, p in self.components
            )
            / total,
        )


@dataclass(frozen=True)
class DriftRegime(WorkerRegime):
    """Accuracy drifting over time (worker fatigue / marketplace decay).

    Worker ``w`` receives error rates linearly interpolated between
    ``start`` and ``end`` at ``t = min(1, w / horizon)``.  With one task
    per worker (the default simulation regime) this makes accuracy a
    function of the task stream position — exactly the moving target the
    SWITCH estimator is designed to track.
    """

    start: WorkerProfile = field(default_factory=WorkerProfile)
    end: WorkerProfile = field(default_factory=WorkerProfile)
    horizon: int = 50
    completion_rate: float = 1.0

    def __post_init__(self) -> None:
        check_int(self.horizon, "horizon", minimum=1)
        _check_completion(self.completion_rate)

    def profile_at(self, worker_id: int) -> WorkerProfile:
        """The interpolated profile for worker index ``worker_id``."""
        t = min(1.0, worker_id / self.horizon)
        return WorkerProfile(
            false_negative_rate=self.start.false_negative_rate
            + t * (self.end.false_negative_rate - self.start.false_negative_rate),
            false_positive_rate=self.start.false_positive_rate
            + t * (self.end.false_positive_rate - self.start.false_positive_rate),
        )

    def make_worker(
        self, worker_id: int, rng: np.random.Generator, shared: object
    ) -> Worker:
        return Worker(worker_id=worker_id, profile=self.profile_at(worker_id))

    def population_profile(self) -> WorkerProfile:
        return self.start


@dataclass(frozen=True)
class CliqueRegime(WorkerRegime):
    """Colluding cliques inside an otherwise honest crowd.

    Each new worker is a colluder with probability ``colluder_fraction``;
    colluders join one of ``num_cliques`` cliques uniformly at random and
    thereafter share the clique's answer sheet (see :class:`CliqueWorker`).
    """

    profile: WorkerProfile = field(default_factory=WorkerProfile)
    colluder_profile: WorkerProfile = field(default_factory=lambda: WorkerProfile(0.4, 0.1))
    num_cliques: int = 2
    colluder_fraction: float = 0.3
    completion_rate: float = 1.0

    def __post_init__(self) -> None:
        check_int(self.num_cliques, "num_cliques", minimum=1)
        check_probability(self.colluder_fraction, "colluder_fraction")
        _check_completion(self.completion_rate)

    def setup(self, rng: np.random.Generator) -> List[int]:
        """Draw one answer-sheet seed per clique for this run."""
        return [int(rng.integers(0, 2**31 - 1)) for _ in range(self.num_cliques)]

    def make_worker(
        self, worker_id: int, rng: np.random.Generator, shared: List[int]
    ) -> Worker:
        if float(rng.random()) < self.colluder_fraction:
            clique = int(rng.integers(0, self.num_cliques))
            return CliqueWorker(
                worker_id=worker_id,
                profile=self.colluder_profile,
                clique_id=clique,
                clique_seed=shared[clique],
            )
        return Worker(worker_id=worker_id, profile=self.profile)


@dataclass(frozen=True)
class CrossSessionCliqueRegime(CliqueRegime):
    """Cliques whose answer sheets are coordinated *across* crowds.

    :class:`CliqueRegime` draws its clique answer-sheet seeds from the
    pool rng, so two independently seeded pools — e.g. the crowds behind
    two named serving sessions — produce unrelated cliques.  Here the
    sheets derive from a fixed ``campaign_seed`` instead: colluders in
    *any* pool built from this regime share the same per-clique answer
    sheet, modelling a collusion campaign that spans sessions to poison
    their estimates consistently.  Which workers join which clique still
    follows the pool rng, so honest-worker behaviour is untouched.
    """

    campaign_seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_int(self.campaign_seed, "campaign_seed", minimum=0)

    def setup(self, rng: np.random.Generator) -> List[int]:
        """Derive the shared answer-sheet seeds from the campaign seed.

        The pool rng is deliberately unused: the whole point is that the
        sheets do not depend on which crowd is being built.
        """
        return [
            int(derive_rng(self.campaign_seed, clique).integers(0, 2**31 - 1))
            for clique in range(self.num_cliques)
        ]


@dataclass(frozen=True)
class StratifiedRegime(WorkerRegime):
    """Class-imbalanced error rates: item strata with their own profiles.

    Every worker is a :class:`StratifiedWorker` applying
    ``stratum_profiles[item_id % num_strata]`` (base ``profile`` for
    unlisted strata).
    """

    profile: WorkerProfile = field(default_factory=WorkerProfile)
    stratum_profiles: Tuple[Tuple[int, WorkerProfile], ...] = ()
    num_strata: int = 2
    completion_rate: float = 1.0

    def __post_init__(self) -> None:
        check_int(self.num_strata, "num_strata", minimum=1)
        for stratum, _ in self.stratum_profiles:
            check_int(stratum, "stratum", minimum=0)
            if stratum >= self.num_strata:
                raise ConfigurationError(
                    f"stratum {stratum} is unreachable: item_id % num_strata "
                    f"({self.num_strata}) never exceeds {self.num_strata - 1}"
                )
        _check_completion(self.completion_rate)

    def make_worker(
        self, worker_id: int, rng: np.random.Generator, shared: object
    ) -> Worker:
        return StratifiedWorker(
            worker_id=worker_id,
            profile=self.profile,
            stratum_profiles=dict(self.stratum_profiles),
            num_strata=self.num_strata,
        )


class WorkerPool:
    """A population of workers drawn on demand.

    The paper models workers as draws from a single infinite population with
    some noise around the population error rates; ``profile`` +
    ``rate_jitter`` express that directly.  Passing ``regime`` instead draws
    workers from an arbitrary :class:`WorkerRegime` (mixtures, cliques,
    drift, strata).

    Parameters
    ----------
    profile:
        Population-level error rates (mutually exclusive with ``regime``).
    rate_jitter:
        Standard deviation of the per-worker rate perturbation (0 disables
        heterogeneity; only valid with ``profile``).
    seed:
        Seed or generator for worker-creation randomness.
    regime:
        A :class:`WorkerRegime` describing the population.
    """

    def __init__(
        self,
        profile: Optional[WorkerProfile] = None,
        *,
        rate_jitter: float = 0.0,
        seed: RandomState = None,
        regime: Optional[WorkerRegime] = None,
    ) -> None:
        check_non_negative(rate_jitter, "rate_jitter")
        if regime is not None and profile is not None:
            raise ConfigurationError("pass either a profile or a regime, not both")
        if regime is not None and rate_jitter != 0.0:
            raise ConfigurationError(
                "rate_jitter only applies to profile pools; set it on a "
                "HomogeneousRegime (or drop it) when passing a regime"
            )
        if regime is None:
            regime = HomogeneousRegime(
                profile if profile is not None else WorkerProfile(),
                rate_jitter=float(rate_jitter),
            )
        self.regime = regime
        self.profile = regime.population_profile()
        self.rate_jitter = float(getattr(regime, "rate_jitter", 0.0))
        self._rng = ensure_rng(seed)
        self._shared = regime.setup(self._rng)
        self._workers: List[Worker] = []

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> List[Worker]:
        """Workers created so far."""
        return list(self._workers)

    @property
    def completion_rate(self) -> float:
        """The regime's per-item completion probability."""
        return float(self.regime.completion_rate)

    def new_worker(self) -> Worker:
        """Create (and remember) a fresh worker from the population."""
        worker = self.regime.make_worker(len(self._workers), self._rng, self._shared)
        self._workers.append(worker)
        return worker

    def get(self, worker_id: int) -> Worker:
        """Return a previously created worker by id."""
        return self._workers[worker_id]

    def observed_rates(self) -> Dict[str, float]:
        """Average realised error rates of the created workers (for reports)."""
        if not self._workers:
            return {
                "false_negative_rate": self.profile.false_negative_rate,
                "false_positive_rate": self.profile.false_positive_rate,
            }
        return {
            "false_negative_rate": float(
                np.mean([w.profile.false_negative_rate for w in self._workers])
            ),
            "false_positive_rate": float(
                np.mean([w.profile.false_positive_rate for w in self._workers])
            ),
        }
