"""End-to-end crowd simulation.

This module replaces the paper's Amazon Mechanical Turk deployment with a
calibrated simulator.  Given a dataset with gold labels, a worker pool and
an assignment strategy, :class:`CrowdSimulator` produces a stream of
worker-task columns and accumulates them into a
:class:`~repro.crowd.response_matrix.ResponseMatrix` — the only artefact
the estimators ever see, which is why the substitution preserves the
experiments' behaviour (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.common.exceptions import ConfigurationError
from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import check_int, check_probability
from repro.crowd.assignment import (
    FixedQuorumAssigner,
    PrioritizedAssigner,
    Task,
    UniformRandomAssigner,
)
from repro.crowd.response_matrix import ResponseMatrix
from repro.crowd.worker import Worker, WorkerPool, WorkerProfile, WorkerRegime
from repro.data.record import Dataset

#: Signature of the custom-assigner hook: ``(candidate_ids, items_per_task,
#: rng) -> assigner`` where the assigner exposes ``next_task()``.
AssignerBuilder = Callable[[Sequence[int], int, RandomState], object]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a crowd simulation run.

    Parameters
    ----------
    num_tasks:
        Number of worker-tasks to simulate.
    items_per_task:
        Items shown per task (``p``).
    worker_profile:
        Population error rates of the simulated workers.
    worker_rate_jitter:
        Per-worker variation of the error rates (models a heterogeneous
        crowd; 0 disables it).
    tasks_per_worker:
        How many consecutive tasks a single simulated worker completes
        before a new worker is drawn (AMT workers often take several tasks;
        1 means every column comes from a fresh worker).
    epsilon:
        When a prioritised partition is supplied to the simulator, the
        probability of drawing an item from the complement ``R_H^c``.
    worker_regime:
        Optional :class:`~repro.crowd.worker.WorkerRegime` describing an
        adversarial population (spammers, cliques, drift, strata, sparse
        completion).  Mutually exclusive with a non-default
        ``worker_profile`` / ``worker_rate_jitter`` — the regime *is* the
        population, so a conflicting knob raises instead of being
        silently dropped.
    seed:
        Root seed for the run.
    """

    num_tasks: int = 100
    items_per_task: int = 10
    worker_profile: WorkerProfile = field(default_factory=WorkerProfile)
    worker_rate_jitter: float = 0.0
    tasks_per_worker: int = 1
    epsilon: float = 0.1
    worker_regime: Optional[WorkerRegime] = None
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        check_int(self.num_tasks, "num_tasks", minimum=0)
        check_int(self.items_per_task, "items_per_task", minimum=1)
        check_int(self.tasks_per_worker, "tasks_per_worker", minimum=1)
        check_probability(self.epsilon, "epsilon")
        if self.worker_regime is not None:
            if self.worker_rate_jitter != 0.0:
                raise ConfigurationError(
                    "worker_rate_jitter only applies to profile crowds; set the "
                    "jitter on a HomogeneousRegime (or drop it) when passing a "
                    "worker_regime"
                )
            if self.worker_profile != WorkerProfile():
                raise ConfigurationError(
                    "pass either a worker_profile or a worker_regime, not both "
                    "(the regime defines the population's profiles)"
                )


@dataclass
class CrowdSimulation:
    """The result of a crowd simulation run.

    Attributes
    ----------
    matrix:
        The accumulated worker-response matrix (one column per task).
    tasks:
        The tasks, in the order they were executed.
    ground_truth:
        Mapping from item id to its gold 0/1 label.
    config:
        The configuration the run used.
    """

    matrix: ResponseMatrix
    tasks: List[Task]
    ground_truth: Dict[int, int]
    config: SimulationConfig

    @property
    def num_tasks(self) -> int:
        """Number of executed tasks (columns in the matrix)."""
        return len(self.tasks)

    @property
    def true_error_count(self) -> int:
        """``|R_dirty|`` restricted to the simulated candidate items."""
        return int(sum(self.ground_truth.values()))


class CrowdSimulator:
    """Simulate a crowd of fallible workers reviewing a candidate set.

    Parameters
    ----------
    dataset:
        Dataset whose ``dirty_ids`` define the gold labels of the candidate
        items.  For entity resolution pass
        ``pair_dataset.as_item_dataset()``.
    config:
        Simulation parameters.
    candidate_ids:
        Restrict the simulation to these item ids (defaults to the whole
        dataset).
    prioritized_partition:
        Optional ``(ambiguous_ids, complement_ids)`` partition; when given,
        tasks are drawn with the ε-prioritised assigner instead of the
        uniform one.
    assigner_builder:
        Optional factory for a custom assignment strategy, called as
        ``assigner_builder(candidate_ids, items_per_task, rng)`` with the
        simulator's seeded assignment generator.  Mutually exclusive with
        ``prioritized_partition``.
    """

    def __init__(
        self,
        dataset: Dataset,
        config: Optional[SimulationConfig] = None,
        *,
        candidate_ids: Optional[Sequence[int]] = None,
        prioritized_partition: Optional[tuple] = None,
        assigner_builder: Optional[AssignerBuilder] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or SimulationConfig()
        self._candidate_ids = (
            list(candidate_ids) if candidate_ids is not None else list(dataset.record_ids)
        )
        if not self._candidate_ids:
            raise ConfigurationError("the candidate set is empty")
        unknown = set(self._candidate_ids) - set(dataset.record_ids)
        if unknown:
            raise ConfigurationError(
                f"candidate_ids reference unknown records: {sorted(unknown)[:5]}"
            )
        if prioritized_partition is not None and assigner_builder is not None:
            raise ConfigurationError(
                "pass either a prioritized_partition or an assigner_builder, not both"
            )
        self._partition = prioritized_partition
        self._assigner_builder = assigner_builder
        root = derive_rng(self.config.seed, 0)
        self._assignment_rng = derive_rng(root, 1)
        self._vote_rng = derive_rng(root, 2)
        regime = self.config.worker_regime
        if regime is None:
            self._pool = WorkerPool(
                self.config.worker_profile,
                rate_jitter=self.config.worker_rate_jitter,
                seed=derive_rng(root, 3),
            )
        else:
            self._pool = WorkerPool(regime=regime, seed=derive_rng(root, 3))
        self._completion_rate = self._pool.completion_rate
        self._assigner = self._build_assigner()

    def _build_assigner(self):
        items_per_task = min(self.config.items_per_task, len(self._candidate_ids))
        if self._assigner_builder is not None:
            return self._assigner_builder(
                list(self._candidate_ids), items_per_task, self._assignment_rng
            )
        if self._partition is not None:
            ambiguous_ids, complement_ids = self._partition
            return PrioritizedAssigner(
                ambiguous_ids,
                complement_ids,
                items_per_task=items_per_task,
                epsilon=self.config.epsilon,
                seed=self._assignment_rng,
            )
        return UniformRandomAssigner(
            self._candidate_ids,
            items_per_task=items_per_task,
            seed=self._assignment_rng,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _worker_for_task(self, task_index: int) -> Worker:
        if task_index % self.config.tasks_per_worker == 0 or len(self._pool) == 0:
            return self._pool.new_worker()
        return self._pool.get(len(self._pool) - 1)

    def _item_ids_for_matrix(self) -> List[int]:
        if self._partition is not None:
            ambiguous_ids, complement_ids = self._partition
            ordered = list(ambiguous_ids) + [
                item for item in complement_ids if item not in set(ambiguous_ids)
            ]
            return ordered
        return list(self._candidate_ids)

    def _collect_votes(self, task: Task, worker: Worker) -> Dict[int, int]:
        """One worker's answers for one task.

        When the regime's ``completion_rate`` is below 1 each assigned item
        is skipped with the complementary probability (sparse/abandoning
        workers); at 1.0 no completion draws are made, keeping the vote
        stream bit-identical to pre-regime simulations.
        """
        votes: Dict[int, int] = {}
        for item_id in task.item_ids:
            if (
                self._completion_rate < 1.0
                and self._vote_rng.random() >= self._completion_rate
            ):
                continue
            votes[item_id] = worker.vote_item(
                item_id, self.dataset.is_dirty(item_id), self._vote_rng
            )
        return votes

    def run(self, num_tasks: Optional[int] = None) -> CrowdSimulation:
        """Run the simulation for ``num_tasks`` tasks (default: config value).

        Returns
        -------
        CrowdSimulation
        """
        num_tasks = self.config.num_tasks if num_tasks is None else int(num_tasks)
        check_int(num_tasks, "num_tasks", minimum=0)

        item_ids = self._item_ids_for_matrix()
        matrix = ResponseMatrix(item_ids)
        tasks: List[Task] = []
        for task_index in range(num_tasks):
            task = self._assigner.next_task()
            worker = self._worker_for_task(task_index)
            matrix.add_column(self._collect_votes(task, worker), worker.worker_id)
            tasks.append(task)

        ground_truth = {item: int(self.dataset.is_dirty(item)) for item in item_ids}
        return CrowdSimulation(
            matrix=matrix,
            tasks=tasks,
            ground_truth=ground_truth,
            config=self.config,
        )

    def stream(self, num_tasks: Optional[int] = None) -> Iterator[CrowdSimulation]:
        """Yield the growing simulation after every task.

        Convenient for estimators that want to observe the matrix as it
        grows; the same :class:`ResponseMatrix` instance is reused, so
        consumers must not mutate it.
        """
        num_tasks = self.config.num_tasks if num_tasks is None else int(num_tasks)
        check_int(num_tasks, "num_tasks", minimum=0)

        item_ids = self._item_ids_for_matrix()
        matrix = ResponseMatrix(item_ids)
        tasks: List[Task] = []
        ground_truth = {item: int(self.dataset.is_dirty(item)) for item in item_ids}
        for task_index in range(num_tasks):
            task = self._assigner.next_task()
            worker = self._worker_for_task(task_index)
            matrix.add_column(self._collect_votes(task, worker), worker.worker_id)
            tasks.append(task)
            yield CrowdSimulation(
                matrix=matrix,
                tasks=list(tasks),
                ground_truth=ground_truth,
                config=self.config,
            )


def simulate_fixed_quorum(
    dataset: Dataset,
    *,
    sample_ids: Sequence[int],
    quorum: int = 3,
    items_per_task: int = 10,
    worker_profile: Optional[WorkerProfile] = None,
    seed: RandomState = None,
) -> CrowdSimulation:
    """Simulate the conventional fixed-quorum cleaning of a sample.

    This is the regime the paper's Sample-Clean-Minimum (SCM) reference
    assumes: every item of a sample is reviewed by exactly ``quorum``
    workers.  Returned in the same :class:`CrowdSimulation` form so the
    descriptive estimators can be applied to it for cost comparisons.
    """
    profile = worker_profile or WorkerProfile.perfect()
    rng = ensure_rng(seed)
    assigner = FixedQuorumAssigner(
        sample_ids,
        quorum=quorum,
        items_per_task=items_per_task,
        seed=derive_rng(rng, 1),
    )
    vote_rng = derive_rng(rng, 2)
    pool = WorkerPool(profile, seed=derive_rng(rng, 3))
    matrix = ResponseMatrix(list(sample_ids))
    tasks = assigner.tasks()
    for task in tasks:
        worker = pool.new_worker()
        votes = {
            item_id: worker.vote(dataset.is_dirty(item_id), vote_rng)
            for item_id in task.item_ids
        }
        matrix.add_column(votes, worker.worker_id)
    ground_truth = {item: int(dataset.is_dirty(item)) for item in sample_ids}
    config = SimulationConfig(
        num_tasks=len(tasks),
        items_per_task=items_per_task,
        worker_profile=profile,
        seed=None,
    )
    return CrowdSimulation(matrix=matrix, tasks=tasks, ground_truth=ground_truth, config=config)
