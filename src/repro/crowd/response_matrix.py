"""The worker-response matrix ``I`` (Problem 1 of the paper).

:class:`ResponseMatrix` stores the ``N x K`` matrix of votes with entries
``{DIRTY, CLEAN, UNSEEN}``.  It grows one *worker column* (equivalently,
one task) at a time, which is how the experiments consume it: the paper's
x-axis is always "# tasks", and every estimator is re-evaluated on each
prefix of the task stream.

Besides storage, the class provides the vectorised per-item counts the
estimators need:

* ``n_i`` — total votes on item ``i``,
* ``n_i^+`` — positive (dirty) votes on item ``i``,
* ``n_i^-`` — negative (clean) votes on item ``i``,

prefix variants (``n_{i,1:j}^+``) needed by the switch-counting
definition (Equation 7), and incremental *checkpoint tables*
(:meth:`ResponseMatrix.positive_counts_at`) that give the counts at many
prefixes in one pass — the backing store of the batch estimation states
in :mod:`repro.core.state`.

Every ``upto`` argument follows one contract, enforced in
:meth:`ResponseMatrix.resolve_upto`: ``None`` means all columns, negative
values raise ``ValidationError``, and oversized values clamp to the
columns received so far.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.exceptions import ValidationError
from repro.common.labels import CLEAN, DIRTY, UNSEEN, validate_labels
from repro.common.validation import check_int


class ResponseMatrix:
    """Dense ``N x K`` matrix of worker votes.

    Parameters
    ----------
    item_ids:
        The ids of the ``N`` items (records or pairs), in a fixed order.
        Votes are addressed by item *id*; the matrix maintains the id-to-row
        mapping internally.

    Notes
    -----
    Columns are appended with :meth:`add_column`; each column corresponds to
    one worker-task (one worker reviewing one task's items).  A worker who
    completes several tasks contributes several columns, matching the
    paper's protocol where "a worker may take on more than a single task"
    and the unit of the x-axis is the task.
    """

    def __init__(self, item_ids: Sequence[int]):
        item_ids = list(item_ids)
        if len(set(item_ids)) != len(item_ids):
            raise ValidationError("item_ids must be unique")
        if not item_ids:
            raise ValidationError("a response matrix needs at least one item")
        self._item_ids: List[int] = item_ids
        self._row_of: Dict[int, int] = {item: row for row, item in enumerate(item_ids)}
        self._votes = np.full((len(item_ids), 0), UNSEEN, dtype=np.int8)
        self._column_workers: List[int] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_array(
        cls,
        votes: np.ndarray,
        item_ids: Optional[Sequence[int]] = None,
        worker_ids: Optional[Sequence[int]] = None,
    ) -> "ResponseMatrix":
        """Build a matrix directly from an ``N x K`` label array.

        Parameters
        ----------
        votes:
            Array with entries in ``{DIRTY, CLEAN, UNSEEN}``.
        item_ids:
            Item ids for the rows; defaults to ``0..N-1``.
        worker_ids:
            Worker ids for the columns; defaults to ``0..K-1``.
        """
        votes = validate_labels(np.asarray(votes))
        if votes.ndim != 2:
            raise ValidationError(f"votes must be 2-D (N x K), got shape {votes.shape}")
        n_items, n_cols = votes.shape
        if item_ids is None:
            item_ids = list(range(n_items))
        matrix = cls(item_ids)
        if len(item_ids) != n_items:
            raise ValidationError("item_ids length must match the number of rows")
        if worker_ids is None:
            worker_ids = list(range(n_cols))
        if len(worker_ids) != n_cols:
            raise ValidationError("worker_ids length must match the number of columns")
        matrix._votes = votes.astype(np.int8, copy=True)
        matrix._column_workers = [int(w) for w in worker_ids]
        return matrix

    def add_column(self, votes: Dict[int, int], worker_id: int) -> int:
        """Append one worker-task column.

        Parameters
        ----------
        votes:
            Mapping from item id to vote (``DIRTY`` or ``CLEAN``).  Items not
            present are recorded as ``UNSEEN``.
        worker_id:
            Identifier of the worker who produced the column.

        Returns
        -------
        int
            The index of the new column.
        """
        column = np.full(len(self._item_ids), UNSEEN, dtype=np.int8)
        for item_id, vote in votes.items():
            if vote not in (DIRTY, CLEAN):
                raise ValidationError(
                    f"votes must be DIRTY ({DIRTY}) or CLEAN ({CLEAN}); got {vote!r} for item {item_id}"
                )
            try:
                column[self._row_of[item_id]] = vote
            except KeyError:
                raise ValidationError(f"unknown item id {item_id}") from None
        self._votes = np.concatenate([self._votes, column[:, None]], axis=1)
        self._column_workers.append(int(worker_id))
        return self._votes.shape[1] - 1

    def prefix(self, num_columns: int) -> "ResponseMatrix":
        """Return a new matrix containing only the first ``num_columns`` columns."""
        if num_columns < 0 or num_columns > self.num_columns:
            raise ValidationError(
                f"num_columns must be in [0, {self.num_columns}], got {num_columns}"
            )
        return ResponseMatrix.from_array(
            self._votes[:, :num_columns],
            item_ids=self._item_ids,
            worker_ids=self._column_workers[:num_columns],
        )

    def permute_columns(self, order: Sequence[int]) -> "ResponseMatrix":
        """Return a new matrix with columns reordered by ``order``.

        The paper averages results over random permutations of the workers;
        permuting columns of a fixed matrix is how the harness implements
        that without re-running the crowd.
        """
        order = list(order)
        if sorted(order) != list(range(self.num_columns)):
            raise ValidationError("order must be a permutation of the column indices")
        return ResponseMatrix.from_array(
            self._votes[:, order],
            item_ids=self._item_ids,
            worker_ids=[self._column_workers[i] for i in order],
        )

    # ------------------------------------------------------------------ #
    # shape and access
    # ------------------------------------------------------------------ #
    @property
    def item_ids(self) -> List[int]:
        """Item ids in row order."""
        return list(self._item_ids)

    @property
    def num_items(self) -> int:
        """``N`` — the number of items."""
        return len(self._item_ids)

    @property
    def num_columns(self) -> int:
        """``K`` — the number of worker-task columns received so far."""
        return int(self._votes.shape[1])

    @property
    def column_workers(self) -> List[int]:
        """Worker id of each column."""
        return list(self._column_workers)

    @property
    def values(self) -> np.ndarray:
        """A read-only view of the underlying ``N x K`` label array."""
        view = self._votes.view()
        view.flags.writeable = False
        return view

    def row_index(self, item_id: int) -> int:
        """Return the row index of ``item_id``."""
        try:
            return self._row_of[item_id]
        except KeyError:
            raise ValidationError(f"unknown item id {item_id}") from None

    def votes_for(self, item_id: int) -> np.ndarray:
        """Return the vote sequence (length ``K``) for one item."""
        return self._votes[self.row_index(item_id), :].copy()

    def column_votes(self, column: int) -> Dict[int, int]:
        """Return column ``column`` as an ``{item_id: vote}`` mapping.

        Only items the worker actually labelled appear (UNSEEN entries are
        omitted), which makes the result directly consumable by
        :meth:`add_column` or a streaming session — replaying a collected
        matrix column by column is how the streaming/batch equivalence is
        exercised.
        """
        column = check_int(column, "column", minimum=0)
        if column >= self.num_columns:
            raise ValidationError(
                f"column must be in [0, {self.num_columns}), got {column}"
            )
        values = self._votes[:, column]
        return {
            self._item_ids[row]: int(values[row])
            for row in np.nonzero(values != UNSEEN)[0]
        }

    # ------------------------------------------------------------------ #
    # vectorised counts used by the estimators
    # ------------------------------------------------------------------ #
    def resolve_upto(self, upto: Optional[int]) -> int:
        """Resolve an ``upto`` prefix argument to an actual column count.

        This is the single place where the ``upto`` contract is enforced:
        ``None`` means "all columns", a negative value raises
        :class:`~repro.common.exceptions.ValidationError` (Python slice
        semantics would otherwise silently drop columns off the *end*),
        and an oversized value is clamped to :attr:`num_columns` (a prefix
        can never be longer than the stream received so far).
        """
        if upto is None:
            return self.num_columns
        return min(check_int(upto, "upto", minimum=0), self.num_columns)

    def positive_counts(self, upto: Optional[int] = None) -> np.ndarray:
        """``n_i^+`` — dirty votes per item, over the first ``upto`` columns."""
        votes = self._votes[:, : self.resolve_upto(upto)]
        return (votes == DIRTY).sum(axis=1)

    def negative_counts(self, upto: Optional[int] = None) -> np.ndarray:
        """``n_i^-`` — clean votes per item, over the first ``upto`` columns."""
        votes = self._votes[:, : self.resolve_upto(upto)]
        return (votes == CLEAN).sum(axis=1)

    def vote_counts(self, upto: Optional[int] = None) -> np.ndarray:
        """``n_i`` — total votes per item, over the first ``upto`` columns."""
        votes = self._votes[:, : self.resolve_upto(upto)]
        return (votes != UNSEEN).sum(axis=1)

    # ------------------------------------------------------------------ #
    # incremental checkpoint tables used by the sweep engine
    # ------------------------------------------------------------------ #
    def _label_counts_at(self, label: int, checkpoints: Sequence[int]) -> np.ndarray:
        """Per-item counts of ``label`` votes at each checkpoint prefix.

        Computed incrementally: one delta (segment sum) per pair of
        consecutive distinct checkpoints, accumulated into running counts,
        so a sweep over ``m`` checkpoints costs one pass over the matrix
        instead of ``m`` prefix recomputations.

        Returns an ``(m, N)`` array aligned with ``checkpoints`` (which may
        be unsorted and may repeat; each entry is resolved with
        :meth:`resolve_upto`).
        """
        resolved = [self.resolve_upto(cp) for cp in checkpoints]
        unique = sorted(set(resolved))
        mask = self._votes == label
        table: Dict[int, np.ndarray] = {}
        running = np.zeros(self.num_items, dtype=np.int64)
        previous = 0
        for cp in unique:
            if cp > previous:
                running = running + mask[:, previous:cp].sum(axis=1)
            table[cp] = running
            previous = cp
        return np.stack([table[cp] for cp in resolved]) if resolved else np.zeros(
            (0, self.num_items), dtype=np.int64
        )

    def positive_counts_at(self, checkpoints: Sequence[int]) -> np.ndarray:
        """``n_i^+`` at every checkpoint prefix, as an ``(m, N)`` table."""
        return self._label_counts_at(DIRTY, checkpoints)

    def negative_counts_at(self, checkpoints: Sequence[int]) -> np.ndarray:
        """``n_i^-`` at every checkpoint prefix, as an ``(m, N)`` table."""
        return self._label_counts_at(CLEAN, checkpoints)

    def total_votes(self, upto: Optional[int] = None) -> int:
        """Total number of votes (dirty + clean) in the matrix prefix."""
        return int(self.vote_counts(upto).sum())

    def total_positive_votes(self, upto: Optional[int] = None) -> int:
        """``n^+`` — total dirty votes in the matrix prefix."""
        return int(self.positive_counts(upto).sum())

    def coverage(self, upto: Optional[int] = None) -> float:
        """Fraction of items that received at least one vote."""
        return float((self.vote_counts(upto) > 0).mean())

    def mean_votes_per_item(self, upto: Optional[int] = None) -> float:
        """Average number of votes per item (the redundancy level)."""
        return float(self.vote_counts(upto).mean())

    def items_marked_dirty(self, upto: Optional[int] = None) -> List[int]:
        """Item ids marked dirty by at least one worker (nominal error set)."""
        mask = self.positive_counts(upto) > 0
        return [item for item, flagged in zip(self._item_ids, mask) if flagged]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ResponseMatrix(num_items={self.num_items}, num_columns={self.num_columns}, "
            f"votes={self.total_votes()})"
        )
