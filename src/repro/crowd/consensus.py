"""Descriptive consensus functions over a response matrix.

These are the descriptive baselines of Section 2.2 of the paper:

* ``nominal(I)`` — count every item marked dirty by at least one worker,
* ``majority(I)`` — count items whose dirty votes outnumber their clean
  votes (the majority consensus).

Both operate on any column prefix of the matrix so the experiment harness
can trace them over the task stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.labels import CLEAN, DIRTY
from repro.crowd.response_matrix import ResponseMatrix


def nominal_labels(matrix: ResponseMatrix, upto: Optional[int] = None) -> Dict[int, int]:
    """Per-item nominal labels: 1 if any worker marked the item dirty.

    Parameters
    ----------
    matrix:
        The response matrix.
    upto:
        Consider only the first ``upto`` columns (``None`` = all).

    Returns
    -------
    dict
        Mapping from item id to 0/1 label.
    """
    positives = matrix.positive_counts(upto)
    return {item: int(count > 0) for item, count in zip(matrix.item_ids, positives)}


def nominal_count(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_nominal`` — the number of items marked dirty by at least one worker."""
    return int((matrix.positive_counts(upto) > 0).sum())


def majority_vote_counts(matrix: ResponseMatrix, upto: Optional[int] = None) -> np.ndarray:
    """Return the per-item margin ``n_i^+ - n_i^-`` (dirty minus clean votes)."""
    return matrix.positive_counts(upto) - matrix.negative_counts(upto)


def majority_labels(
    matrix: ResponseMatrix,
    upto: Optional[int] = None,
    *,
    tie_value: int = 0,
) -> Dict[int, int]:
    """Per-item majority labels.

    An item is labelled dirty when strictly more workers marked it dirty
    than clean (``n_i^+ - n_i/2 > 0`` in the paper's notation, which is the
    same as ``n_i^+ > n_i^-``).  Ties and unseen items receive
    ``tie_value`` (0 by default — the paper assumes items start clean).

    Parameters
    ----------
    matrix:
        The response matrix.
    upto:
        Consider only the first ``upto`` columns.
    tie_value:
        Label assigned when dirty and clean votes are tied (including the
        zero-vote case).
    """
    margins = majority_vote_counts(matrix, upto)
    labels: Dict[int, int] = {}
    for item, margin in zip(matrix.item_ids, margins):
        if margin > 0:
            labels[item] = 1
        elif margin < 0:
            labels[item] = 0
        else:
            labels[item] = int(tie_value)
    return labels


def majority_count(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_majority`` — the number of items whose majority consensus is dirty."""
    return int((majority_vote_counts(matrix, upto) > 0).sum())


def nominal_counts_at(matrix: ResponseMatrix, checkpoints) -> List[int]:
    """``c_nominal`` at every checkpoint prefix, in one incremental pass.

    Equivalent to ``[nominal_count(matrix, cp) for cp in checkpoints]`` but
    built on the matrix's incremental checkpoint tables, so the vote matrix
    is scanned once instead of once per checkpoint.
    """
    positives = matrix.positive_counts_at(checkpoints)
    return [int(count) for count in (positives > 0).sum(axis=1)]


def majority_counts_at(matrix: ResponseMatrix, checkpoints) -> List[int]:
    """``c_majority`` at every checkpoint prefix, in one incremental pass."""
    margins = matrix.positive_counts_at(checkpoints) - matrix.negative_counts_at(checkpoints)
    return [int(count) for count in (margins > 0).sum(axis=1)]


def majority_count_history(matrix: ResponseMatrix, upto: Optional[int] = None) -> np.ndarray:
    """``c_majority`` after *every* column prefix, as an ``(upto + 1,)`` array.

    ``history[j]`` is the majority count after the first ``j`` columns
    (``history[0] = 0``).  One cumulative pass over the vote matrix covers
    all prefixes, which is what the trend detection of the SWITCH
    total-error estimator needs during a sweep: lookback positions are
    arbitrary ``upto - window`` offsets, not checkpoint positions.
    """
    upto = matrix.resolve_upto(upto)
    votes = matrix.values[:, :upto]
    margins = np.cumsum((votes == DIRTY).astype(np.int64) - (votes == CLEAN), axis=1)
    history = np.zeros(upto + 1, dtype=np.int64)
    if upto:
        history[1:] = (margins > 0).sum(axis=0)
    return history


def consensus_accuracy(
    matrix: ResponseMatrix,
    ground_truth: Dict[int, int],
    upto: Optional[int] = None,
) -> Dict[str, float]:
    """Score the current majority consensus against a gold standard.

    Returns precision, recall and F1 of the dirty class plus the raw
    false-positive / false-negative counts.  Used by the experiment harness
    to report how far the descriptive consensus is from the ground truth at
    each point of the task stream.
    """
    labels = majority_labels(matrix, upto)
    tp = fp = fn = tn = 0
    for item, predicted in labels.items():
        actual = int(ground_truth.get(item, 0))
        if predicted == 1 and actual == 1:
            tp += 1
        elif predicted == 1 and actual == 0:
            fp += 1
        elif predicted == 0 and actual == 1:
            fn += 1
        else:
            tn += 1
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "true_positives": float(tp),
        "false_positives": float(fp),
        "false_negatives": float(fn),
        "true_negatives": float(tn),
    }
