"""Task construction and item-to-worker assignment strategies.

A *task* is a small batch of items shown to a single worker (the paper uses
10 items per task on AMT and 15–20 in simulations).  The paper contrasts
two assignment regimes:

* **Uniform random assignment** (what the DQM estimators need): every task
  samples its items uniformly at random from the candidate set, so
  redundancy arises naturally from overlaps and the collection as a whole
  behaves like sampling with replacement.
* **Fixed-quorum assignment** (the conventional cleaning approach used for
  the Sample-Clean-Minimum comparison): every item is assigned to exactly
  ``q`` workers (e.g. three to form a quorum).

Section 5 adds **ε-prioritised assignment**: items are drawn from the
heuristic's ambiguous set ``R_H`` with probability ``1 - ε`` and from its
complement with probability ``ε``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.common.rng import RandomState, ensure_rng
from repro.common.validation import check_int, check_probability


@dataclass(frozen=True)
class Task:
    """One unit of crowd work: a batch of item ids for a single worker.

    Parameters
    ----------
    task_id:
        Sequential identifier of the task.
    item_ids:
        Item ids included in the task (sampled without replacement within
        the task).
    """

    task_id: int
    item_ids: tuple

    def __len__(self) -> int:
        return len(self.item_ids)


class UniformRandomAssigner:
    """Sample each task's items uniformly at random from the candidate set.

    Parameters
    ----------
    item_ids:
        The candidate items.
    items_per_task:
        Number of items per task (``p`` in the paper); tasks sample without
        replacement within themselves but independently of each other, so
        across tasks the collection behaves like sampling with replacement.
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        item_ids: Sequence[int],
        *,
        items_per_task: int = 10,
        seed: RandomState = None,
    ) -> None:
        self._item_ids = list(item_ids)
        if not self._item_ids:
            raise ConfigurationError("cannot assign tasks over an empty candidate set")
        check_int(items_per_task, "items_per_task", minimum=1)
        if items_per_task > len(self._item_ids):
            raise ConfigurationError(
                f"items_per_task ({items_per_task}) exceeds the number of candidate items "
                f"({len(self._item_ids)})"
            )
        self.items_per_task = int(items_per_task)
        self._rng = ensure_rng(seed)
        self._next_task_id = 0

    def next_task(self) -> Task:
        """Create the next task."""
        chosen = self._rng.choice(len(self._item_ids), size=self.items_per_task, replace=False)
        task = Task(
            task_id=self._next_task_id,
            item_ids=tuple(self._item_ids[int(i)] for i in chosen),
        )
        self._next_task_id += 1
        return task

    def tasks(self, count: int) -> List[Task]:
        """Create ``count`` tasks."""
        check_int(count, "count", minimum=0)
        return [self.next_task() for _ in range(count)]


class PrioritizedAssigner:
    """ε-randomised assignment over a heuristic partition (Section 5.3).

    Each item slot in a task is filled from the ambiguous set ``R_H`` with
    probability ``1 - ε`` and from the complement ``R_H^c`` with
    probability ``ε``.  With ``ε = 0`` this reduces to sampling only from
    ``R_H`` (the perfect-heuristic case); with
    ``ε = |R_H^c| / |R|``-ish values it approaches uniform sampling over the
    full set.

    Parameters
    ----------
    ambiguous_ids:
        Items in ``R_H``.
    complement_ids:
        Items in ``R_H^c``.
    items_per_task:
        Number of items per task.
    epsilon:
        Probability of drawing a slot from the complement.
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        ambiguous_ids: Sequence[int],
        complement_ids: Sequence[int],
        *,
        items_per_task: int = 10,
        epsilon: float = 0.1,
        seed: RandomState = None,
    ) -> None:
        self._ambiguous = list(ambiguous_ids)
        self._complement = list(complement_ids)
        if not self._ambiguous and not self._complement:
            raise ConfigurationError("both item partitions are empty")
        check_int(items_per_task, "items_per_task", minimum=1)
        check_probability(epsilon, "epsilon")
        self.items_per_task = int(items_per_task)
        self.epsilon = float(epsilon)
        self._rng = ensure_rng(seed)
        self._next_task_id = 0

    def next_task(self) -> Task:
        """Create the next ε-prioritised task.

        Items are drawn without replacement within the task; if one side of
        the partition is exhausted (or empty) the remaining slots fall back
        to the other side.
        """
        chosen: List[int] = []
        available_ambiguous = list(self._ambiguous)
        available_complement = list(self._complement)
        while len(chosen) < self.items_per_task and (available_ambiguous or available_complement):
            draw_complement = self._rng.random() < self.epsilon
            source = available_complement if draw_complement else available_ambiguous
            if not source:
                source = available_ambiguous or available_complement
            index = int(self._rng.integers(0, len(source)))
            chosen.append(source.pop(index))
        task = Task(task_id=self._next_task_id, item_ids=tuple(chosen))
        self._next_task_id += 1
        return task

    def tasks(self, count: int) -> List[Task]:
        """Create ``count`` tasks."""
        check_int(count, "count", minimum=0)
        return [self.next_task() for _ in range(count)]


class SkewedAssigner:
    """Zipf-weighted assignment: a few items soak up most of the attention.

    Real crowdsourcing platforms rarely achieve the uniform sampling the
    DQM estimators assume — recently posted or prominently listed items
    receive far more judgements than the tail.  This assigner draws each
    task's items without replacement from a Zipf distribution over a
    random ranking of the candidate set: item at rank ``r`` has weight
    ``1 / r**exponent``.  The induced per-item vote-count skew is exactly
    the regime under which the paper reports chao92/vchao92 underestimate
    (their coverage correction assumes homogeneous sampling), making this
    the natural adversarial counterpart to :class:`UniformRandomAssigner`.

    Parameters
    ----------
    item_ids:
        The candidate items.
    items_per_task:
        Number of items per task.
    exponent:
        Zipf exponent (0 reduces to uniform sampling; larger values give
        heavier skew).
    seed:
        Seed or generator.  Used once to draw the hidden popularity
        ranking (so skew is uncorrelated with item-id order) and then for
        every task draw.
    """

    def __init__(
        self,
        item_ids: Sequence[int],
        *,
        items_per_task: int = 10,
        exponent: float = 1.0,
        seed: RandomState = None,
    ) -> None:
        self._item_ids = list(item_ids)
        if not self._item_ids:
            raise ConfigurationError("cannot assign tasks over an empty candidate set")
        check_int(items_per_task, "items_per_task", minimum=1)
        if items_per_task > len(self._item_ids):
            raise ConfigurationError(
                f"items_per_task ({items_per_task}) exceeds the number of candidate items "
                f"({len(self._item_ids)})"
            )
        if exponent < 0:
            raise ConfigurationError(f"exponent must be non-negative, got {exponent}")
        self.items_per_task = int(items_per_task)
        self.exponent = float(exponent)
        self._rng = ensure_rng(seed)
        ranks = self._rng.permutation(len(self._item_ids)) + 1
        weights = 1.0 / np.power(ranks.astype(float), self.exponent)
        self._probabilities = weights / weights.sum()
        self._next_task_id = 0

    def next_task(self) -> Task:
        """Create the next Zipf-weighted task (without replacement within it)."""
        chosen = self._rng.choice(
            len(self._item_ids),
            size=self.items_per_task,
            replace=False,
            p=self._probabilities,
        )
        task = Task(
            task_id=self._next_task_id,
            item_ids=tuple(self._item_ids[int(i)] for i in chosen),
        )
        self._next_task_id += 1
        return task

    def tasks(self, count: int) -> List[Task]:
        """Create ``count`` tasks."""
        check_int(count, "count", minimum=0)
        return [self.next_task() for _ in range(count)]


class FixedQuorumAssigner:
    """Assign every item to exactly ``quorum`` workers (conventional cleaning).

    This is the baseline assignment the paper's Sample-Clean-Minimum (SCM)
    cost reference assumes: each item in a sample is reviewed by a fixed
    number of workers, with no overlap-driven redundancy beyond the quorum.
    Tasks are filled greedily so each task contains ``items_per_task`` items
    and no item appears in more tasks than the quorum requires.

    Parameters
    ----------
    item_ids:
        Items to cover.
    quorum:
        Number of independent reviews per item (3 in the paper's SCM).
    items_per_task:
        Items per task.
    seed:
        Seed or generator (used to shuffle the item order).
    """

    def __init__(
        self,
        item_ids: Sequence[int],
        *,
        quorum: int = 3,
        items_per_task: int = 10,
        seed: RandomState = None,
    ) -> None:
        self._item_ids = list(item_ids)
        if not self._item_ids:
            raise ConfigurationError("cannot assign tasks over an empty candidate set")
        check_int(quorum, "quorum", minimum=1)
        check_int(items_per_task, "items_per_task", minimum=1)
        self.quorum = int(quorum)
        self.items_per_task = int(items_per_task)
        self._rng = ensure_rng(seed)

    def tasks(self) -> List[Task]:
        """Produce the full fixed-quorum task list.

        Returns
        -------
        list of Task
            ``ceil(quorum * len(items) / items_per_task)`` tasks; every item
            appears in exactly ``quorum`` tasks.
        """
        slots: List[int] = []
        for _ in range(self.quorum):
            order = list(self._item_ids)
            self._rng.shuffle(order)
            slots.extend(order)
        tasks: List[Task] = []
        for start in range(0, len(slots), self.items_per_task):
            batch = slots[start : start + self.items_per_task]
            # A single worker should not see the same item twice in a task;
            # de-duplicate while preserving order (the duplicate slot is
            # pushed to the next task by simply dropping it here — the item
            # still reaches its quorum because drops are rare and symmetric).
            seen = set()
            unique_batch = []
            for item in batch:
                if item not in seen:
                    seen.add(item)
                    unique_batch.append(item)
            tasks.append(Task(task_id=len(tasks), item_ids=tuple(unique_batch)))
        return tasks

    def num_tasks(self) -> int:
        """The number of tasks the fixed-quorum schedule needs (the SCM cost)."""
        return int(np.ceil(self.quorum * len(self._item_ids) / self.items_per_task))
