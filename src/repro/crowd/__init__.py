"""Crowd substrate: workers, tasks, votes and consensus.

Everything the estimators consume is produced here.  The central data
structure is :class:`~repro.crowd.response_matrix.ResponseMatrix`, the
``N x K`` matrix ``I`` of Problem 1 in the paper whose entries are
``{dirty, clean, unseen}``.  The rest of the package simulates how such a
matrix comes to be:

* :mod:`~repro.crowd.worker` — parametric worker models with false-positive
  and false-negative rates,
* :mod:`~repro.crowd.assignment` — task construction (p random items per
  task, uniform or ε-prioritised sampling, fixed-quorum assignment),
* :mod:`~repro.crowd.simulator` — the end-to-end crowd simulation that
  replaces the paper's Amazon Mechanical Turk deployment,
* :mod:`~repro.crowd.consensus` — nominal / majority-vote aggregation,
* :mod:`~repro.crowd.em` — Dawid–Skene expectation-maximisation label
  aggregation (an extension used for ablations).
"""

from repro.crowd.assignment import (
    FixedQuorumAssigner,
    PrioritizedAssigner,
    SkewedAssigner,
    Task,
    UniformRandomAssigner,
)
from repro.crowd.consensus import majority_labels, majority_vote_counts, nominal_labels
from repro.crowd.em import DawidSkeneResult, dawid_skene
from repro.crowd.response_matrix import ResponseMatrix
from repro.crowd.simulator import CrowdSimulation, CrowdSimulator, SimulationConfig
from repro.crowd.worker import (
    CliqueRegime,
    CliqueWorker,
    CrossSessionCliqueRegime,
    DriftRegime,
    HomogeneousRegime,
    MixtureRegime,
    StratifiedRegime,
    StratifiedWorker,
    Worker,
    WorkerPool,
    WorkerProfile,
    WorkerRegime,
)

__all__ = [
    "ResponseMatrix",
    "Worker",
    "WorkerPool",
    "WorkerProfile",
    "WorkerRegime",
    "HomogeneousRegime",
    "MixtureRegime",
    "DriftRegime",
    "CliqueRegime",
    "CliqueWorker",
    "CrossSessionCliqueRegime",
    "StratifiedRegime",
    "StratifiedWorker",
    "Task",
    "UniformRandomAssigner",
    "PrioritizedAssigner",
    "SkewedAssigner",
    "FixedQuorumAssigner",
    "CrowdSimulator",
    "CrowdSimulation",
    "SimulationConfig",
    "nominal_labels",
    "majority_labels",
    "majority_vote_counts",
    "dawid_skene",
    "DawidSkeneResult",
]
