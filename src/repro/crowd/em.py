"""Dawid–Skene expectation-maximisation label aggregation.

The paper cites EM-based label estimation (Zhang et al., Liu et al.) as the
standard way to aggregate noisy crowd labels once the data *has* been
reviewed.  We include a classic two-class Dawid–Skene implementation as an
extension so the SWITCH estimator can be compared against an EM-corrected
consensus in the ablation benchmarks.  It is not required by any of the
paper's headline experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.common.labels import CLEAN, DIRTY, UNSEEN
from repro.common.validation import check_int, check_positive
from repro.crowd.response_matrix import ResponseMatrix


@dataclass
class DawidSkeneResult:
    """Output of :func:`dawid_skene`.

    Attributes
    ----------
    posterior_dirty:
        Mapping from item id to the posterior probability that the item is
        dirty.
    labels:
        Hard labels obtained by thresholding the posterior at 0.5.
    worker_sensitivity / worker_specificity:
        Per-column estimates of the workers' accuracy on dirty and clean
        items respectively.
    prevalence:
        Estimated prior probability of an item being dirty.
    iterations:
        Number of EM iterations executed.
    converged:
        Whether the posterior change fell below the tolerance before the
        iteration cap.
    """

    posterior_dirty: Dict[int, float]
    labels: Dict[int, int]
    worker_sensitivity: List[float]
    worker_specificity: List[float]
    prevalence: float
    iterations: int
    converged: bool


def _dawid_skene_arrays(
    matrix: ResponseMatrix,
    upto: Optional[int] = None,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    prior_dirty: float = 0.5,
):
    """The EM iteration itself, entirely on arrays.

    Returns ``(posterior, sensitivity, specificity, prevalence,
    iterations, converged)`` where ``posterior`` is the per-row posterior
    array — no per-item dictionaries are built anywhere in the loop, so
    callers that only need aggregates (:func:`em_error_count`) never pay
    for them.
    """
    check_int(max_iterations, "max_iterations", minimum=1)
    check_positive(tolerance, "tolerance")

    votes = matrix.values[:, : matrix.resolve_upto(upto)]
    n_items, n_cols = votes.shape
    if n_cols == 0:
        posterior = np.full(n_items, float(prior_dirty))
        return posterior, np.zeros(0), np.zeros(0), float(prior_dirty), 0, True

    seen = votes != UNSEEN
    dirty_votes = votes == DIRTY
    clean_votes = votes == CLEAN

    # Initialise posteriors from the (smoothed) positive vote fraction.
    vote_totals = seen.sum(axis=1)
    positive_totals = dirty_votes.sum(axis=1)
    posterior = (positive_totals + prior_dirty) / (vote_totals + 1.0)

    sensitivity = np.full(n_cols, 0.7)
    specificity = np.full(n_cols, 0.7)
    prevalence = float(prior_dirty)
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # M-step: re-estimate worker confusion and prevalence.
        weight_dirty = posterior[:, None] * seen
        weight_clean = (1.0 - posterior)[:, None] * seen
        sensitivity = (
            (posterior[:, None] * dirty_votes).sum(axis=0) + 0.5
        ) / (weight_dirty.sum(axis=0) + 1.0)
        specificity = (
            ((1.0 - posterior)[:, None] * clean_votes).sum(axis=0) + 0.5
        ) / (weight_clean.sum(axis=0) + 1.0)
        prevalence = float(np.clip(posterior.mean(), 1e-6, 1.0 - 1e-6))

        # E-step: recompute posteriors from the worker confusion matrices.
        log_dirty = np.log(prevalence) + (
            dirty_votes @ np.log(np.clip(sensitivity, 1e-9, 1.0))
            + clean_votes @ np.log(np.clip(1.0 - sensitivity, 1e-9, 1.0))
        )
        log_clean = np.log(1.0 - prevalence) + (
            clean_votes @ np.log(np.clip(specificity, 1e-9, 1.0))
            + dirty_votes @ np.log(np.clip(1.0 - specificity, 1e-9, 1.0))
        )
        # Stable softmax over the two classes.
        peak = np.maximum(log_dirty, log_clean)
        numerator = np.exp(log_dirty - peak)
        denominator = numerator + np.exp(log_clean - peak)
        new_posterior = numerator / denominator
        # Items with no votes stay at the prevalence estimate.
        new_posterior = np.where(vote_totals > 0, new_posterior, prevalence)

        change = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        if change < tolerance:
            converged = True
            break

    return posterior, sensitivity, specificity, prevalence, iterations, converged


def dawid_skene(
    matrix: ResponseMatrix,
    upto: Optional[int] = None,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    prior_dirty: float = 0.5,
) -> DawidSkeneResult:
    """Run two-class Dawid–Skene EM over a response-matrix prefix.

    Parameters
    ----------
    matrix:
        The worker-response matrix.
    upto:
        Use only the first ``upto`` columns (``None`` = all).
    max_iterations:
        EM iteration cap.
    tolerance:
        Convergence threshold on the maximum posterior change.
    prior_dirty:
        Initial class prior used before the first maximisation step.

    Returns
    -------
    DawidSkeneResult

    Notes
    -----
    Columns with no votes contribute nothing; items with no votes keep the
    prior as their posterior.  Worker accuracies are smoothed with a
    +0.5/+1 pseudo-count so early, sparse matrices do not collapse to
    degenerate 0/1 confusion entries.
    """
    posterior, sensitivity, specificity, prevalence, iterations, converged = (
        _dawid_skene_arrays(
            matrix,
            upto,
            max_iterations=max_iterations,
            tolerance=tolerance,
            prior_dirty=prior_dirty,
        )
    )
    # Label extraction stays in array land; the dictionaries are built once
    # at the end from exact Python scalars (``tolist`` preserves the float
    # bits), never inside the iteration loop.
    label_values = (posterior > 0.5).astype(int).tolist()
    posterior_by_item = dict(zip(matrix.item_ids, posterior.tolist()))
    labels = dict(zip(matrix.item_ids, label_values))
    return DawidSkeneResult(
        posterior_dirty=posterior_by_item,
        labels=labels,
        worker_sensitivity=sensitivity.tolist(),
        worker_specificity=specificity.tolist(),
        prevalence=prevalence,
        iterations=iterations,
        converged=converged,
    )


def em_error_count(matrix: ResponseMatrix, upto: Optional[int] = None, **kwargs) -> int:
    """Number of items the Dawid–Skene posterior labels as dirty.

    A drop-in alternative to
    :func:`repro.crowd.consensus.majority_count` for ablation studies.
    Counts directly on the posterior array — no per-item dictionaries are
    materialised.
    """
    posterior, *_ = _dawid_skene_arrays(matrix, upto, **kwargs)
    return int(np.count_nonzero(posterior > 0.5))
