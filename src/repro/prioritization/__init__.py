"""Prioritised estimation (Section 5 of the paper).

Crowdsourced cleaning is usually run behind an algorithmic heuristic that
filters out the obvious cases.  This package composes the estimators with
that heuristic:

* :func:`~repro.prioritization.perfect.total_errors_with_perfect_heuristic`
  — Equation 9: with a perfect heuristic the crowd only reviews the
  ambiguous band and the obvious matches are added back verbatim.
* :class:`~repro.prioritization.imperfect.EpsilonGreedyPrioritizer` —
  Section 5.3: with an imperfect heuristic, workers see ambiguous items
  with probability ``1 - ε`` and items outside the band with probability
  ``ε``, and the estimate targets the whole dataset (Equation 10).
"""

from repro.prioritization.imperfect import (
    EpsilonGreedyPrioritizer,
    PrioritizedEstimate,
    estimate_with_imperfect_heuristic,
)
from repro.prioritization.perfect import total_errors_with_perfect_heuristic

__all__ = [
    "total_errors_with_perfect_heuristic",
    "EpsilonGreedyPrioritizer",
    "PrioritizedEstimate",
    "estimate_with_imperfect_heuristic",
]
