"""Estimation with a *perfect* heuristic (Section 5.2, Equation 9).

A perfect heuristic never auto-labels a clean item as an error and never
lets a true error fall below the band, so the total error count decomposes
exactly into

.. math::

    |R_{dirty}| = \\hat{D}(R_H) + |\\{r : H(r) > \\beta\\}|

— the crowd-based estimate over the ambiguous band plus the count of
obvious matches.  The crowd estimate over ``R_H`` may use any of the
estimators in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Optional

from repro.common.validation import check_non_negative
from repro.core.base import EstimateResult, EstimatorProtocol
from repro.crowd.response_matrix import ResponseMatrix


def total_errors_with_perfect_heuristic(
    estimator: EstimatorProtocol,
    candidate_matrix: ResponseMatrix,
    num_obvious_errors: int,
    upto: Optional[int] = None,
) -> EstimateResult:
    """Combine a crowd estimate over ``R_H`` with the heuristic's obvious errors.

    Parameters
    ----------
    estimator:
        Any estimator from :mod:`repro.core` (the paper suggests vChao92 or
        the plain coverage estimator for this composition; SWITCH works
        too).
    candidate_matrix:
        The worker-response matrix over the ambiguous candidate set
        ``R_H``.
    num_obvious_errors:
        ``|{r : H(r) > beta}|`` — items the heuristic auto-labelled as
        errors.  Under the perfect-heuristic assumption every one of them is
        a true error.
    upto:
        Column prefix of the matrix to use.

    Returns
    -------
    repro.core.base.EstimateResult
        ``estimate`` is the composed total over the whole dataset;
        ``observed`` is the estimator's own observed count plus the obvious
        errors; the candidate-set estimate is recorded in ``details``.
    """
    check_non_negative(num_obvious_errors, "num_obvious_errors")
    candidate_result = estimator.estimate(candidate_matrix, upto)
    total = candidate_result.estimate + float(num_obvious_errors)
    observed = candidate_result.observed + float(num_obvious_errors)
    details = dict(candidate_result.details)
    details["candidate_estimate"] = candidate_result.estimate
    details["num_obvious_errors"] = float(num_obvious_errors)
    return EstimateResult(estimate=total, observed=observed, details=details)
