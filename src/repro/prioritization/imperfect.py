"""Estimation with an *imperfect* heuristic (Section 5.3, Equation 10).

When the heuristic itself makes mistakes — true errors below the band,
clean items above it — the clean decomposition of Equation 9 breaks.  The
paper's fix is ε-randomisation: workers mostly see items from the ambiguous
band ``R_H`` (probability ``1 - ε``) but occasionally see items from the
complement ``R_H^c`` (probability ``ε``), and the estimator is run over the
whole dataset ``R``.  ``ε`` acts as a "trust in the heuristic" dial: 0
recovers the perfect-heuristic behaviour, larger values approach uniform
sampling.  The paper finds ``ε = 0.1`` a good default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.common.rng import RandomState, derive_rng
from repro.common.validation import check_probability
from repro.core.base import EstimateResult, EstimatorProtocol
from repro.crowd.response_matrix import ResponseMatrix
from repro.crowd.simulator import CrowdSimulation, CrowdSimulator, SimulationConfig
from repro.data.record import Dataset


@dataclass
class PrioritizedEstimate:
    """A total-error estimate produced through ε-prioritised sampling.

    Attributes
    ----------
    result:
        The estimator's output over the whole dataset ``R``.
    epsilon:
        The ε used for the sampling.
    num_tasks:
        Number of tasks consumed.
    candidate_fraction:
        Fraction of votes that landed on ambiguous-band items (diagnostic:
        should be roughly ``1 - ε`` when both partitions are non-empty).
    """

    result: EstimateResult
    epsilon: float
    num_tasks: int
    candidate_fraction: float


class EpsilonGreedyPrioritizer:
    """Run ε-prioritised crowd collection and estimation end-to-end.

    Parameters
    ----------
    dataset:
        The full item dataset ``R`` (for entity resolution, the flattened
        pair items) with gold labels for the simulated workers.
    ambiguous_ids:
        Item ids in the heuristic's ambiguous band ``R_H``.
    epsilon:
        Probability of showing a worker an item from outside the band.
    config:
        Crowd-simulation parameters (worker error rates, items per task,
        number of tasks, seed).
    """

    def __init__(
        self,
        dataset: Dataset,
        ambiguous_ids: Sequence[int],
        *,
        epsilon: float = 0.1,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        check_probability(epsilon, "epsilon")
        self.dataset = dataset
        self.ambiguous_ids = list(ambiguous_ids)
        ambiguous = set(self.ambiguous_ids)
        self.complement_ids = [rid for rid in dataset.record_ids if rid not in ambiguous]
        base_config = config or SimulationConfig()
        # Rebuild the config with this prioritizer's epsilon so the
        # simulator's assigner uses it.
        self.config = SimulationConfig(
            num_tasks=base_config.num_tasks,
            items_per_task=base_config.items_per_task,
            worker_profile=base_config.worker_profile,
            worker_rate_jitter=base_config.worker_rate_jitter,
            tasks_per_worker=base_config.tasks_per_worker,
            epsilon=epsilon,
            seed=base_config.seed,
        )
        self.epsilon = float(epsilon)

    def collect(self, num_tasks: Optional[int] = None) -> CrowdSimulation:
        """Simulate the ε-prioritised crowd and return the vote matrix."""
        simulator = CrowdSimulator(
            self.dataset,
            self.config,
            prioritized_partition=(self.ambiguous_ids, self.complement_ids),
        )
        return simulator.run(num_tasks)

    def estimate(
        self,
        estimator: EstimatorProtocol,
        num_tasks: Optional[int] = None,
    ) -> PrioritizedEstimate:
        """Collect votes and estimate ``|R_dirty|`` over the whole dataset."""
        simulation = self.collect(num_tasks)
        result = estimator.estimate(simulation.matrix)
        ambiguous = set(self.ambiguous_ids)
        votes_on_candidates = 0
        total_votes = 0
        for task in simulation.tasks:
            for item in task.item_ids:
                total_votes += 1
                if item in ambiguous:
                    votes_on_candidates += 1
        fraction = votes_on_candidates / total_votes if total_votes else 0.0
        return PrioritizedEstimate(
            result=result,
            epsilon=self.epsilon,
            num_tasks=simulation.num_tasks,
            candidate_fraction=fraction,
        )


def estimate_with_imperfect_heuristic(
    estimator: EstimatorProtocol,
    matrix: ResponseMatrix,
    upto: Optional[int] = None,
) -> EstimateResult:
    """Estimate ``|R_dirty|`` from an ε-prioritised vote matrix (Equation 10).

    With ε-randomised sampling the estimator is simply applied to the whole
    matrix — the point of the randomisation is that no add-back term is
    needed.  Provided as a named function so experiment code reads like the
    paper.
    """
    return estimator.estimate(matrix, upto)
