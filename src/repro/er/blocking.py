"""Blocking: cheaply shortlist candidate pairs before similarity scoring.

Scoring the full cross product is quadratic (the paper notes 858 records
already yield 367,653 pairs and the product catalogues yield millions).
Blocking groups records by cheap keys (shared tokens, name prefixes) and
only pairs records within a block, which is how real entity-resolution
pipelines — including the CrowdER design the paper builds on — keep the
candidate generation tractable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.data.pairs import canonical_pair_key
from repro.data.record import Dataset, Record


def _record_tokens(record: Record, fields: Optional[Iterable[str]]) -> Set[str]:
    return {token for token in record.text(list(fields) if fields else None).split() if token}


def block_by_tokens(
    dataset: Dataset,
    *,
    fields: Optional[Iterable[str]] = None,
    min_token_length: int = 3,
    max_block_size: int = 500,
) -> Dict[str, List[int]]:
    """Group record ids by shared tokens.

    Each token of at least ``min_token_length`` characters becomes a block
    key; blocks that grow beyond ``max_block_size`` are discarded because
    ubiquitous tokens ("the", "inc") produce quadratic blow-up without
    adding discriminative power.

    Returns
    -------
    dict
        Mapping from token to the list of record ids containing it.
    """
    blocks: Dict[str, List[int]] = defaultdict(list)
    for record in dataset:
        for token in _record_tokens(record, fields):
            if len(token) >= min_token_length:
                blocks[token].append(record.record_id)
    return {
        token: ids
        for token, ids in blocks.items()
        if 2 <= len(ids) <= max_block_size
    }


def block_by_prefix(
    dataset: Dataset,
    *,
    field: str = "name",
    prefix_length: int = 4,
) -> Dict[str, List[int]]:
    """Group record ids by the prefix of one field (e.g. the name's first 4 chars)."""
    blocks: Dict[str, List[int]] = defaultdict(list)
    for record in dataset:
        value = str(record.get(field, "") or "").strip().lower()
        if not value:
            continue
        blocks[value[:prefix_length]].append(record.record_id)
    return {key: ids for key, ids in blocks.items() if len(ids) >= 2}


def candidate_keys_from_blocks(
    blocks: Dict[str, List[int]],
    *,
    cross_source_only: Optional[Tuple[Dataset, str, str]] = None,
) -> Set[Tuple[int, int]]:
    """Expand blocks into a set of canonical candidate pair keys.

    Parameters
    ----------
    blocks:
        Output of :func:`block_by_tokens` or :func:`block_by_prefix`.
    cross_source_only:
        Optional ``(dataset, left_source, right_source)`` restriction: only
        pairs joining a record of ``left_source`` with a record of
        ``right_source`` are kept (used by the product dataset, which only
        matches Amazon records against Google records).

    Returns
    -------
    set of (int, int)
        Canonical pair keys with commutative duplicates removed.
    """
    source_of = None
    left_source = right_source = None
    if cross_source_only is not None:
        dataset, left_source, right_source = cross_source_only
        source_of = {record.record_id: record.source for record in dataset}

    keys: Set[Tuple[int, int]] = set()
    for ids in blocks.values():
        ids = sorted(set(ids))
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if source_of is not None:
                    sources = {source_of.get(a), source_of.get(b)}
                    if sources != {left_source, right_source}:
                        continue
                keys.add(canonical_pair_key(a, b))
    return keys
