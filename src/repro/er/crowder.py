"""Two-stage CrowdER-style entity-resolution pipeline.

The paper's real-world experiments follow CrowdER's propose--verify design:

1. **Stage one (algorithmic).**  A similarity measure scores candidate
   pairs.  Pairs above the upper threshold are auto-merged (likely
   matches), pairs below the lower threshold are auto-rejected (likely
   non-matches), and the ambiguous middle band becomes the candidate set
   shown to the crowd.
2. **Stage two (crowd).**  Workers review candidate pairs in small tasks
   and vote dirty (duplicate) / clean (distinct).

:class:`CrowdERPipeline` runs stage one end-to-end (blocking, scoring,
band partitioning) and hands the resulting candidate
:class:`~repro.data.pairs.PairDataset` to the crowd simulator.  It also
reports the stage-one confusion (how many true duplicates the heuristic
auto-resolved or missed) which the prioritised estimators need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.data.pairs import PairDataset, duplicate_keys_from_entities
from repro.data.record import Dataset
from repro.er.blocking import block_by_tokens, candidate_keys_from_blocks
from repro.er.heuristic import HeuristicBand, partition_by_heuristic
from repro.er.pairing import build_pair_dataset


@dataclass
class CrowdERResult:
    """Output of the algorithmic stage of the pipeline.

    Attributes
    ----------
    candidates:
        The ambiguous candidate pairs (``R_H``) to be reviewed by the crowd.
    scored_pairs:
        Every scored pair (the union of all three heuristic classes), useful
        for ablations that vary the band without re-scoring.
    num_obvious_matches:
        Pairs auto-labelled as duplicates by the heuristic
        (``|{r : H(r) > beta}|`` in Equation 9).
    num_obvious_non_matches:
        Pairs auto-labelled as non-duplicates.
    heuristic_false_negatives:
        True duplicate pairs that fell below the band (missed entirely by
        the heuristic).
    heuristic_false_positives:
        Auto-labelled "obvious matches" that are not true duplicates.
    stats:
        Free-form extra counters (blocking sizes, scoring counts, ...).
    """

    candidates: PairDataset
    scored_pairs: PairDataset
    num_obvious_matches: int
    num_obvious_non_matches: int
    heuristic_false_negatives: int
    heuristic_false_positives: int
    stats: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """Return a dictionary of the headline stage-one counts."""
        return {
            "num_candidates": len(self.candidates),
            "candidate_duplicates": self.candidates.num_duplicates,
            "num_obvious_matches": self.num_obvious_matches,
            "num_obvious_non_matches": self.num_obvious_non_matches,
            "heuristic_false_negatives": self.heuristic_false_negatives,
            "heuristic_false_positives": self.heuristic_false_positives,
        }


class CrowdERPipeline:
    """Algorithmic stage of the two-stage crowd entity-resolution design.

    Parameters
    ----------
    band:
        The similarity ambiguity band (``alpha``, ``beta``).
    measure:
        Similarity measure used to score pairs (``"edit"`` to match the
        paper, or ``"jaccard"`` / ``"overlap"``).
    fields:
        Record fields included when rendering text for similarity.
    use_blocking:
        When ``True`` a token-blocking pass shortlists pairs before scoring
        (required for the product-sized catalogues); when ``False`` the full
        cross product is scored.
    cross_source:
        Optional ``(left_source, right_source)`` restriction, e.g.
        ``("amazon", "google")`` for the product dataset.
    max_block_size:
        Blocking guard against ubiquitous tokens.
    """

    def __init__(
        self,
        band: HeuristicBand,
        *,
        measure: str = "edit",
        fields: Optional[Sequence[str]] = None,
        use_blocking: bool = False,
        cross_source: Optional[Tuple[str, str]] = None,
        max_block_size: int = 500,
    ) -> None:
        self.band = band
        self.measure = measure
        self.fields = list(fields) if fields is not None else None
        self.use_blocking = use_blocking
        self.cross_source = cross_source
        self.max_block_size = max_block_size

    def run(self, dataset: Dataset) -> CrowdERResult:
        """Run stage one on ``dataset`` and return the candidate set.

        Parameters
        ----------
        dataset:
            Base record dataset whose ``entity_id`` values define the gold
            duplicate relation.
        """
        keys = None
        stats: Dict[str, object] = {}
        if self.use_blocking:
            blocks = block_by_tokens(
                dataset,
                fields=self.fields,
                max_block_size=self.max_block_size,
            )
            cross = (
                (dataset, self.cross_source[0], self.cross_source[1])
                if self.cross_source
                else None
            )
            keys = candidate_keys_from_blocks(blocks, cross_source_only=cross)
            stats["num_blocks"] = len(blocks)
            stats["num_blocked_pairs"] = len(keys)

        scored = build_pair_dataset(
            dataset,
            keys=keys,
            cross_source=self.cross_source if not self.use_blocking else None,
            fields=self.fields,
            measure=self.measure,
            name=f"{dataset.name}-scored",
        )
        candidates, partition = partition_by_heuristic(scored, self.band)

        all_duplicates = duplicate_keys_from_entities(dataset)
        obvious_match_keys = {scored[pid].key for pid in partition.obvious_error_ids}
        obvious_clean_keys = {scored[pid].key for pid in partition.obvious_clean_ids}
        scored_keys = {p.key for p in scored.pairs}

        # Duplicates missed by the heuristic: either scored below alpha, or
        # never even scored because blocking dropped them.
        missed_scored = len(obvious_clean_keys & all_duplicates)
        missed_unscored = len(all_duplicates - scored_keys)
        heuristic_false_negatives = missed_scored + missed_unscored
        heuristic_false_positives = len(obvious_match_keys - all_duplicates)

        stats["num_scored_pairs"] = len(scored)
        stats["total_duplicate_pairs"] = len(all_duplicates)

        return CrowdERResult(
            candidates=candidates,
            scored_pairs=scored,
            num_obvious_matches=len(obvious_match_keys),
            num_obvious_non_matches=len(obvious_clean_keys),
            heuristic_false_negatives=heuristic_false_negatives,
            heuristic_false_positives=heuristic_false_positives,
            stats=stats,
        )
