"""String and record similarity measures.

The paper's heuristics use a *normalised edit-distance-based similarity*
(restaurant: keep pairs with similarity in (0.5, 0.9); product: (0.4,
0.7)) and mention Jaccard similarity for CrowdER's first stage.  This
module implements both, plus a cheap token-overlap measure used for
blocking, and a record-level wrapper that renders records to text first.

The edit distance is a straightforward dynamic-programming Levenshtein
implementation with a banded early-exit; it is pure Python but the
candidate sets produced by blocking keep the number of scored pairs small
enough for interactive use.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.common.exceptions import ValidationError
from repro.data.record import Record


def levenshtein_distance(a: str, b: str) -> int:
    """Compute the Levenshtein (edit) distance between two strings.

    Uses the classic two-row dynamic program: ``O(len(a) * len(b))`` time,
    ``O(min(len(a), len(b)))`` memory.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop to minimise memory.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion
                    current[j - 1] + 1,   # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def normalized_edit_similarity(a: str, b: str) -> float:
    """Return ``1 - edit_distance(a, b) / max(len(a), len(b))``.

    The result is in ``[0, 1]``: identical strings score 1.0, completely
    different strings of equal length score 0.0.  Two empty strings are
    defined to be identical (similarity 1.0).
    """
    a = (a or "").strip().lower()
    b = (b or "").strip().lower()
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def _tokens(text: str) -> Set[str]:
    return {token for token in (text or "").lower().split() if token}


def jaccard_similarity(a: str, b: str) -> float:
    """Token-level Jaccard similarity ``|A ∩ B| / |A ∪ B|``.

    Two empty token sets are defined to be identical (similarity 1.0).
    """
    tokens_a, tokens_b = _tokens(a), _tokens(b)
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 1.0
    return len(tokens_a & tokens_b) / len(union)


def token_overlap_similarity(a: str, b: str) -> float:
    """Overlap coefficient ``|A ∩ B| / min(|A|, |B|)``.

    More forgiving than Jaccard when one string is much longer than the
    other; used by the blocking stage to cheaply shortlist candidates.
    """
    tokens_a, tokens_b = _tokens(a), _tokens(b)
    if not tokens_a or not tokens_b:
        return 1.0 if not tokens_a and not tokens_b else 0.0
    return len(tokens_a & tokens_b) / min(len(tokens_a), len(tokens_b))


_MEASURES = {
    "edit": normalized_edit_similarity,
    "jaccard": jaccard_similarity,
    "overlap": token_overlap_similarity,
}


def record_similarity(
    left: Record,
    right: Record,
    *,
    fields: Optional[Sequence[str]] = None,
    measure: str = "edit",
) -> float:
    """Similarity between two records, computed on their rendered text.

    Parameters
    ----------
    left, right:
        The records to compare.
    fields:
        Field names to include when rendering; defaults to every field.
    measure:
        One of ``"edit"`` (normalised edit similarity, the paper's choice),
        ``"jaccard"``, or ``"overlap"``.

    Raises
    ------
    repro.common.exceptions.ValidationError
        If ``measure`` is not a known similarity measure.
    """
    try:
        func = _MEASURES[measure]
    except KeyError:
        raise ValidationError(
            f"unknown similarity measure {measure!r}; expected one of {sorted(_MEASURES)}"
        ) from None
    return func(left.text(fields), right.text(fields))


def available_measures() -> Iterable[str]:
    """Names of the similarity measures understood by :func:`record_similarity`."""
    return tuple(sorted(_MEASURES))
