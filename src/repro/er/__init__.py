"""Entity-resolution substrate: similarity, blocking and candidate pairs.

The paper's entity-resolution experiments follow the two-stage CrowdER
design: an algorithmic similarity measure partitions the cross product of
records into *likely matches*, *likely non-matches* and an ambiguous middle
band of *candidate pairs* that are sent to the crowd.  This package
implements that machinery:

* :mod:`~repro.er.similarity` — normalised edit distance, Jaccard and
  token-based measures on records,
* :mod:`~repro.er.blocking` — cheap blocking to avoid scoring the full
  ``N x N`` cross product on large catalogues,
* :mod:`~repro.er.pairing` — building :class:`~repro.data.pairs.PairDataset`
  objects with gold labels from shared entity ids,
* :mod:`~repro.er.heuristic` — the confidence function ``H(r)`` and its
  (alpha, beta) band used for prioritisation (Section 5 of the paper),
* :mod:`~repro.er.crowder` — the end-to-end two-stage pipeline that the
  real-world experiments run.
"""

from repro.er.blocking import block_by_prefix, block_by_tokens, candidate_keys_from_blocks
from repro.er.crowder import CrowdERPipeline, CrowdERResult
from repro.er.heuristic import HeuristicBand, SimilarityHeuristic, partition_by_heuristic
from repro.er.pairing import build_pair_dataset, score_pairs
from repro.er.similarity import (
    jaccard_similarity,
    normalized_edit_similarity,
    record_similarity,
    token_overlap_similarity,
)

__all__ = [
    "normalized_edit_similarity",
    "jaccard_similarity",
    "token_overlap_similarity",
    "record_similarity",
    "block_by_tokens",
    "block_by_prefix",
    "candidate_keys_from_blocks",
    "build_pair_dataset",
    "score_pairs",
    "HeuristicBand",
    "SimilarityHeuristic",
    "partition_by_heuristic",
    "CrowdERPipeline",
    "CrowdERResult",
]
