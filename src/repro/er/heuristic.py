"""The prioritisation heuristic ``H(r)`` and its ambiguity band.

Section 5 of the paper formalises prioritisation through a confidence
function ``H : R -> R+`` and a band ``[alpha, beta]``:

* records with ``H(r) > beta`` are *obvious errors* (likely matches) that
  the algorithm resolves automatically,
* records with ``H(r) < alpha`` are *obvious non-errors* (likely
  non-matches),
* the ambiguous middle band ``R_H = {r : alpha <= H(r) <= beta}`` is what
  the crowd reviews.

For entity resolution ``H`` is the pair similarity; the paper uses
``(0.5, 0.9)`` for the restaurant dataset and ``(0.4, 0.7)`` for the
product dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.exceptions import ConfigurationError
from repro.common.validation import check_probability
from repro.data.pairs import PairDataset
from repro.data.record import Dataset


@dataclass(frozen=True)
class HeuristicBand:
    """The ``[alpha, beta]`` ambiguity band of a prioritisation heuristic.

    Parameters
    ----------
    alpha:
        Lower threshold: items scoring below are treated as obvious
        non-errors.
    beta:
        Upper threshold: items scoring above are treated as obvious errors.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_probability(self.alpha, "alpha")
        check_probability(self.beta, "beta")
        if self.alpha > self.beta:
            raise ConfigurationError(
                f"heuristic band requires alpha <= beta, got alpha={self.alpha}, beta={self.beta}"
            )

    def classify(self, score: float) -> str:
        """Classify a confidence score as ``"ambiguous"``, ``"obvious_error"`` or ``"obvious_clean"``."""
        if score > self.beta:
            return "obvious_error"
        if score < self.alpha:
            return "obvious_clean"
        return "ambiguous"

    def contains(self, score: float) -> bool:
        """Return ``True`` when ``score`` falls inside the ambiguity band."""
        return self.alpha <= score <= self.beta


#: Bands used by the paper's real-world experiments.
RESTAURANT_BAND = HeuristicBand(alpha=0.5, beta=0.9)
PRODUCT_BAND = HeuristicBand(alpha=0.4, beta=0.7)


@dataclass
class HeuristicPartition:
    """The three-way partition produced by applying a heuristic band.

    Attributes
    ----------
    ambiguous_ids:
        Item ids in ``R_H`` (sent to the crowd).
    obvious_error_ids:
        Item ids the heuristic labels as errors without crowd review.
    obvious_clean_ids:
        Item ids the heuristic labels as clean without crowd review.
    scores:
        The raw ``H(r)`` score of every item.
    """

    ambiguous_ids: List[int]
    obvious_error_ids: List[int]
    obvious_clean_ids: List[int]
    scores: Dict[int, float]

    @property
    def num_ambiguous(self) -> int:
        """Size of ``R_H``."""
        return len(self.ambiguous_ids)

    def summary(self) -> Dict[str, int]:
        """Return the partition sizes."""
        return {
            "ambiguous": len(self.ambiguous_ids),
            "obvious_error": len(self.obvious_error_ids),
            "obvious_clean": len(self.obvious_clean_ids),
        }


class SimilarityHeuristic:
    """Confidence heuristic backed by a per-item score function.

    Parameters
    ----------
    band:
        The ``[alpha, beta]`` ambiguity band.
    score_fn:
        Function mapping an item id to its confidence score.  For pair
        datasets the default reads the similarity stored on each pair.
    """

    def __init__(self, band: HeuristicBand, score_fn: Callable[[int], float]):
        self.band = band
        self._score_fn = score_fn

    @classmethod
    def from_pair_dataset(cls, pairs: PairDataset, band: HeuristicBand) -> "SimilarityHeuristic":
        """Build a heuristic whose scores are the pairs' stored similarities."""

        def score(pair_id: int) -> float:
            similarity = pairs[pair_id].similarity
            return float(similarity) if similarity is not None else 0.0

        return cls(band, score)

    def score(self, item_id: int) -> float:
        """Return ``H(item_id)``."""
        return float(self._score_fn(item_id))

    def partition(self, item_ids) -> HeuristicPartition:
        """Partition ``item_ids`` into ambiguous / obvious-error / obvious-clean."""
        ambiguous: List[int] = []
        errors: List[int] = []
        clean: List[int] = []
        scores: Dict[int, float] = {}
        for item_id in item_ids:
            score = self.score(item_id)
            scores[item_id] = score
            kind = self.band.classify(score)
            if kind == "ambiguous":
                ambiguous.append(item_id)
            elif kind == "obvious_error":
                errors.append(item_id)
            else:
                clean.append(item_id)
        return HeuristicPartition(
            ambiguous_ids=ambiguous,
            obvious_error_ids=errors,
            obvious_clean_ids=clean,
            scores=scores,
        )


def partition_by_heuristic(
    pairs: PairDataset,
    band: HeuristicBand,
) -> Tuple[PairDataset, HeuristicPartition]:
    """Apply a similarity band to a pair dataset.

    Returns
    -------
    (PairDataset, HeuristicPartition)
        The candidate subset ``R_H`` as a new pair dataset (preserving gold
        labels), together with the full partition so callers can inspect the
        obvious-match side (needed by Equation 9 of the paper).
    """
    heuristic = SimilarityHeuristic.from_pair_dataset(pairs, band)
    partition = heuristic.partition(pairs.pair_ids)
    candidates = pairs.subset(partition.ambiguous_ids, name=f"{pairs.name}-candidates")
    return candidates, partition


def partition_dataset_by_scores(
    dataset: Dataset,
    scores: Dict[int, float],
    band: HeuristicBand,
) -> HeuristicPartition:
    """Partition a record-level dataset given externally computed scores.

    Convenience for non-pairwise error types (e.g. the address dataset) if a
    caller wants to prioritise records by some malformedness score.
    """
    heuristic = SimilarityHeuristic(band, lambda item_id: scores.get(item_id, 0.0))
    return heuristic.partition(dataset.record_ids)
