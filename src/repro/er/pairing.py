"""Build scored candidate-pair datasets with gold duplicate labels.

This module ties the data substrate and the similarity functions together:
given a base :class:`~repro.data.record.Dataset` whose records carry
``entity_id`` values, it enumerates (or receives) candidate pair keys,
scores them with a similarity measure, and packages the result as a
:class:`~repro.data.pairs.PairDataset` whose gold standard is derived from
the shared entity ids.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.pairs import (
    CandidatePair,
    PairDataset,
    canonical_pair_key,
    duplicate_keys_from_entities,
    enumerate_all_pairs,
)
from repro.data.record import Dataset
from repro.er.similarity import record_similarity


def score_pairs(
    dataset: Dataset,
    keys: Iterable[Tuple[int, int]],
    *,
    fields: Optional[Sequence[str]] = None,
    measure: str = "edit",
) -> Dict[Tuple[int, int], float]:
    """Score each candidate pair key with a record similarity.

    Parameters
    ----------
    dataset:
        Base record dataset.
    keys:
        Candidate pair keys (canonical orientation is enforced).
    fields:
        Record fields to include when rendering text for similarity.
    measure:
        Similarity measure name (see :func:`repro.er.similarity.record_similarity`).

    Returns
    -------
    dict
        Mapping from canonical pair key to similarity in ``[0, 1]``.
    """
    scores: Dict[Tuple[int, int], float] = {}
    for a, b in keys:
        key = canonical_pair_key(a, b)
        if key in scores:
            continue
        scores[key] = record_similarity(dataset[key[0]], dataset[key[1]], fields=fields, measure=measure)
    return scores


def build_pair_dataset(
    dataset: Dataset,
    *,
    keys: Optional[Iterable[Tuple[int, int]]] = None,
    cross_source: Optional[Tuple[str, str]] = None,
    fields: Optional[Sequence[str]] = None,
    measure: str = "edit",
    name: Optional[str] = None,
) -> PairDataset:
    """Build a scored :class:`~repro.data.pairs.PairDataset` from a base dataset.

    Parameters
    ----------
    dataset:
        Base record dataset with ``entity_id`` values identifying duplicates.
    keys:
        Candidate pair keys to include.  When ``None`` the full cross
        product (optionally restricted to ``cross_source``) is enumerated —
        fine for the restaurant-sized datasets, prohibitive for the product
        catalogues where a blocking pass should supply ``keys``.
    cross_source:
        Optional ``(left_source, right_source)`` restriction for the
        full-enumeration path.
    fields / measure:
        Passed to :func:`score_pairs`.
    name:
        Name of the resulting pair dataset.

    Returns
    -------
    repro.data.pairs.PairDataset
        Pairs carry their similarity scores; ``duplicate_keys`` holds the
        keys of pairs whose records share an entity id; ``total_duplicates``
        records the number of duplicate pairs in the full cross product so
        heuristic false negatives can be accounted for.
    """
    if keys is None:
        keys = enumerate_all_pairs(dataset, cross_source=cross_source)
    keys = [canonical_pair_key(a, b) for a, b in keys]
    scores = score_pairs(dataset, keys, fields=fields, measure=measure)

    all_duplicate_keys = duplicate_keys_from_entities(dataset)
    pairs: List[CandidatePair] = []
    seen = set()
    for key in keys:
        if key in seen:
            continue
        seen.add(key)
        pairs.append(
            CandidatePair(
                pair_id=len(pairs),
                left_id=key[0],
                right_id=key[1],
                similarity=scores[key],
            )
        )
    candidate_duplicates = {p.key for p in pairs} & all_duplicate_keys
    return PairDataset(
        base=dataset,
        pairs=pairs,
        duplicate_keys=candidate_duplicates,
        name=name or f"{dataset.name}-pairs",
        total_duplicates=len(all_duplicate_keys),
        metadata={"measure": measure},
    )
