"""Shared infrastructure used across every ``repro`` subpackage.

The :mod:`repro.common` package holds the small, dependency-free pieces that
every other subsystem builds on: deterministic random-number plumbing,
argument validation helpers, the vote-label constants, and the exception
hierarchy.  Keeping them here avoids import cycles between the data, crowd
and estimator layers.
"""

from repro.common.exceptions import (
    ConfigurationError,
    EstimationError,
    InsufficientDataError,
    ReproError,
    ValidationError,
)
from repro.common.labels import CLEAN, DIRTY, UNSEEN, Label
from repro.common.registry import Registry
from repro.common.rng import RandomState, derive_rng, ensure_rng, spawn_seeds
from repro.common.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "CLEAN",
    "DIRTY",
    "UNSEEN",
    "Label",
    "RandomState",
    "Registry",
    "derive_rng",
    "ensure_rng",
    "spawn_seeds",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "ReproError",
    "ValidationError",
    "ConfigurationError",
    "EstimationError",
    "InsufficientDataError",
]
