"""Small argument-validation helpers shared across the library.

These helpers keep public constructors short and produce consistent,
descriptive error messages.  They all raise
:class:`repro.common.exceptions.ValidationError`.
"""

from __future__ import annotations

from numbers import Real
from typing import Optional

from repro.common.exceptions import ValidationError


def _check_real(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    return float(value)


def check_probability(value: object, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1].

    Returns the value as a ``float``.
    """
    val = _check_real(value, name)
    if not 0.0 <= val <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {val}")
    return val


def check_fraction(value: object, name: str, *, allow_zero: bool = True) -> float:
    """Validate that ``value`` is a fraction in ``(0, 1]`` (or ``[0, 1]``).

    Parameters
    ----------
    value:
        Candidate fraction.
    name:
        Parameter name used in error messages.
    allow_zero:
        When ``False``, zero is rejected.
    """
    val = _check_real(value, name)
    lower_ok = val >= 0.0 if allow_zero else val > 0.0
    if not (lower_ok and val <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValidationError(f"{name} must be in {bound}, got {val}")
    return val


def check_positive(value: object, name: str) -> float:
    """Validate that ``value`` is strictly positive.  Returns it as ``float``."""
    val = _check_real(value, name)
    if val <= 0:
        raise ValidationError(f"{name} must be > 0, got {val}")
    return val


def check_non_negative(value: object, name: str) -> float:
    """Validate that ``value`` is >= 0.  Returns it as ``float``."""
    val = _check_real(value, name)
    if val < 0:
        raise ValidationError(f"{name} must be >= 0, got {val}")
    return val


def check_int(value: object, name: str, *, minimum: Optional[int] = None) -> int:
    """Validate that ``value`` is an integer, optionally with a lower bound."""
    if isinstance(value, bool) or not isinstance(value, Real) or int(value) != value:
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    ivalue = int(value)
    if minimum is not None and ivalue < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {ivalue}")
    return ivalue


def check_in(value: object, name: str, allowed) -> object:
    """Validate that ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
    return value


def check_known_keys(data, what: str, allowed) -> None:
    """Reject mapping keys outside ``allowed`` with a remediation message.

    The strict-key contract of the hand-edited spec dictionaries (worker
    profiles, scenario/regime/assignment/dataset params): a typoed key
    must fail loudly naming the expected vocabulary, never silently take
    a default.  Raises
    :class:`repro.common.exceptions.ConfigurationError` so spec-layer
    callers surface the suite's standard configuration error.
    """
    from repro.common.exceptions import ConfigurationError

    unknown = set(data) - set(allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {what} {sorted(unknown)}; expected a subset of {sorted(allowed)}"
        )
