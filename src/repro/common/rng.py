"""Deterministic random-number plumbing.

Every stochastic component in the library (dataset generators, worker
models, task assignment, experiment permutations) draws its randomness
from a :class:`numpy.random.Generator`.  The helpers here make it easy to

* accept "anything seed-like" at public API boundaries
  (:func:`ensure_rng`),
* derive independent child generators for subcomponents so that changing
  the amount of randomness consumed by one component does not perturb the
  others (:func:`derive_rng`, :func:`spawn_seeds`).

The experiments in the paper average results over ``r = 10`` random
permutations of the workers; the permutation seeds are derived with
:func:`spawn_seeds` so each permutation is independently reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: The union of things the library accepts wherever a seed is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def derive_rng(seed: RandomState, *key: int) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and an integer key.

    Two calls with the same ``seed`` and ``key`` return generators producing
    identical streams; different keys give statistically independent
    streams.  When ``seed`` is already a generator, a child is spawned from
    it (which advances the parent's spawn state but not its random stream).

    Parameters
    ----------
    seed:
        Anything accepted by :func:`ensure_rng`.
    *key:
        One or more integers identifying the subcomponent.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed.spawn(1)[0]
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed.spawn(1)[0])
    if seed is None:
        return np.random.default_rng()
    ss = np.random.SeedSequence(entropy=int(seed), spawn_key=tuple(int(k) for k in key))
    return np.random.default_rng(ss)


def spawn_seeds(seed: RandomState, count: int) -> Sequence[np.random.SeedSequence]:
    """Produce ``count`` independent seed sequences derived from ``seed``.

    Useful for running repeated experiment trials (the paper's ``r = 10``
    permutations) where every trial must be reproducible in isolation.

    Parameters
    ----------
    seed:
        Anything accepted by :func:`ensure_rng`.
    count:
        Number of child seeds to create; must be non-negative.

    Returns
    -------
    list of numpy.random.SeedSequence
    """
    from repro.common.validation import check_non_negative

    check_non_negative(count, "count")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        # Use the generator itself to produce a stable entropy value.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif seed is None:
        root = np.random.SeedSequence()
    else:
        root = np.random.SeedSequence(int(seed))
    return list(root.spawn(int(count)))


def permutation_seed(base_seed: Optional[int], trial: int) -> int:
    """Return a deterministic integer seed for permutation trial ``trial``.

    A tiny convenience used by the experiment harness when it needs plain
    integer seeds (for logging or result metadata) rather than generator
    objects.
    """
    if base_seed is None:
        base_seed = 0
    return (int(base_seed) * 1_000_003 + int(trial) * 7919) % (2**31 - 1)
