"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to distinguish configuration mistakes
(:class:`ValidationError`, :class:`ConfigurationError`) from runtime
estimation failures (:class:`EstimationError`,
:class:`InsufficientDataError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong shape, wrong type).

    Inherits from :class:`ValueError` so existing ``except ValueError``
    call sites keep working.
    """


class ConfigurationError(ReproError, ValueError):
    """An experiment or simulator configuration is inconsistent.

    Raised when individually-valid parameters do not make sense together,
    for example a task size larger than the candidate set, or a heuristic
    band ``alpha > beta``.
    """


class EstimationError(ReproError, RuntimeError):
    """An estimator could not produce a finite, meaningful estimate."""


class InsufficientDataError(EstimationError):
    """An estimator was asked for an estimate before it had any usable data.

    Most estimators in the library degrade gracefully (returning the
    descriptive count) instead of raising; this exception is reserved for
    strict-mode calls where the caller explicitly requested a failure.
    """
