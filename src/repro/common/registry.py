"""A generic name → entry registry with a consistent error contract.

Both the estimator registry (:mod:`repro.core.registry`) and the scenario
catalogue (:mod:`repro.scenarios.catalog`) need the same four operations —
register (with an explicit ``overwrite`` escape hatch), unregister, get
and list — and, more importantly, the same *error contract*: collisions
name the remedy, lookups list every registered name, and keys are
case-insensitive.  Centralising the mechanics here keeps those two error
surfaces (and any future registry) from drifting apart.
"""

from __future__ import annotations

from typing import Dict, Generic, List, TypeVar

from repro.common.exceptions import ConfigurationError

T = TypeVar("T")


class Registry(Generic[T]):
    """A case-insensitive mapping from stable names to entries.

    Parameters
    ----------
    kind:
        The noun used in error messages (``"estimator"``, ``"scenario"``).
    """

    def __init__(self, kind: str) -> None:
        self.kind = str(kind)
        self._entries: Dict[str, T] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return str(name).lower() in self._entries

    def register(self, name: str, entry: T, *, overwrite: bool = False) -> None:
        """Store ``entry`` under ``name``.

        Raises
        ------
        repro.common.exceptions.ConfigurationError
            If the name is taken and ``overwrite`` is false.  The message
            names the remedy and lists every registered name.
        """
        key = str(name).lower()
        if key in self._entries and not overwrite:
            raise ConfigurationError(
                f"{self.kind} {key!r} is already registered (pass overwrite=True "
                f"to replace it); available {self.kind}s: {sorted(self._entries)}"
            )
        self._entries[key] = entry

    def unregister(self, name: str) -> None:
        """Remove a registration if present (mainly for tests and plugins)."""
        self._entries.pop(str(name).lower(), None)

    def get(self, name: str) -> T:
        """Look up the entry registered under ``name``.

        Raises
        ------
        repro.common.exceptions.ConfigurationError
            If no entry is registered under that name; the message lists
            every registered name.
        """
        key = str(name).lower()
        try:
            return self._entries[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._entries)
