"""Vote-label constants shared by the crowd substrate and the estimators.

The paper represents worker responses in an ``N x K`` matrix ``I`` whose
entries come from ``{1, 0, None}`` meaning *dirty*, *clean*, *unseen*
(Problem 1).  We encode those three states as small integers so the matrix
can be stored densely in a ``numpy`` ``int8`` array:

========  =======  =================================================
constant  value    meaning
========  =======  =================================================
DIRTY     ``1``    the worker marked the record as erroneous
CLEAN     ``0``    the worker marked the record as clean
UNSEEN    ``-1``   the worker never saw the record
========  =======  =================================================

``UNSEEN`` is ``-1`` (not ``None``) so that vectorised comparisons such as
``votes == DIRTY`` work without masking; helper predicates below keep call
sites readable.
"""

from __future__ import annotations

import enum

import numpy as np

#: Integer code for a positive ("dirty"/"error") vote.
DIRTY: int = 1

#: Integer code for a negative ("clean") vote.
CLEAN: int = 0

#: Integer code for a record the worker never saw.
UNSEEN: int = -1


class Label(enum.IntEnum):
    """Enumerated view of the three vote states.

    ``Label`` is an :class:`enum.IntEnum` so members compare equal to the
    module-level integer constants (``Label.DIRTY == DIRTY``) and can be
    stored directly in integer arrays.
    """

    DIRTY = DIRTY
    CLEAN = CLEAN
    UNSEEN = UNSEEN

    @classmethod
    def from_bool(cls, is_dirty: bool) -> "Label":
        """Return :attr:`DIRTY` for truthy input and :attr:`CLEAN` otherwise."""
        return cls.DIRTY if is_dirty else cls.CLEAN


def is_vote(values: np.ndarray) -> np.ndarray:
    """Return a boolean mask of the entries that are actual votes.

    A vote is any entry that is not :data:`UNSEEN`.

    Parameters
    ----------
    values:
        Array of label codes.

    Returns
    -------
    numpy.ndarray
        Boolean array of the same shape as ``values``.
    """
    values = np.asarray(values)
    return values != UNSEEN


def is_dirty_vote(values: np.ndarray) -> np.ndarray:
    """Return a boolean mask of the positive (dirty) votes."""
    values = np.asarray(values)
    return values == DIRTY


def is_clean_vote(values: np.ndarray) -> np.ndarray:
    """Return a boolean mask of the negative (clean) votes."""
    values = np.asarray(values)
    return values == CLEAN


def validate_labels(values: np.ndarray) -> np.ndarray:
    """Validate that every entry of ``values`` is one of the three label codes.

    Parameters
    ----------
    values:
        Array-like of integers.

    Returns
    -------
    numpy.ndarray
        The input converted to an ``int8`` array.

    Raises
    ------
    repro.common.exceptions.ValidationError
        If any entry is not in ``{DIRTY, CLEAN, UNSEEN}``.
    """
    from repro.common.exceptions import ValidationError

    arr = np.asarray(values)
    if arr.size and not np.isin(arr, (DIRTY, CLEAN, UNSEEN)).all():
        bad = np.unique(arr[~np.isin(arr, (DIRTY, CLEAN, UNSEEN))])
        raise ValidationError(
            f"labels must be in {{DIRTY={DIRTY}, CLEAN={CLEAN}, UNSEEN={UNSEEN}}}; "
            f"found unexpected values {bad.tolist()}"
        )
    return arr.astype(np.int8, copy=False)
