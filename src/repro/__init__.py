"""repro — a reproduction of the DQM data-quality metric (VLDB 2017).

The library estimates how many errors remain undetected in a dataset after
crowd-based (or otherwise fallible) cleaning, using only the matrix of
worker votes — no ground truth, no complete rule set.

Quickstart
----------
>>> from repro import (
...     SyntheticPairConfig, generate_synthetic_pairs,
...     SimulationConfig, CrowdSimulator, WorkerProfile,
...     SwitchTotalErrorEstimator,
... )
>>> dataset = generate_synthetic_pairs(SyntheticPairConfig(num_items=500, num_errors=50))
>>> config = SimulationConfig(
...     num_tasks=80, items_per_task=15,
...     worker_profile=WorkerProfile(false_negative_rate=0.1, false_positive_rate=0.01),
...     seed=0,
... )
>>> simulation = CrowdSimulator(dataset, config).run()
>>> result = SwitchTotalErrorEstimator().estimate(simulation.matrix)
>>> round(result.estimate) > 0
True

Package layout
--------------
* :mod:`repro.core` — the estimators (Chao92, vChao92, SWITCH, baselines).
* :mod:`repro.crowd` — workers, tasks, the vote matrix and consensus.
* :mod:`repro.data` — synthetic datasets matching the paper's evaluation.
* :mod:`repro.er` — entity-resolution similarity, blocking and heuristics.
* :mod:`repro.prioritization` — heuristic-prioritised estimation.
* :mod:`repro.streaming` — online estimation sessions over live vote streams.
* :mod:`repro.serving` — the multi-tenant serving layer: named durable
  sessions, idempotent ingestion, cached estimates, snapshot/restore.
* :mod:`repro.experiments` — the harness that regenerates every figure.
* :mod:`repro.scenarios` — the declarative scenario suite (adversarial
  crowd regimes, three-mode runner, golden trajectories).
"""

from repro.common import CLEAN, DIRTY, UNSEEN, Label
from repro.core import (
    Chao92Estimator,
    EstimateResult,
    ExtrapolationEstimator,
    NominalEstimator,
    SwitchEstimator,
    SwitchTotalErrorEstimator,
    VChao92Estimator,
    VotingEstimator,
    available_estimators,
    get_estimator,
    scaled_rmse,
)
from repro.crowd import (
    CrowdSimulator,
    ResponseMatrix,
    SimulationConfig,
    Worker,
    WorkerPool,
    WorkerProfile,
)
from repro.data import (
    AddressDatasetConfig,
    Dataset,
    PairDataset,
    ProductDatasetConfig,
    Record,
    RestaurantDatasetConfig,
    SyntheticPairConfig,
    generate_address_dataset,
    generate_product_dataset,
    generate_restaurant_dataset,
    generate_synthetic_pairs,
)
from repro.er import CrowdERPipeline, HeuristicBand
from repro.prioritization import EpsilonGreedyPrioritizer
from repro.streaming import (
    DirectorySessionStore,
    EstimationService,
    MemorySessionStore,
    SessionSnapshot,
    SessionStore,
    StreamingSession,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # labels
    "DIRTY",
    "CLEAN",
    "UNSEEN",
    "Label",
    # core estimators
    "EstimateResult",
    "NominalEstimator",
    "VotingEstimator",
    "Chao92Estimator",
    "VChao92Estimator",
    "ExtrapolationEstimator",
    "SwitchEstimator",
    "SwitchTotalErrorEstimator",
    "available_estimators",
    "get_estimator",
    "scaled_rmse",
    # crowd
    "ResponseMatrix",
    "Worker",
    "WorkerPool",
    "WorkerProfile",
    "CrowdSimulator",
    "SimulationConfig",
    # data
    "Record",
    "Dataset",
    "PairDataset",
    "RestaurantDatasetConfig",
    "generate_restaurant_dataset",
    "ProductDatasetConfig",
    "generate_product_dataset",
    "AddressDatasetConfig",
    "generate_address_dataset",
    "SyntheticPairConfig",
    "generate_synthetic_pairs",
    # er / prioritization
    "CrowdERPipeline",
    "HeuristicBand",
    "EpsilonGreedyPrioritizer",
    # streaming + serving
    "StreamingSession",
    "SessionSnapshot",
    "EstimationService",
    "SessionStore",
    "MemorySessionStore",
    "DirectorySessionStore",
]
