"""The streaming estimation session (online DQM).

A :class:`StreamingSession` turns the batch pipeline inside out: instead
of collecting a full :class:`~repro.crowd.response_matrix.ResponseMatrix`
and estimating afterwards, the session ingests worker responses as they
arrive — single votes or whole task columns — and keeps every registered
estimator's inputs permanently up to date through the shared
:class:`~repro.core.state.StreamingState`.

Guarantees:

* **Cost** — ingesting a column that touches ``t`` items costs O(``t``),
  independent of the number of columns already consumed;
  ``session.estimate()`` reads the maintained statistics without touching
  the vote history.
* **Equivalence** — after ingesting the first ``j`` columns of a matrix,
  every estimate is bit-identical to ``estimator.estimate(matrix, j)``
  and to the sweep engine's checkpoint ``j`` (pinned by
  ``tests/test_streaming.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.exceptions import ConfigurationError, ValidationError
from repro.common.labels import CLEAN, DIRTY, UNSEEN
from repro.core.base import EstimateResult, EstimatorProtocol
from repro.core.registry import available_estimators, get_estimator
from repro.core.state import StreamingState
from repro.crowd.response_matrix import ResponseMatrix

#: On-disk snapshot format version; bump when the layout changes.
SNAPSHOT_FORMAT_VERSION = 1

#: File names inside a snapshot directory.
MANIFEST_FILENAME = "manifest.json"
ARRAYS_FILENAME = "arrays.npz"


@dataclass
class SessionSnapshot:
    """A self-contained, durable image of a :class:`StreamingSession`.

    ``manifest`` is JSON-safe (what ``manifest.json`` holds); ``arrays``
    maps names to numpy arrays (what ``arrays.npz`` holds).  A snapshot is
    a *value*: restoring it any number of times yields sessions whose
    estimates — now and after any further ingestion — are bit-identical
    to a session that never stopped.

    Snapshots are produced by :meth:`StreamingSession.snapshot` and
    consumed by :meth:`StreamingSession.from_snapshot`;
    :func:`write_snapshot` / :func:`read_snapshot` move them to and from
    disk.
    """

    manifest: Dict[str, object]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def format_version(self) -> int:
        """The snapshot format version recorded in the manifest."""
        return int(self.manifest.get("format_version", -1))

    @property
    def estimator_names(self) -> List[str]:
        """Names of the estimators the snapshotted session tracked."""
        return [str(name) for name in self.manifest.get("estimators", [])]

    def copy(self) -> "SessionSnapshot":
        """A deep-enough copy: fresh manifest tree and fresh arrays."""
        return SessionSnapshot(
            manifest=json.loads(json.dumps(self.manifest)),
            arrays={key: value.copy() for key, value in self.arrays.items()},
        )


def write_snapshot(snapshot: SessionSnapshot, directory: Union[str, Path]) -> Path:
    """Persist ``snapshot`` into ``directory`` (created if needed).

    Layout: ``manifest.json`` (sorted keys, so snapshots of identical
    sessions are byte-identical and diff-friendly) plus ``arrays.npz``.
    Returns the directory path.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / MANIFEST_FILENAME).write_text(
        json.dumps(snapshot.manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    with open(path / ARRAYS_FILENAME, "wb") as handle:
        np.savez(handle, **snapshot.arrays)
    return path


def read_snapshot(directory: Union[str, Path]) -> SessionSnapshot:
    """Load a snapshot previously written by :func:`write_snapshot`.

    Raises ``ConfigurationError`` when the directory is not a snapshot or
    carries an unsupported format version.
    """
    path = Path(directory)
    manifest_path = path / MANIFEST_FILENAME
    arrays_path = path / ARRAYS_FILENAME
    if not manifest_path.exists() or not arrays_path.exists():
        raise ConfigurationError(
            f"{path} is not a session snapshot (expected {MANIFEST_FILENAME} "
            f"and {ARRAYS_FILENAME})"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    snapshot = SessionSnapshot(manifest=manifest)
    with np.load(arrays_path) as archive:
        snapshot.arrays = {key: archive[key].copy() for key in archive.files}
    if snapshot.format_version != SNAPSHOT_FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot format version {snapshot.format_version!r} "
            f"in {path} (this build reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    return snapshot


class StreamingSession:
    """Incremental estimation over a live stream of worker responses.

    Parameters
    ----------
    item_ids:
        The ids of the ``N`` candidate items, fixed for the session
        (votes are addressed by item id, as in
        :class:`~repro.crowd.response_matrix.ResponseMatrix`).
    estimators:
        Estimator instances or registry names to evaluate.  Defaults to
        every registered estimator.
    keep_votes:
        Retain the raw vote columns (sparsely, O(votes) memory) so
        :meth:`matrix` can materialise the equivalent
        :class:`ResponseMatrix` (needed for estimate-only third-party
        estimators, and handy for auditing).  Disable to run in O(state)
        memory; fallback estimators then raise ``ConfigurationError``.

    Examples
    --------
    >>> session = StreamingSession([0, 1, 2], estimators=["voting", "chao92"])
    >>> session.add_column({0: 1, 1: 0}, worker_id=7)
    0
    >>> sorted(session.estimate())
    ['chao92', 'voting']
    """

    def __init__(
        self,
        item_ids: Sequence[int],
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
        *,
        keep_votes: bool = True,
    ) -> None:
        self._state = StreamingState(item_ids)
        instances = [
            get_estimator(e) if isinstance(e, str) else e
            for e in (available_estimators() if estimators is None else estimators)
        ]
        if estimators is None:
            # Several registry keys may alias one estimator name (tests and
            # user code register variants); the implicit "track everything"
            # default keeps the first instance per name.
            unique: Dict[str, EstimatorProtocol] = {}
            for instance in instances:
                unique.setdefault(instance.name, instance)
            instances = list(unique.values())
        self.estimators: List[EstimatorProtocol] = instances
        if not self.estimators:
            raise ConfigurationError("at least one estimator is required")
        seen = [est.name for est in self.estimators]
        if len(set(seen)) != len(seen):
            raise ConfigurationError(f"estimator names must be unique, got {seen}")
        self._keep_votes = bool(keep_votes)
        self._columns: List[Tuple[np.ndarray, np.ndarray]] = []
        self._column_workers: List[int] = []
        self._matrix_cache: Optional[ResponseMatrix] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def replay(
        cls,
        matrix: ResponseMatrix,
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
        **kwargs,
    ) -> "StreamingSession":
        """Build a session and feed it every column of a collected matrix.

        The streaming analogue of batch estimation over ``matrix`` —
        useful for tests, demos and for resuming a session from an
        archived matrix.
        """
        session = cls(matrix.item_ids, estimators, **kwargs)
        session.extend_from(matrix)
        return session

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> SessionSnapshot:
        """Capture the whole session as a durable :class:`SessionSnapshot`.

        Everything needed to continue exactly where the session stopped is
        included: the live :class:`~repro.core.state.StreamingState` with
        its incremental trackers, the estimator names, and — when
        ``keep_votes=True`` — the retained vote columns, so the restored
        session can still materialise :meth:`matrix` and serve batch
        fallbacks.  Estimators are recorded *by name* and re-resolved from
        the registry at restore time; pass instances to
        :meth:`from_snapshot` for estimators that are not registered.
        """
        arrays, state_meta = self._state.to_arrays()
        manifest: Dict[str, object] = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "kind": "repro.streaming.StreamingSession",
            "num_items": int(self.num_items),
            "num_columns": int(self.num_columns),
            "total_votes": int(self.total_votes),
            "keep_votes": bool(self._keep_votes),
            "estimators": [est.name for est in self.estimators],
            "state": state_meta,
        }
        if self._keep_votes:
            offsets = np.zeros(len(self._columns) + 1, dtype=np.int64)
            for index, (rows, _) in enumerate(self._columns):
                offsets[index + 1] = offsets[index] + rows.size
            arrays["column_offsets"] = offsets
            arrays["column_rows"] = (
                np.concatenate([rows for rows, _ in self._columns])
                if self._columns
                else np.zeros(0, dtype=np.intp)
            ).astype(np.int64)
            arrays["column_values"] = (
                np.concatenate([values for _, values in self._columns])
                if self._columns
                else np.zeros(0, dtype=np.int8)
            )
            arrays["column_workers"] = np.asarray(self._column_workers, dtype=np.int64)
        return SessionSnapshot(manifest=manifest, arrays=arrays)

    @classmethod
    def from_snapshot(
        cls,
        snapshot: SessionSnapshot,
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
    ) -> "StreamingSession":
        """Rebuild a session from a :class:`SessionSnapshot`.

        Parameters
        ----------
        snapshot:
            A snapshot from :meth:`snapshot` (or :func:`read_snapshot`).
        estimators:
            Override the snapshotted estimator set.  By default the
            recorded names are resolved through the registry; an
            unresolvable name raises ``ConfigurationError`` telling you to
            pass instances explicitly.
        """
        if snapshot.format_version != SNAPSHOT_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported snapshot format version {snapshot.format_version!r} "
                f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
            )
        if estimators is None:
            names = snapshot.estimator_names
            try:
                estimators = [get_estimator(name) for name in names]
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"cannot restore session estimators {names!r} from the "
                    f"registry ({error}); pass estimator instances via "
                    "from_snapshot(..., estimators=...)"
                ) from None
        state = StreamingState.from_arrays(snapshot.arrays, snapshot.manifest["state"])
        keep_votes = bool(snapshot.manifest.get("keep_votes", True))
        session = cls(state.item_ids, estimators, keep_votes=keep_votes)
        session._state = state
        if keep_votes:
            arrays = snapshot.arrays
            offsets = np.asarray(arrays["column_offsets"], dtype=np.int64)
            rows = np.asarray(arrays["column_rows"], dtype=np.intp)
            values = np.asarray(arrays["column_values"], dtype=np.int8)
            if offsets.size != state.num_columns + 1:
                raise ValidationError(
                    "snapshot column offsets do not match the state's column count"
                )
            session._columns = [
                (rows[offsets[i] : offsets[i + 1]].copy(), values[offsets[i] : offsets[i + 1]].copy())
                for i in range(offsets.size - 1)
            ]
            session._column_workers = [
                int(worker) for worker in np.asarray(arrays["column_workers"])
            ]
            if len(session._column_workers) != state.num_columns:
                raise ValidationError(
                    "snapshot column workers do not match the state's column count"
                )
        return session

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    @property
    def num_items(self) -> int:
        """``N`` — the number of candidate items."""
        return self._state.num_items

    @property
    def num_columns(self) -> int:
        """Number of worker-task columns ingested so far."""
        return self._state.num_columns

    @property
    def total_votes(self) -> int:
        """Total number of votes ingested so far."""
        return self._state.total_votes

    @property
    def state(self) -> StreamingState:
        """The live estimation state (read it, don't mutate it)."""
        return self._state

    def add_column(self, votes: Mapping[int, int], worker_id: Optional[int] = None) -> int:
        """Ingest one worker-task column.

        Parameters
        ----------
        votes:
            Mapping from item id to vote (``DIRTY`` or ``CLEAN``).  Items
            not present are UNSEEN for this column.
        worker_id:
            Identifier of the worker; defaults to the column index.

        Returns
        -------
        int
            The index of the ingested column.
        """
        rows = []
        values = []
        for item_id, vote in votes.items():
            if vote not in (DIRTY, CLEAN):
                raise ValidationError(
                    f"votes must be DIRTY ({DIRTY}) or CLEAN ({CLEAN}); "
                    f"got {vote!r} for item {item_id}"
                )
            rows.append(self._state.row_index(item_id))
            values.append(int(vote))
        index = self._state.num_columns
        if self._keep_votes:
            self._columns.append(
                (np.asarray(rows, dtype=np.intp), np.asarray(values, dtype=np.int8))
            )
            self._column_workers.append(int(worker_id) if worker_id is not None else index)
            self._matrix_cache = None
        self._state.apply_column(rows, values)
        return index

    def add_columns(
        self,
        columns: Sequence[Mapping[int, int]],
        worker_ids: Optional[Sequence[Optional[int]]] = None,
    ) -> int:
        """Ingest a batch of task columns in order; returns the count.

        The single entry point shared by live serving ingestion and
        write-ahead-log replay (:mod:`repro.streaming.wal`): both paths
        make exactly these ``add_column`` calls, which is what makes a
        replayed session bit-identical to the live one.
        """
        if worker_ids is not None and len(worker_ids) != len(columns):
            raise ValidationError(
                f"worker_ids length {len(worker_ids)} does not match "
                f"{len(columns)} column(s)"
            )
        for index, votes in enumerate(columns):
            self.add_column(
                votes, worker_ids[index] if worker_ids is not None else None
            )
        return len(columns)

    def add_vote(self, item_id: int, vote: int, worker_id: Optional[int] = None) -> int:
        """Ingest a single vote as its own one-item task column.

        Returns the index of the column it created.
        """
        return self.add_column({item_id: vote}, worker_id)

    def extend_from(self, matrix: ResponseMatrix, start: int = 0) -> int:
        """Ingest every column of ``matrix`` from ``start`` onwards.

        The matrix must be over the same item ids in the same order.
        Returns the number of columns ingested.
        """
        if matrix.item_ids != self._state.item_ids:
            raise ValidationError("matrix item ids do not match the session's items")
        workers = matrix.column_workers
        for column in range(start, matrix.num_columns):
            self.add_column(matrix.column_votes(column), workers[column])
        return matrix.num_columns - start

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #
    def estimate(
        self, name: Optional[str] = None
    ) -> Union[EstimateResult, Dict[str, EstimateResult]]:
        """Current estimates from everything ingested so far.

        Parameters
        ----------
        name:
            Return only the named estimator's result; ``None`` returns a
            ``{name: EstimateResult}`` dict over every session estimator.

        Estimators implementing ``estimate_state`` read the live state in
        O(statistics); estimate-only third-party estimators fall back to
        a batch evaluation of the materialised matrix (requires
        ``keep_votes=True``).
        """
        if name is not None:
            for estimator in self.estimators:
                if estimator.name == name:
                    return self._evaluate(estimator)
            raise ConfigurationError(
                f"unknown session estimator {name!r}; "
                f"available: {sorted(est.name for est in self.estimators)}"
            )
        return {est.name: self._evaluate(est) for est in self.estimators}

    def _evaluate(self, estimator: EstimatorProtocol) -> EstimateResult:
        estimate_state = getattr(estimator, "estimate_state", None)
        if estimate_state is not None:
            return estimate_state(self._state)
        if not self._keep_votes:
            raise ConfigurationError(
                f"estimator {estimator.name!r} has no estimate_state method and "
                "the session was created with keep_votes=False, so the batch "
                "fallback has no matrix to evaluate"
            )
        return estimator.estimate(self.matrix())

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def matrix(self) -> ResponseMatrix:
        """Materialise the ingested stream as a :class:`ResponseMatrix`.

        Requires ``keep_votes=True``.  The result is cached until the next
        ingested column; mutating it does not affect the session.
        """
        if not self._keep_votes:
            raise ConfigurationError("the session was created with keep_votes=False")
        if self._matrix_cache is None:
            votes = np.full((self.num_items, len(self._columns)), UNSEEN, dtype=np.int8)
            for index, (rows, values) in enumerate(self._columns):
                votes[rows, index] = values
            self._matrix_cache = ResponseMatrix.from_array(
                votes,
                item_ids=self._state.item_ids,
                worker_ids=self._column_workers,
            )
        return self._matrix_cache

    def progress(self) -> Dict[str, float]:
        """One-line summary of the stream consumed so far."""
        state = self._state
        return {
            "num_columns": float(state.num_columns),
            "total_votes": float(state.total_votes),
            "nominal_count": float(state.nominal_count()),
            "majority_count": float(state.majority_count()),
            "observed_switches": float(state.switch_stats().num_switches),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"StreamingSession(num_items={self.num_items}, "
            f"num_columns={self.num_columns}, "
            f"estimators={[est.name for est in self.estimators]})"
        )
