"""Online estimation sessions over a live stream of worker responses.

The paper's use case is inherently online: a data-cleaning session
consumes crowd responses task by task while the analyst watches the
quality estimate converge.  :class:`StreamingSession` is that loop as a
first-class object — votes go in one task (or one vote) at a time, and
``session.estimate()`` returns the current estimate of every registered
estimator without ever rescanning the history, bit-identical to what the
batch sweep engine would compute on the same prefix.

On top of the single session sits the serving layer
(:mod:`repro.streaming.serving`, aliased as :mod:`repro.serving`):
:class:`EstimationService` hosts many named sessions with idempotent
batched ingestion, cached estimates, LRU eviction and durable
snapshot/restore through a :class:`SessionStore`
(:mod:`repro.streaming.store`).
"""

from repro.streaming.serving import EstimationService, IngestResult
from repro.streaming.session import (
    SNAPSHOT_FORMAT_VERSION,
    SessionSnapshot,
    StreamingSession,
    read_snapshot,
    write_snapshot,
)
from repro.streaming.store import (
    DirectorySessionStore,
    MemorySessionStore,
    SessionStore,
    check_session_name,
)

__all__ = [
    "StreamingSession",
    "SessionSnapshot",
    "SNAPSHOT_FORMAT_VERSION",
    "read_snapshot",
    "write_snapshot",
    "EstimationService",
    "IngestResult",
    "SessionStore",
    "MemorySessionStore",
    "DirectorySessionStore",
    "check_session_name",
]
