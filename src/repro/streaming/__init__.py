"""Online estimation sessions over a live stream of worker responses.

The paper's use case is inherently online: a data-cleaning session
consumes crowd responses task by task while the analyst watches the
quality estimate converge.  :class:`StreamingSession` is that loop as a
first-class object — votes go in one task (or one vote) at a time, and
``session.estimate()`` returns the current estimate of every registered
estimator without ever rescanning the history, bit-identical to what the
batch sweep engine would compute on the same prefix.
"""

from repro.streaming.session import StreamingSession

__all__ = ["StreamingSession"]
