"""Online estimation sessions over a live stream of worker responses.

The paper's use case is inherently online: a data-cleaning session
consumes crowd responses task by task while the analyst watches the
quality estimate converge.  :class:`StreamingSession` is that loop as a
first-class object — votes go in one task (or one vote) at a time, and
``session.estimate()`` returns the current estimate of every registered
estimator without ever rescanning the history, bit-identical to what the
batch sweep engine would compute on the same prefix.

On top of the single session sits the serving layer
(:mod:`repro.streaming.serving`, aliased as :mod:`repro.serving`):
:class:`EstimationService` hosts many named sessions with idempotent
batched ingestion, cached estimates, LRU eviction and durable
snapshot/restore through a :class:`SessionStore`
(:mod:`repro.streaming.store`).  On a directory store, persistence is
log-structured: ingests append O(batch) records to a per-session
write-ahead log (:mod:`repro.streaming.wal`) and compaction folds the
log into a fresh snapshot.  :class:`ShardedEstimationService` partitions
sessions across N such services by session-key hash.
"""

from repro.streaming.serving import (
    DEFAULT_COMPACT_BYTES,
    EstimateReport,
    EstimationService,
    IngestResult,
    ShardedEstimationService,
    ShardUnavailableError,
    reconcile_shard_manifest,
    replay_batch_record,
    shard_index,
)
from repro.streaming.session import (
    SNAPSHOT_FORMAT_VERSION,
    SessionSnapshot,
    StreamingSession,
    read_snapshot,
    write_snapshot,
)
from repro.streaming.store import (
    DirectorySessionStore,
    MemorySessionStore,
    SessionStore,
    StoreCorruptionError,
    UnknownSessionError,
    check_session_name,
)
from repro.streaming.wal import (
    WAL_FORMAT_VERSION,
    BatchRecord,
    CreateRecord,
    SessionLog,
)

__all__ = [
    "StreamingSession",
    "SessionSnapshot",
    "SNAPSHOT_FORMAT_VERSION",
    "read_snapshot",
    "write_snapshot",
    "EstimationService",
    "ShardedEstimationService",
    "IngestResult",
    "EstimateReport",
    "SessionStore",
    "MemorySessionStore",
    "DirectorySessionStore",
    "UnknownSessionError",
    "StoreCorruptionError",
    "check_session_name",
    "SessionLog",
    "CreateRecord",
    "BatchRecord",
    "WAL_FORMAT_VERSION",
    "DEFAULT_COMPACT_BYTES",
    "replay_batch_record",
    "shard_index",
    "ShardUnavailableError",
    "reconcile_shard_manifest",
]
