"""Multi-tenant serving façade over streaming estimation sessions.

The paper's use case is operational: a data-cleaning pipeline
continuously asks "how many undetected errors remain?" while crowd votes
trickle in.  :class:`~repro.streaming.StreamingSession` answers that for
one in-process session; :class:`EstimationService` turns it into a
serving layer that hosts **many named sessions** behind one façade, with
the robustness features a long-running deployment needs:

* **Named sessions** — ``create_session`` / ``ingest`` / ``estimates``
  address sessions by name; unknown names fail with the available ones
  listed.
* **Idempotent ingestion** — each ingest batch may carry a
  ``(source, sequence)`` pair; a batch whose sequence does not advance
  its source's high-water mark is a **no-op**, so at-least-once delivery
  (retrying loaders, replayed queues) cannot double-count votes.
* **Cached estimates** — ``estimates`` recomputes only when the
  session's :class:`~repro.core.state.StreamingState` version (which
  folds in the :class:`~repro.core.fstatistics.IncrementalFingerprint`
  mutation counter) has moved; a dashboard polling an idle session costs
  O(1) per poll.
* **Durability** — ``snapshot`` / ``restore`` round sessions through the
  versioned npz + JSON snapshot codec and a pluggable
  :class:`~repro.streaming.store.SessionStore`; a restored session's
  estimates are bit-identical to one that never stopped.
* **Bounded memory** — with ``max_active`` set, the least-recently-used
  live sessions are transparently evicted to the store and revived on
  next touch.
* **Thread safety** — ingestion into one session is serialised by a
  per-session lock; different sessions proceed concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Union

from repro.common.exceptions import ConfigurationError, ValidationError
from repro.common.labels import CLEAN, DIRTY
from repro.common.validation import check_int
from repro.core.base import EstimateResult, EstimatorProtocol
from repro.streaming.session import SessionSnapshot, StreamingSession
from repro.streaming.store import MemorySessionStore, SessionStore, check_session_name


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one :meth:`EstimationService.ingest` call.

    Attributes
    ----------
    session:
        The session the batch addressed.
    applied:
        Number of columns actually ingested (0 for a duplicate batch).
    duplicate:
        True when the batch was dropped because its ``(source, sequence)``
        did not advance the source's high-water mark.
    num_columns / total_votes:
        Session totals *after* the call — what a client needs to decide
        whether to poll ``estimates``.
    """

    session: str
    applied: int
    duplicate: bool
    num_columns: int
    total_votes: int


class _ActiveSession:
    """A live session plus its serving bookkeeping (lock, cache, sources)."""

    __slots__ = ("session", "lock", "sources", "cache_version", "cache", "evicted")

    def __init__(
        self, session: StreamingSession, sources: Optional[Dict[str, int]] = None
    ) -> None:
        self.session = session
        self.lock = threading.RLock()
        #: per-source ingestion high-water marks (idempotency state).
        self.sources: Dict[str, int] = dict(sources or {})
        self.cache_version: Optional[tuple] = None
        self.cache: Optional[Dict[str, EstimateResult]] = None
        #: set under the service lock when the handle leaves the table; any
        #: caller that raced the eviction re-activates instead of mutating
        #: a parked session.
        self.evicted = False


class EstimationService:
    """Host many named :class:`StreamingSession`s behind one façade.

    Parameters
    ----------
    store:
        Snapshot store for durability and eviction
        (:class:`~repro.streaming.store.MemorySessionStore` by default;
        pass a :class:`~repro.streaming.store.DirectorySessionStore` to
        survive restarts).
    max_active:
        Maximum number of live in-memory sessions; beyond it the
        least-recently-used session is snapshotted to the store and
        dropped from memory.  ``None`` (default) keeps every session live.

    Examples
    --------
    >>> service = EstimationService()
    >>> _ = service.create_session("tenant-a", item_ids=[0, 1, 2], estimators=["voting"])
    >>> service.ingest("tenant-a", [{0: 1, 1: 0}], source="loader", sequence=1).applied
    1
    >>> service.ingest("tenant-a", [{0: 1, 1: 0}], source="loader", sequence=1).duplicate
    True
    >>> sorted(service.estimates("tenant-a"))
    ['voting']
    """

    def __init__(
        self,
        store: Optional[SessionStore] = None,
        *,
        max_active: Optional[int] = None,
    ) -> None:
        self._store = store if store is not None else MemorySessionStore()
        if max_active is not None:
            max_active = check_int(max_active, "max_active", minimum=1)
        self._max_active = max_active
        self._active: "OrderedDict[str, _ActiveSession]" = OrderedDict()
        self._lock = threading.Lock()
        #: tombstones of dropped names: closes the race where an accessor
        #: that loaded a snapshot just before ``drop`` would resurrect the
        #: session afterwards.  ``create_session`` clears the tombstone.
        self._dropped: Set[str] = set()
        #: serving counters (observability + the caching tests/benchmark);
        #: guarded by their own lock so concurrent handlers don't lose
        #: increments.
        self._counter_lock = threading.Lock()
        self.estimates_served = 0
        self.estimate_cache_hits = 0
        self.sessions_restored = 0
        self.sessions_evicted = 0

    def _count(self, counter: str, delta: int = 1) -> None:
        with self._counter_lock:
            setattr(self, counter, getattr(self, counter) + delta)

    # ------------------------------------------------------------------ #
    # session lifecycle
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> SessionStore:
        """The snapshot store backing eviction and durability."""
        return self._store

    def create_session(
        self,
        name: str,
        item_ids: Sequence[int],
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
        *,
        keep_votes: bool = True,
    ) -> str:
        """Create and activate a new named session; returns the name.

        Raises ``ConfigurationError`` when the name is already in use —
        live or stored — since silently rebinding a tenant's name would
        orphan its history.
        """
        check_session_name(name)
        session = StreamingSession(item_ids, estimators, keep_votes=keep_votes)
        with self._lock:
            if name in self._active or name in self._store:
                raise ConfigurationError(
                    f"session {name!r} already exists; drop it first or pick "
                    "another name"
                )
            self._dropped.discard(name)
            self._active[name] = _ActiveSession(session)
        self._enforce_limit(keep=name)
        return name

    def sessions(self) -> List[str]:
        """Every known session name — live and stored — sorted."""
        with self._lock:
            names = set(self._active)
        names.update(self._store.names())
        return sorted(names)

    def active_sessions(self) -> List[str]:
        """Names of the sessions currently live in memory (LRU order)."""
        with self._lock:
            return list(self._active)

    def drop(self, name: str) -> None:
        """Forget a session everywhere: live table and store.

        The live removal, the store delete and the tombstone are applied
        in one critical section, so an accessor racing the drop either
        sees the session fully alive or fully gone — never a store copy
        it could resurrect from.
        """
        check_session_name(name)
        with self._lock:
            handle = self._active.pop(name, None)
            if handle is not None:
                handle.evicted = True
            stored = name in self._store
            if stored:
                self._store.delete(name)
            if handle is not None or stored:
                self._dropped.add(name)
                return
        raise ConfigurationError(
            f"unknown session {name!r}; available: {self.sessions()}"
        )

    # ------------------------------------------------------------------ #
    # ingestion and estimation
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        name: str,
        columns: Sequence[Mapping[int, int]],
        *,
        worker_ids: Optional[Sequence[Optional[int]]] = None,
        source: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> IngestResult:
        """Ingest a batch of task columns into the named session.

        Parameters
        ----------
        columns:
            One ``{item_id: vote}`` mapping per task column, applied in
            order.
        worker_ids:
            Optional worker id per column (aligned with ``columns``).
        source, sequence:
            Idempotency pair.  When given (always together), the batch is
            applied only if ``sequence`` is strictly greater than the last
            sequence accepted from ``source``; otherwise the whole batch
            is skipped and ``duplicate=True`` is reported.  Retried
            deliveries of the same batch are therefore no-ops.

        The batch is atomic with respect to validation: every column is
        checked (known item ids, DIRTY/CLEAN votes) before any column is
        applied, so a rejected batch leaves the session untouched and can
        be fixed and redelivered under the same sequence number.
        """
        if (source is None) != (sequence is None):
            raise ValidationError(
                "source and sequence must be provided together (the pair is "
                "what makes retried deliveries idempotent)"
            )
        if sequence is not None:
            sequence = check_int(sequence, "sequence", minimum=0)
        if worker_ids is not None and len(worker_ids) != len(columns):
            raise ValidationError(
                f"worker_ids length {len(worker_ids)} does not match "
                f"{len(columns)} column(s)"
            )
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue  # lost a race with eviction; revive and retry
                session = handle.session
                if source is not None:
                    last = handle.sources.get(source)
                    if last is not None and sequence <= last:
                        return IngestResult(
                            session=name,
                            applied=0,
                            duplicate=True,
                            num_columns=session.num_columns,
                            total_votes=session.total_votes,
                        )
                # Validate the whole batch before applying any of it: a
                # half-applied batch whose high-water mark never advanced
                # would be double-counted by the (legitimate) retry.
                state = session.state
                for votes in columns:
                    for item_id, vote in votes.items():
                        state.row_index(item_id)  # raises on unknown ids
                        if vote not in (DIRTY, CLEAN):
                            raise ValidationError(
                                f"votes must be DIRTY ({DIRTY}) or CLEAN "
                                f"({CLEAN}); got {vote!r} for item {item_id}"
                            )
                for index, votes in enumerate(columns):
                    worker = worker_ids[index] if worker_ids is not None else None
                    session.add_column(votes, worker)
                if source is not None:
                    handle.sources[source] = sequence
                return IngestResult(
                    session=name,
                    applied=len(columns),
                    duplicate=False,
                    num_columns=session.num_columns,
                    total_votes=session.total_votes,
                )

    def estimates(self, name: str) -> Dict[str, EstimateResult]:
        """Current estimates of the named session, cached between mutations.

        The cache key is the session state's mutation version; polling an
        idle session returns the previously computed ``EstimateResult``
        objects without touching an estimator.
        """
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue
                self._count("estimates_served")
                version = handle.session.state.version
                if handle.cache is not None and handle.cache_version == version:
                    self._count("estimate_cache_hits")
                    return dict(handle.cache)
                results = handle.session.estimate()
                handle.cache = results
                handle.cache_version = version
                return dict(results)

    def progress(self, name: str) -> Dict[str, float]:
        """The named session's stream-progress summary."""
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue
                return handle.session.progress()

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    def snapshot(self, name: str) -> SessionSnapshot:
        """Snapshot the named session and persist it to the store.

        The returned snapshot carries the serving-layer idempotency state
        (per-source sequence high-water marks) in its manifest, so a
        restored session keeps rejecting the duplicates its predecessor
        already saw.  The session stays live.
        """
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue
                snapshot = self._snapshot_locked(handle)
                self._store.save(name, snapshot)
                return snapshot

    def restore(
        self,
        name: str,
        snapshot: Optional[SessionSnapshot] = None,
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
    ) -> Dict[str, float]:
        """Activate a session from a snapshot (explicit or from the store).

        With ``snapshot=None`` the store's copy is loaded — which is also
        what every other accessor does transparently, so an explicit
        ``restore`` is only needed to import a foreign snapshot or to
        override the estimator set.  Any live session under the name is
        replaced.  Returns the restored session's progress summary.
        """
        check_session_name(name)
        if snapshot is None:
            snapshot = self._store.load(name)
        session = StreamingSession.from_snapshot(snapshot, estimators)
        sources = self._serving_sources(snapshot)
        with self._lock:
            previous = self._active.pop(name, None)
            if previous is not None:
                previous.evicted = True
            self._dropped.discard(name)
            self._active[name] = _ActiveSession(session, sources)
        self._count("sessions_restored")
        self._enforce_limit(keep=name)
        return session.progress()

    def evict(self, name: Optional[str] = None) -> Optional[str]:
        """Park a live session in the store and free its memory.

        ``name=None`` picks the least-recently-used live session.  Returns
        the evicted name, or ``None`` when nothing is live.  The session
        remains addressable: the next touch restores it from the store.
        """
        with self._lock:
            if name is None:
                name = next(
                    (
                        key
                        for key, candidate in self._active.items()
                        if not candidate.evicted
                    ),
                    None,
                )
                if name is None:
                    return None
            handle = self._active.get(name)
            if handle is None or handle.evicted:
                raise ConfigurationError(
                    f"session {name!r} is not live; active: {list(self._active)}"
                )
        self._evict_handle(name, handle)
        return name

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _snapshot_locked(self, handle: _ActiveSession) -> SessionSnapshot:
        """Build a snapshot (caller holds the handle lock)."""
        snapshot = handle.session.snapshot()
        snapshot.manifest["serving"] = {
            "sources": {key: int(value) for key, value in handle.sources.items()}
        }
        return snapshot

    @staticmethod
    def _serving_sources(snapshot: SessionSnapshot) -> Dict[str, int]:
        serving = snapshot.manifest.get("serving", {})
        sources = serving.get("sources", {}) if isinstance(serving, dict) else {}
        return {str(key): int(value) for key, value in sources.items()}

    def _activate(self, name: str) -> _ActiveSession:
        """Return the live handle for ``name``, reviving from the store.

        Every touch moves the session to the most-recently-used end of
        the table; activation beyond ``max_active`` evicts from the LRU
        end.
        """
        check_session_name(name)
        with self._lock:
            handle = self._active.get(name)
            if handle is not None and not handle.evicted:
                self._active.move_to_end(name)
                return handle
            if handle is not None:
                # An evicted husk awaiting table removal; its snapshot is
                # already durable (the evicted flag is set only after the
                # store save completes), so reviving from the store is safe.
                del self._active[name]
        # Load outside the table lock: store I/O can be slow and must not
        # serialise unrelated sessions.
        try:
            snapshot = self._store.load(name)
        except ConfigurationError:
            raise ConfigurationError(
                f"unknown session {name!r}; available: {self.sessions()}"
            ) from None
        session = StreamingSession.from_snapshot(snapshot)
        sources = self._serving_sources(snapshot)
        with self._lock:
            if name in self._dropped:
                raise ConfigurationError(
                    f"unknown session {name!r}; available: {self.sessions()}"
                )
            existing = self._active.get(name)
            if existing is not None:  # someone else revived it first
                self._active.move_to_end(name)
                return existing
            handle = _ActiveSession(session, sources)
            self._active[name] = handle
        self._count("sessions_restored")
        self._enforce_limit(keep=name)
        return handle

    def _enforce_limit(self, keep: str) -> None:
        """Evict LRU sessions until at most ``max_active`` are live.

        Runs *outside* the table lock: each victim is picked under the
        lock, then snapshotted and saved while holding only its own
        session lock, so a slow store write never stalls unrelated
        sessions.
        """
        if self._max_active is None:
            return
        while True:
            with self._lock:
                live = [
                    key
                    for key, handle in self._active.items()
                    if not handle.evicted
                ]
                if len(live) <= self._max_active:
                    return
                victim = next((key for key in live if key != keep), None)
                if victim is None:
                    return
                handle = self._active[victim]
            self._evict_handle(victim, handle)

    def _evict_handle(self, name: str, handle: _ActiveSession) -> None:
        """Snapshot ``handle`` into the store, then drop it from the table.

        The save happens under the handle's own lock (so in-flight
        ingestion is included and later mutation is impossible — any
        writer acquiring the lock afterwards sees ``evicted`` and
        re-activates); the ``evicted`` flag flips only once the snapshot
        is durable, so a concurrent revival always loads complete state.
        """
        with handle.lock:
            if not handle.evicted:
                self._store.save(name, self._snapshot_locked(handle))
                handle.evicted = True
                self._count("sessions_evicted")
        with self._lock:
            if self._active.get(name) is handle:
                del self._active[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"EstimationService(active={len(self._active)}, "
            f"stored={len(self._store)}, max_active={self._max_active})"
        )
