"""Multi-tenant serving façade over streaming estimation sessions.

The paper's use case is operational: a data-cleaning pipeline
continuously asks "how many undetected errors remain?" while crowd votes
trickle in.  :class:`~repro.streaming.StreamingSession` answers that for
one in-process session; :class:`EstimationService` turns it into a
serving layer that hosts **many named sessions** behind one façade, with
the robustness features a long-running deployment needs:

* **Named sessions** — ``create_session`` / ``ingest`` / ``estimates``
  address sessions by name; unknown names fail with the available ones
  listed.
* **Idempotent ingestion** — each ingest batch may carry a
  ``(source, sequence)`` pair; a batch whose sequence does not advance
  its source's high-water mark is a **no-op**, so at-least-once delivery
  (retrying loaders, replayed queues) cannot double-count votes.
* **Cached estimates** — ``estimates`` recomputes only when the
  session's :class:`~repro.core.state.StreamingState` version (which
  folds in the :class:`~repro.core.fstatistics.IncrementalFingerprint`
  mutation counter) has moved; a dashboard polling an idle session costs
  O(1) per poll.
* **Durability** — ``snapshot`` / ``restore`` round sessions through the
  versioned npz + JSON snapshot codec and a pluggable
  :class:`~repro.streaming.store.SessionStore`; a restored session's
  estimates are bit-identical to one that never stopped.
* **Log-structured ingestion** — on a store with a write-ahead log
  (:class:`~repro.streaming.store.DirectorySessionStore`), every applied
  batch is appended as one O(batch) log record *before* it mutates the
  in-memory session, so the store copy is never behind the live one;
  recovery is last snapshot + log replay, and a size-triggered
  **compaction** folds the log into a fresh snapshot.  A snapshot-only
  store (:class:`~repro.streaming.store.MemorySessionStore`) is the
  degenerate no-WAL case with exactly the pre-WAL behaviour.
* **Bounded memory** — with ``max_active`` set, the least-recently-used
  live sessions are transparently evicted to the store and revived on
  next touch (free under a WAL, since the store already holds every
  applied batch).
* **Thread safety** — ingestion into one session is serialised by a
  per-session lock; different sessions proceed concurrently.

For deployments whose throughput outgrows one service,
:class:`ShardedEstimationService` partitions sessions across N
single-process shards by session-key hash behind the same façade —
``N=1`` is exactly one :class:`EstimationService`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.common.exceptions import ConfigurationError, ValidationError
from repro.common.labels import CLEAN, DIRTY
from repro.common.validation import check_int
from repro.core.base import EstimateResult, EstimatorProtocol
from repro.streaming.session import SessionSnapshot, StreamingSession
from repro.streaming.store import (
    DirectorySessionStore,
    MemorySessionStore,
    SessionStore,
    StoreCorruptionError,  # noqa: F401 - re-exported for error-mapping callers
    UnknownSessionError,
    check_session_name,
)
from repro.streaming.wal import BatchRecord, CreateRecord, check_batch_record

#: Compact a session once its write-ahead log grows past this size.
DEFAULT_COMPACT_BYTES = 1 << 20


class ShardUnavailableError(ConfigurationError):
    """A shard's backing worker cannot serve requests right now.

    Raised by process-sharded deployments when the worker process owning
    a session's shard has died mid-request, exceeded its per-request
    timeout, or exhausted its restart budget.  The session's durable
    state (snapshot + write-ahead log) is intact — retrying after the
    worker recovers, with the same idempotency ``(source, sequence)``
    pair, is always safe.  Maps to HTTP 500 with kind
    ``"shard_unavailable"``.
    """


def replay_batch_record(
    session: StreamingSession, sources: Dict[str, int], record: BatchRecord
) -> bool:
    """Apply one logged batch to ``session``; returns False for duplicates.

    The replay twin of :meth:`EstimationService.ingest`: the same
    ``(source, sequence)`` high-water-mark check guards it, so a
    re-appended duplicate batch record is a no-op on recovery exactly as
    its delivery was live.
    """
    if record.source is not None:
        last = sources.get(record.source)
        if last is not None and record.sequence <= last:
            return False
    session.add_columns(record.column_mappings(), record.worker_ids)
    if record.source is not None:
        sources[record.source] = record.sequence
    return True


@dataclass(frozen=True)
class EstimateReport:
    """One :meth:`EstimationService.estimate_report` read, with its version.

    Attributes
    ----------
    session:
        The session the read addressed.
    version:
        The state's mutation version at read time — ``(num_columns,
        total_votes, fingerprint_version)``.  Two reads with equal
        versions saw the identical state, which is what lets a wire
        client assert "that retried batch really was a no-op" without
        comparing every estimate.
    results:
        ``{estimator name: EstimateResult}``, exactly what
        :meth:`EstimationService.estimates` returns (and served from the
        same version-keyed cache).
    """

    session: str
    version: Tuple[int, int, int]
    results: Dict[str, EstimateResult]


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one :meth:`EstimationService.ingest` call.

    Attributes
    ----------
    session:
        The session the batch addressed.
    applied:
        Number of columns actually ingested (0 for a duplicate batch).
    duplicate:
        True when the batch was dropped because its ``(source, sequence)``
        did not advance the source's high-water mark.
    num_columns / total_votes:
        Session totals *after* the call — what a client needs to decide
        whether to poll ``estimates``.
    """

    session: str
    applied: int
    duplicate: bool
    num_columns: int
    total_votes: int


class _ActiveSession:
    """A live session plus its serving bookkeeping (lock, cache, sources)."""

    __slots__ = ("session", "lock", "sources", "cache_version", "cache", "evicted")

    def __init__(
        self, session: StreamingSession, sources: Optional[Dict[str, int]] = None
    ) -> None:
        self.session = session
        self.lock = threading.RLock()
        #: per-source ingestion high-water marks (idempotency state).
        self.sources: Dict[str, int] = dict(sources or {})
        self.cache_version: Optional[tuple] = None
        self.cache: Optional[Dict[str, EstimateResult]] = None
        #: set under the service lock when the handle leaves the table; any
        #: caller that raced the eviction re-activates instead of mutating
        #: a parked session.
        self.evicted = False


class EstimationService:
    """Host many named :class:`StreamingSession`s behind one façade.

    Parameters
    ----------
    store:
        Snapshot store for durability and eviction
        (:class:`~repro.streaming.store.MemorySessionStore` by default;
        pass a :class:`~repro.streaming.store.DirectorySessionStore` to
        survive restarts).
    max_active:
        Maximum number of live in-memory sessions; beyond it the
        least-recently-used session is snapshotted to the store and
        dropped from memory.  ``None`` (default) keeps every session live.
    wal:
        ``"auto"`` (default) uses the store's write-ahead log when it has
        one (``store.supports_wal``); ``True`` requires one; ``False``
        forces the snapshot-only behaviour even on a log-structured
        store.  With a WAL, creation and every applied ingest batch are
        durable before the call returns, in O(batch).
    compact_after_bytes:
        Fold the log into a fresh snapshot once it grows past this many
        bytes (checked after each applied batch).  ``None`` disables
        automatic compaction; :meth:`compact` always remains available.

    Examples
    --------
    >>> service = EstimationService()
    >>> _ = service.create_session("tenant-a", item_ids=[0, 1, 2], estimators=["voting"])
    >>> service.ingest("tenant-a", [{0: 1, 1: 0}], source="loader", sequence=1).applied
    1
    >>> service.ingest("tenant-a", [{0: 1, 1: 0}], source="loader", sequence=1).duplicate
    True
    >>> sorted(service.estimates("tenant-a"))
    ['voting']
    """

    def __init__(
        self,
        store: Optional[SessionStore] = None,
        *,
        max_active: Optional[int] = None,
        wal: Union[str, bool] = "auto",
        compact_after_bytes: Optional[int] = DEFAULT_COMPACT_BYTES,
    ) -> None:
        self._store = store if store is not None else MemorySessionStore()
        if max_active is not None:
            max_active = check_int(max_active, "max_active", minimum=1)
        self._max_active = max_active
        if wal == "auto":
            self._wal = bool(getattr(self._store, "supports_wal", False))
        elif isinstance(wal, bool):
            if wal and not getattr(self._store, "supports_wal", False):
                raise ConfigurationError(
                    f"wal=True requires a log-structured store; "
                    f"{type(self._store).__name__} has no write-ahead log"
                )
            self._wal = wal
        else:
            raise ValidationError(f"wal must be 'auto', True or False, got {wal!r}")
        if compact_after_bytes is not None:
            compact_after_bytes = check_int(
                compact_after_bytes, "compact_after_bytes", minimum=1
            )
        self._compact_after_bytes = compact_after_bytes
        self._active: "OrderedDict[str, _ActiveSession]" = OrderedDict()
        self._lock = threading.Lock()
        #: tombstones of dropped names: closes the race where an accessor
        #: that loaded a snapshot just before ``drop`` would resurrect the
        #: session afterwards.  ``create_session`` clears the tombstone.
        self._dropped: Set[str] = set()
        #: serving counters (observability + the caching tests/benchmark);
        #: guarded by their own lock so concurrent handlers don't lose
        #: increments.
        self._counter_lock = threading.Lock()
        self.estimates_served = 0
        self.estimate_cache_hits = 0
        self.sessions_restored = 0
        self.sessions_evicted = 0

    def _count(self, counter: str, delta: int = 1) -> None:
        with self._counter_lock:
            setattr(self, counter, getattr(self, counter) + delta)

    # ------------------------------------------------------------------ #
    # session lifecycle
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> SessionStore:
        """The snapshot store backing eviction and durability."""
        return self._store

    @property
    def wal_enabled(self) -> bool:
        """Whether ingestion lands in the store's write-ahead log."""
        return self._wal

    def create_session(
        self,
        name: str,
        item_ids: Sequence[int],
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
        *,
        keep_votes: bool = True,
    ) -> str:
        """Create and activate a new named session; returns the name.

        Raises ``ConfigurationError`` when the name is already in use —
        live or stored — since silently rebinding a tenant's name would
        orphan its history.

        On a write-ahead-log store the creation itself is durable before
        the call returns — as one O(1) create record, not a snapshot.
        """
        check_session_name(name)
        session = StreamingSession(item_ids, estimators, keep_votes=keep_votes)
        with self._lock:
            if name in self._active or name in self._store:
                raise ConfigurationError(
                    f"session {name!r} already exists; drop it first or pick "
                    "another name"
                )
            self._dropped.discard(name)
            self._active[name] = _ActiveSession(session)
        if self._wal:
            try:
                self._store.append(
                    name,
                    CreateRecord(
                        item_ids=tuple(int(item) for item in session.state.item_ids),
                        estimators=tuple(est.name for est in session.estimators),
                        keep_votes=keep_votes,
                    ),
                )
            except Exception:
                with self._lock:
                    self._active.pop(name, None)
                raise
        self._enforce_limit(keep=name)
        return name

    def sessions(self) -> List[str]:
        """Every known session name — live and stored — sorted."""
        with self._lock:
            names = set(self._active)
        names.update(self._store.names())
        return sorted(names)

    def active_sessions(self) -> List[str]:
        """Names of the sessions currently live in memory (LRU order)."""
        with self._lock:
            return list(self._active)

    def drop(self, name: str) -> None:
        """Forget a session everywhere: live table and store.

        The live removal, the store delete and the tombstone are applied
        in one critical section, so an accessor racing the drop either
        sees the session fully alive or fully gone — never a store copy
        it could resurrect from.
        """
        check_session_name(name)
        with self._lock:
            handle = self._active.pop(name, None)
            if handle is not None:
                handle.evicted = True
            stored = name in self._store
            if stored:
                self._store.delete(name)
            if handle is not None or stored:
                self._dropped.add(name)
                return
        raise UnknownSessionError(
            f"unknown session {name!r}; available: {self.sessions()}"
        )

    # ------------------------------------------------------------------ #
    # ingestion and estimation
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        name: str,
        columns: Sequence[Mapping[int, int]],
        *,
        worker_ids: Optional[Sequence[Optional[int]]] = None,
        source: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> IngestResult:
        """Ingest a batch of task columns into the named session.

        Parameters
        ----------
        columns:
            One ``{item_id: vote}`` mapping per task column, applied in
            order.
        worker_ids:
            Optional worker id per column (aligned with ``columns``).
        source, sequence:
            Idempotency pair.  When given (always together), the batch is
            applied only if ``sequence`` is strictly greater than the last
            sequence accepted from ``source``; otherwise the whole batch
            is skipped and ``duplicate=True`` is reported.  Retried
            deliveries of the same batch are therefore no-ops.

        The batch is atomic with respect to validation: every column is
        checked (known item ids, DIRTY/CLEAN votes) before any column is
        applied, so a rejected batch leaves the session untouched and can
        be fixed and redelivered under the same sequence number.

        On a write-ahead-log store the validated batch is appended to the
        session's log — one O(batch) record — *before* it mutates the
        in-memory session, so an applied batch is always durable and the
        store never lags the live state.  Once the log outgrows
        ``compact_after_bytes`` it is folded into a fresh snapshot.
        """
        if (source is None) != (sequence is None):
            raise ValidationError(
                "source and sequence must be provided together (the pair is "
                "what makes retried deliveries idempotent)"
            )
        if sequence is not None:
            sequence = check_int(sequence, "sequence", minimum=0)
        if worker_ids is not None and len(worker_ids) != len(columns):
            raise ValidationError(
                f"worker_ids length {len(worker_ids)} does not match "
                f"{len(columns)} column(s)"
            )
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue  # lost a race with eviction; revive and retry
                session = handle.session
                if source is not None:
                    last = handle.sources.get(source)
                    if last is not None and sequence <= last:
                        return IngestResult(
                            session=name,
                            applied=0,
                            duplicate=True,
                            num_columns=session.num_columns,
                            total_votes=session.total_votes,
                        )
                # Validate the whole batch before applying any of it: a
                # half-applied batch whose high-water mark never advanced
                # would be double-counted by the (legitimate) retry.
                state = session.state
                for votes in columns:
                    for item_id, vote in votes.items():
                        state.row_index(item_id)  # raises on unknown ids
                        if vote not in (DIRTY, CLEAN):
                            raise ValidationError(
                                f"votes must be DIRTY ({DIRTY}) or CLEAN "
                                f"({CLEAN}); got {vote!r} for item {item_id}"
                            )
                if self._wal:
                    # Log first, apply second: a crash between the two
                    # replays the record on recovery, so the durable state
                    # is never behind what the client saw acknowledged.
                    self._store.append(
                        name,
                        BatchRecord.from_columns(
                            columns, worker_ids, source, sequence
                        ),
                    )
                session.add_columns(columns, worker_ids)
                if source is not None:
                    handle.sources[source] = sequence
                if (
                    self._wal
                    and self._compact_after_bytes is not None
                    and self._store.log_size(name) >= self._compact_after_bytes
                ):
                    self._store.save(name, self._snapshot_locked(handle))
                return IngestResult(
                    session=name,
                    applied=len(columns),
                    duplicate=False,
                    num_columns=session.num_columns,
                    total_votes=session.total_votes,
                )

    def estimates(self, name: str) -> Dict[str, EstimateResult]:
        """Current estimates of the named session, cached between mutations.

        The cache key is the session state's mutation version; polling an
        idle session returns the previously computed ``EstimateResult``
        objects without touching an estimator.
        """
        return self.estimate_report(name).results

    def estimate_report(self, name: str) -> EstimateReport:
        """Like :meth:`estimates`, plus the state version the read saw.

        Version and results are captured under the session lock, so the
        pair is consistent — the wire contract a retrying client needs to
        verify its duplicate delivery left the session untouched.
        """
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue
                self._count("estimates_served")
                version = handle.session.state.version
                if handle.cache is not None and handle.cache_version == version:
                    self._count("estimate_cache_hits")
                    return EstimateReport(name, version, dict(handle.cache))
                results = handle.session.estimate()
                handle.cache = results
                handle.cache_version = version
                return EstimateReport(name, version, dict(results))

    def progress(self, name: str) -> Dict[str, float]:
        """The named session's stream-progress summary."""
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue
                return handle.session.progress()

    def collusion_report(
        self, name: str, *, threshold: float = 0.9, min_overlap: int = 5
    ):
        """Pairwise-agreement collusion diagnostics for the session.

        Materialises the session's retained votes and runs
        :func:`repro.core.descriptive.collusion_report` over them — the
        detection-side answer to the cross-session clique regimes.
        Requires the session to have been created with
        ``keep_votes=True`` (the materialisation raises
        ``ConfigurationError`` otherwise, which the HTTP layer maps to a
        400).
        """
        from repro.core.descriptive import collusion_report as _collusion_report

        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue
                matrix = handle.session.matrix()
                return _collusion_report(
                    matrix, threshold=threshold, min_overlap=min_overlap
                )

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    def snapshot(self, name: str) -> SessionSnapshot:
        """Snapshot the named session and persist it to the store.

        The returned snapshot carries the serving-layer idempotency state
        (per-source sequence high-water marks) in its manifest, so a
        restored session keeps rejecting the duplicates its predecessor
        already saw.  The session stays live.

        On a write-ahead-log store this **is** compaction: the store
        folds the session's log into the fresh snapshot and restarts the
        log empty (see :meth:`compact`).
        """
        while True:
            handle = self._activate(name)
            with handle.lock:
                if handle.evicted:
                    continue
                snapshot = self._snapshot_locked(handle)
                self._store.save(name, snapshot)
                return snapshot

    def compact(self, name: str) -> SessionSnapshot:
        """Fold the named session's log into a fresh snapshot now.

        Recovery cost is proportional to the log tail, so a periodic
        compaction (or the automatic ``compact_after_bytes`` trigger)
        keeps reopen latency flat.  On a snapshot-only store this is
        simply :meth:`snapshot`.  Returns the compacted snapshot.
        """
        return self.snapshot(name)

    def restore(
        self,
        name: str,
        snapshot: Optional[SessionSnapshot] = None,
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
    ) -> Dict[str, float]:
        """Activate a session from a snapshot (explicit or from the store).

        With ``snapshot=None`` the store's copy is loaded — which is also
        what every other accessor does transparently, so an explicit
        ``restore`` is only needed to import a foreign snapshot or to
        override the estimator set.  Any live session under the name is
        replaced.  Returns the restored session's progress summary.
        """
        check_session_name(name)
        if snapshot is None:
            session, sources = self._recover_session(name, estimators)
        else:
            session = StreamingSession.from_snapshot(snapshot, estimators)
            sources = self._serving_sources(snapshot)
        with self._lock:
            previous = self._active.pop(name, None)
            if previous is not None:
                previous.evicted = True
            self._dropped.discard(name)
            handle = _ActiveSession(session, sources)
            self._active[name] = handle
        if self._wal and snapshot is not None:
            # An imported foreign snapshot exists nowhere in the store;
            # persist it so the WAL invariant (store ≥ live state) holds
            # and a later eviction can stay write-free.
            with handle.lock:
                self._store.save(name, self._snapshot_locked(handle))
        self._count("sessions_restored")
        self._enforce_limit(keep=name)
        return session.progress()

    def evict(self, name: Optional[str] = None) -> Optional[str]:
        """Park a live session in the store and free its memory.

        ``name=None`` picks the least-recently-used live session.  Returns
        the evicted name, or ``None`` when nothing is live.  The session
        remains addressable: the next touch restores it from the store.
        """
        with self._lock:
            if name is None:
                name = next(
                    (
                        key
                        for key, candidate in self._active.items()
                        if not candidate.evicted
                    ),
                    None,
                )
                if name is None:
                    return None
            handle = self._active.get(name)
            if handle is None or handle.evicted:
                raise ConfigurationError(
                    f"session {name!r} is not live; active: {list(self._active)}"
                )
        self._evict_handle(name, handle)
        return name

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _snapshot_locked(self, handle: _ActiveSession) -> SessionSnapshot:
        """Build a snapshot (caller holds the handle lock)."""
        snapshot = handle.session.snapshot()
        snapshot.manifest["serving"] = {
            "sources": {key: int(value) for key, value in handle.sources.items()}
        }
        return snapshot

    @staticmethod
    def _serving_sources(snapshot: SessionSnapshot) -> Dict[str, int]:
        serving = snapshot.manifest.get("serving", {})
        sources = serving.get("sources", {}) if isinstance(serving, dict) else {}
        return {str(key): int(value) for key, value in sources.items()}

    def _recover_session(
        self,
        name: str,
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
    ) -> Tuple[StreamingSession, Dict[str, int]]:
        """Rebuild ``name`` from the store: base snapshot + log replay.

        On a snapshot-only store this degenerates to plain snapshot
        restoration (the record list is empty).  On a log-structured
        store the base may even be absent — then the log's leading
        create record builds the empty session — and every batch record
        replays through the same idempotency gate live ingestion uses,
        so duplicate records are no-ops and the recovered state is
        bit-identical to the pre-crash live session.
        """
        snapshot, records = self._store.recovery(name)
        if snapshot is not None:
            session = StreamingSession.from_snapshot(snapshot, estimators)
            sources = self._serving_sources(snapshot)
        else:
            head = records[0] if records else None
            if not isinstance(head, CreateRecord):
                raise ConfigurationError(
                    f"stored session {name!r} has neither a snapshot nor a "
                    "leading create record — its log is not a valid "
                    "ingestion history"
                )
            session = StreamingSession(
                list(head.item_ids),
                list(head.estimators) if estimators is None else estimators,
                keep_votes=head.keep_votes,
            )
            sources = {}
            records = records[1:]
        for record in records:
            replay_batch_record(session, sources, check_batch_record(record))
        return session, sources

    def _activate(self, name: str) -> _ActiveSession:
        """Return the live handle for ``name``, reviving from the store.

        Every touch moves the session to the most-recently-used end of
        the table; activation beyond ``max_active`` evicts from the LRU
        end.
        """
        check_session_name(name)
        with self._lock:
            handle = self._active.get(name)
            if handle is not None and not handle.evicted:
                self._active.move_to_end(name)
                return handle
            if handle is not None:
                # An evicted husk awaiting table removal; its state is
                # already durable (snapshot saved before the evicted flag
                # flips, or every batch logged under a WAL), so reviving
                # from the store is safe.
                del self._active[name]
        # Recover outside the table lock: store I/O can be slow and must
        # not serialise unrelated sessions.
        try:
            session, sources = self._recover_session(name)
        except UnknownSessionError:
            raise UnknownSessionError(
                f"unknown session {name!r}; available: {self.sessions()}"
            ) from None
        with self._lock:
            if name in self._dropped:
                raise UnknownSessionError(
                    f"unknown session {name!r}; available: {self.sessions()}"
                )
            existing = self._active.get(name)
            if existing is not None:  # someone else revived it first
                self._active.move_to_end(name)
                return existing
            handle = _ActiveSession(session, sources)
            self._active[name] = handle
        self._count("sessions_restored")
        self._enforce_limit(keep=name)
        return handle

    def _enforce_limit(self, keep: str) -> None:
        """Evict LRU sessions until at most ``max_active`` are live.

        Runs *outside* the table lock: each victim is picked under the
        lock, then snapshotted and saved while holding only its own
        session lock, so a slow store write never stalls unrelated
        sessions.
        """
        if self._max_active is None:
            return
        while True:
            with self._lock:
                live = [
                    key
                    for key, handle in self._active.items()
                    if not handle.evicted
                ]
                if len(live) <= self._max_active:
                    return
                victim = next((key for key in live if key != keep), None)
                if victim is None:
                    return
                handle = self._active[victim]
            self._evict_handle(victim, handle)

    def _evict_handle(self, name: str, handle: _ActiveSession) -> None:
        """Snapshot ``handle`` into the store, then drop it from the table.

        The save happens under the handle's own lock (so in-flight
        ingestion is included and later mutation is impossible — any
        writer acquiring the lock afterwards sees ``evicted`` and
        re-activates); the ``evicted`` flag flips only once the snapshot
        is durable, so a concurrent revival always loads complete state.

        Under a write-ahead log the save is skipped entirely: every
        mutation was already logged before it was applied, so the store
        copy is complete and eviction is a free in-memory drop — what
        lets ``max_active`` bound memory over very large session counts
        without turning eviction into an O(state) write.
        """
        with handle.lock:
            if not handle.evicted:
                if not self._wal:
                    self._store.save(name, self._snapshot_locked(handle))
                handle.evicted = True
                self._count("sessions_evicted")
        with self._lock:
            if self._active.get(name) is handle:
                del self._active[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"EstimationService(active={len(self._active)}, "
            f"stored={len(self._store)}, max_active={self._max_active})"
        )


#: Root manifest of a sharded serving directory.
SHARD_MANIFEST_FILENAME = "shards.json"

#: Sharded-root manifest format version; bump when the layout changes.
SHARD_MANIFEST_VERSION = 1


def reconcile_shard_manifest(root: Path, num_shards: Optional[int]) -> int:
    """Validate ``num_shards`` against ``root``'s manifest, or write one.

    The single source of truth for a sharded root's shard count, shared
    by every deployment shape (in-process :class:`ShardedEstimationService`
    and the process-per-shard parent): an existing ``shards.json`` wins —
    reopening with a different requested count raises, since resharding
    would silently strand every session whose hash moved — and a fresh
    root records the requested count (default 1) atomically.
    Returns the authoritative shard count.
    """
    manifest_path = root / SHARD_MANIFEST_FILENAME
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"unreadable shard manifest {manifest_path}: {error}"
            ) from error
        if not isinstance(manifest, dict):
            raise ConfigurationError(
                f"unreadable shard manifest {manifest_path}: expected a "
                f"JSON object, got {type(manifest).__name__}"
            )
        if manifest.get("format_version") != SHARD_MANIFEST_VERSION:
            raise ConfigurationError(
                f"unsupported shard manifest version in {manifest_path}: "
                f"{manifest.get('format_version')!r}"
            )
        recorded = int(manifest["num_shards"])
        if num_shards is not None and num_shards != recorded:
            raise ConfigurationError(
                f"shard count mismatch for {root}: the root was "
                f"created with {recorded} shard(s) but {num_shards} were "
                "requested — resharding would strand sessions whose hash "
                "moved; open with the recorded count (or omit num_shards)"
            )
        return recorded
    resolved = 1 if num_shards is None else num_shards
    root.mkdir(parents=True, exist_ok=True)
    descriptor, staging = tempfile.mkstemp(
        prefix=f".{SHARD_MANIFEST_FILENAME}.tmp-", dir=root
    )
    with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "format_version": SHARD_MANIFEST_VERSION,
                "num_shards": int(resolved),
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    os.replace(staging, manifest_path)
    return resolved


def shard_index(name: str, num_shards: int) -> int:
    """The shard owning session ``name`` (stable across processes).

    A keyed hash (not Python's salted ``hash``) so every process — and
    every future reopen of the same root — routes a name to the same
    shard.
    """
    digest = hashlib.sha256(check_session_name(name).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % check_int(
        num_shards, "num_shards", minimum=1
    )


class ShardedEstimationService:
    """Partition sessions across N single-process service shards.

    Each shard is a full :class:`EstimationService` over its own store;
    a session lives on exactly one shard, chosen by a stable hash of its
    name (:func:`shard_index`).  The façade is the same as a single
    service — ``N=1`` **is** exactly today's service, shard 0 — which
    makes the split shard-ready: moving a shard to its own process (or
    machine) changes where the shard runs, not what callers see.

    Parameters
    ----------
    root:
        Directory holding one :class:`DirectorySessionStore` per shard
        (``<root>/shard-<i>/``) plus a ``shards.json`` manifest
        recording the shard count.  Reopening a root with a different
        ``num_shards`` raises — resharding would silently strand every
        session whose hash moved.  ``None`` serves from per-shard
        in-memory stores instead.
    num_shards:
        Shard count.  ``None`` reads the manifest (new in-memory or new
        on-disk roots default to 1).
    max_active:
        Per-shard live-session bound, passed to each shard's service.
    wal / compact_after_bytes:
        Passed to each shard's service (see :class:`EstimationService`).
    store_factory:
        Build shard ``i``'s store (overrides ``root``/memory defaults);
        mostly for tests.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        *,
        num_shards: Optional[int] = None,
        max_active: Optional[int] = None,
        wal: Union[str, bool] = "auto",
        compact_after_bytes: Optional[int] = DEFAULT_COMPACT_BYTES,
        store_factory: Optional[Callable[[int], SessionStore]] = None,
    ) -> None:
        self.root = None if root is None else Path(root)
        if self.root is not None:
            num_shards = reconcile_shard_manifest(self.root, num_shards)
        elif num_shards is None:
            num_shards = 1
        self._num_shards = check_int(num_shards, "num_shards", minimum=1)
        if store_factory is None:
            if self.root is None:
                store_factory = lambda index: MemorySessionStore()  # noqa: E731
            else:
                store_factory = lambda index: DirectorySessionStore(  # noqa: E731
                    self.root / f"shard-{index:04d}"
                )
        self._shards: Tuple[EstimationService, ...] = tuple(
            EstimationService(
                store_factory(index),
                max_active=max_active,
                wal=wal,
                compact_after_bytes=compact_after_bytes,
            )
            for index in range(self._num_shards)
        )

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """The shard count recorded for this root."""
        return self._num_shards

    @property
    def shards(self) -> Tuple[EstimationService, ...]:
        """The per-shard services, by shard index."""
        return self._shards

    def shard_of(self, name: str) -> int:
        """The shard index owning session ``name``."""
        return shard_index(name, self._num_shards)

    @property
    def wal_enabled(self) -> bool:
        """True when every shard ingests through a write-ahead log."""
        return all(shard.wal_enabled for shard in self._shards)

    def _shard(self, name: str) -> EstimationService:
        return self._shards[self.shard_of(name)]

    # ------------------------------------------------------------------ #
    # the EstimationService façade, routed by session-name hash
    # ------------------------------------------------------------------ #
    def create_session(
        self,
        name: str,
        item_ids: Sequence[int],
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
        *,
        keep_votes: bool = True,
    ) -> str:
        """Create the session on its owning shard; returns the name."""
        return self._shard(name).create_session(
            name, item_ids, estimators, keep_votes=keep_votes
        )

    def ingest(
        self,
        name: str,
        columns: Sequence[Mapping[int, int]],
        *,
        worker_ids: Optional[Sequence[Optional[int]]] = None,
        source: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> IngestResult:
        """Ingest into the owning shard (same contract as one service)."""
        return self._shard(name).ingest(
            name, columns, worker_ids=worker_ids, source=source, sequence=sequence
        )

    def estimates(self, name: str) -> Dict[str, EstimateResult]:
        """Current (cached) estimates from the owning shard."""
        return self._shard(name).estimates(name)

    def estimate_report(self, name: str) -> EstimateReport:
        """Versioned estimate read from the owning shard."""
        return self._shard(name).estimate_report(name)

    def progress(self, name: str) -> Dict[str, float]:
        """The named session's stream-progress summary."""
        return self._shard(name).progress(name)

    def collusion_report(
        self, name: str, *, threshold: float = 0.9, min_overlap: int = 5
    ):
        """Collusion diagnostics from the owning shard."""
        return self._shard(name).collusion_report(
            name, threshold=threshold, min_overlap=min_overlap
        )

    def snapshot(self, name: str) -> SessionSnapshot:
        """Snapshot (compact) the session on its owning shard."""
        return self._shard(name).snapshot(name)

    def compact(self, name: str) -> SessionSnapshot:
        """Fold the session's log into a fresh snapshot on its shard."""
        return self._shard(name).compact(name)

    def restore(
        self,
        name: str,
        snapshot: Optional[SessionSnapshot] = None,
        estimators: Optional[Sequence[Union[str, EstimatorProtocol]]] = None,
    ) -> Dict[str, float]:
        """Restore on the owning shard (hash routing keeps imports findable)."""
        return self._shard(name).restore(name, snapshot, estimators)

    def drop(self, name: str) -> None:
        """Forget the session on its owning shard."""
        self._shard(name).drop(name)

    def evict(self, name: Optional[str] = None) -> Optional[str]:
        """Park a live session; ``None`` picks the first shard's LRU victim."""
        if name is not None:
            return self._shard(name).evict(name)
        for shard in self._shards:
            victim = shard.evict()
            if victim is not None:
                return victim
        return None

    def sessions(self) -> List[str]:
        """Every known session name across all shards, sorted."""
        names: Set[str] = set()
        for shard in self._shards:
            names.update(shard.sessions())
        return sorted(names)

    def active_sessions(self) -> List[str]:
        """Live in-memory session names across shards (shard order)."""
        return [name for shard in self._shards for name in shard.active_sessions()]

    # ------------------------------------------------------------------ #
    # aggregated serving counters
    # ------------------------------------------------------------------ #
    @property
    def estimates_served(self) -> int:
        return sum(shard.estimates_served for shard in self._shards)

    @property
    def estimate_cache_hits(self) -> int:
        return sum(shard.estimate_cache_hits for shard in self._shards)

    @property
    def sessions_restored(self) -> int:
        return sum(shard.sessions_restored for shard in self._shards)

    @property
    def sessions_evicted(self) -> int:
        return sum(shard.sessions_evicted for shard in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardedEstimationService(num_shards={self._num_shards}, "
            f"root={str(self.root) if self.root else None!r})"
        )
