"""Durable session storage behind the serving layer.

A :class:`SessionStore` keeps :class:`~repro.streaming.session.SessionSnapshot`
values by session name.  The serving façade
(:class:`~repro.streaming.serving.EstimationService`) uses one to park
evicted sessions and to survive restarts; the CLI uses a
:class:`DirectorySessionStore` so `repro session` invocations compose into
one long-lived session across processes.

Two backends cover the operational spectrum:

* :class:`MemorySessionStore` — a process-local dict; zero I/O, the
  default for tests and single-process serving.
* :class:`DirectorySessionStore` — one snapshot directory per session
  under a root path (``<root>/<name>/manifest.json`` + ``arrays.npz``),
  written atomically-enough for the single-writer serving model (a fresh
  temporary directory is renamed into place).

Both backends return independent snapshot copies: mutating a loaded
snapshot (or the session restored from it) never corrupts the stored
bytes.
"""

from __future__ import annotations

import re
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Union

from repro.common.exceptions import ConfigurationError, ValidationError
from repro.streaming.session import (
    SessionSnapshot,
    read_snapshot,
    write_snapshot,
)

#: Session names double as directory names, so keep them filesystem-safe.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def check_session_name(name: str) -> str:
    """Validate a session name (shared by every store and the service).

    Names must start with an alphanumeric and use only alphanumerics,
    dots, underscores and dashes (max 128 chars) — safe as dictionary
    keys, directory names and CLI arguments alike.
    """
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ValidationError(
            f"invalid session name {name!r}: use alphanumerics, '.', '_' or "
            "'-', starting with an alphanumeric (max 128 characters)"
        )
    return name


class SessionStore:
    """Interface of a snapshot store (see module docstring).

    Subclasses implement :meth:`save`, :meth:`load`, :meth:`delete` and
    :meth:`names`; the convenience dunders are shared.
    """

    def save(self, name: str, snapshot: SessionSnapshot) -> None:
        """Persist ``snapshot`` under ``name`` (overwriting any previous)."""
        raise NotImplementedError

    def load(self, name: str) -> SessionSnapshot:
        """Return an independent copy of the snapshot stored under ``name``.

        Raises ``ConfigurationError`` (listing available names) when the
        session is unknown.
        """
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove the snapshot stored under ``name`` (missing is an error)."""
        raise NotImplementedError

    def names(self) -> List[str]:
        """Stored session names, sorted."""
        raise NotImplementedError

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def __len__(self) -> int:
        return len(self.names())

    def _unknown(self, name: str) -> ConfigurationError:
        return ConfigurationError(
            f"no stored session named {name!r}; available: {self.names()}"
        )


class MemorySessionStore(SessionStore):
    """In-process snapshot store (the default serving backend)."""

    def __init__(self) -> None:
        self._snapshots: Dict[str, SessionSnapshot] = {}

    def save(self, name: str, snapshot: SessionSnapshot) -> None:
        """Store a defensive copy of ``snapshot`` under ``name``."""
        self._snapshots[check_session_name(name)] = snapshot.copy()

    def load(self, name: str) -> SessionSnapshot:
        """Return a fresh copy of the stored snapshot."""
        check_session_name(name)
        try:
            return self._snapshots[name].copy()
        except KeyError:
            raise self._unknown(name) from None

    def delete(self, name: str) -> None:
        """Drop the stored snapshot."""
        check_session_name(name)
        if self._snapshots.pop(name, None) is None:
            raise self._unknown(name)

    def names(self) -> List[str]:
        """Stored session names, sorted."""
        return sorted(self._snapshots)


class DirectorySessionStore(SessionStore):
    """On-disk snapshot store: one snapshot directory per session name.

    Parameters
    ----------
    root:
        Directory holding the per-session snapshot directories; created
        on first save.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, name: str) -> Path:
        return self.root / check_session_name(name)

    def save(self, name: str, snapshot: SessionSnapshot) -> None:
        """Write the snapshot, replacing any previous one atomically-enough.

        The snapshot is written to a temporary sibling directory first and
        renamed into place, so a crash mid-write never leaves a torn
        snapshot under the session's name.
        """
        target = self._path(name)
        self.root.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(prefix=f".{name}.staging-", dir=self.root)
        )
        try:
            write_snapshot(snapshot, staging)
            if target.exists():
                shutil.rmtree(target)
            staging.rename(target)
        except Exception:
            shutil.rmtree(staging, ignore_errors=True)
            raise

    def load(self, name: str) -> SessionSnapshot:
        """Read the stored snapshot from disk."""
        path = self._path(name)
        if not path.is_dir():
            raise self._unknown(name)
        return read_snapshot(path)

    def delete(self, name: str) -> None:
        """Remove the session's snapshot directory."""
        path = self._path(name)
        if not path.is_dir():
            raise self._unknown(name)
        shutil.rmtree(path)

    def names(self) -> List[str]:
        """Stored session names, sorted (non-snapshot directories ignored)."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
            and _NAME_PATTERN.match(entry.name)
            and (entry / "manifest.json").exists()
        )
