"""Durable session storage behind the serving layer.

A :class:`SessionStore` keeps :class:`~repro.streaming.session.SessionSnapshot`
values by session name.  The serving façade
(:class:`~repro.streaming.serving.EstimationService`) uses one to park
evicted sessions and to survive restarts; the CLI uses a
:class:`DirectorySessionStore` so `repro session` invocations compose into
one long-lived session across processes.

Two backends cover the operational spectrum:

* :class:`MemorySessionStore` — a process-local dict; zero I/O, the
  default for tests and single-process serving.  It is the degenerate
  no-WAL case: ``supports_wal`` is False and recovery is just a load.
* :class:`DirectorySessionStore` — a **log-structured** store, one
  directory per session under a root path.  Each session directory
  holds at most one snapshot *generation* (``gen-<n>/manifest.json`` +
  ``arrays.npz``) plus the write-ahead log paired with it
  (``wal-<n>.log``, see :mod:`repro.streaming.wal`).  ``append`` is the
  hot path — O(batch) per durable ingest; ``save`` is **compaction** —
  it writes a fresh snapshot as generation ``n+1``, starts an empty
  ``wal-<n+1>.log`` and removes the old generation.  Recovery reads the
  newest *valid* generation and replays its paired log, so a kill at
  any point of a compaction leaves a recoverable store: either the old
  generation+log pair is still intact, or the new snapshot is already
  in place (a new generation is only visible after an atomic rename).

Both backends return independent snapshot copies: mutating a loaded
snapshot (or the session restored from it) never corrupts the stored
bytes.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

try:  # pragma: no cover - always present on the POSIX targets we support
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: no advisory locks
    fcntl = None

from repro.common.exceptions import ConfigurationError, ValidationError
from repro.streaming.session import (
    ARRAYS_FILENAME,
    MANIFEST_FILENAME,
    SessionSnapshot,
    read_snapshot,
    write_snapshot,
)
from repro.streaming.wal import SessionLog, WalRecord

#: Session names double as directory names, so keep them filesystem-safe.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

#: Snapshot generations and their paired logs inside a session directory.
_GENERATION_PATTERN = re.compile(r"^gen-(\d{8})$")
_WAL_PATTERN = re.compile(r"^wal-(\d{8})\.log$")

#: Staging leftovers a crashed writer can orphan (swept on store open).
_STALE_PATTERN = re.compile(r"^\..*\.(?:tmp|staging)-")


class UnknownSessionError(ConfigurationError):
    """The requested session is not in the store.

    A distinct subclass so the serving layer can map "unknown name" to
    its own error message while letting genuine corruption reports
    (also ``ConfigurationError``) surface unchanged.
    """


class StoreCorruptionError(ConfigurationError):
    """The stored bytes for a session are unreadable.

    Distinct from :class:`UnknownSessionError` (the session exists but
    cannot be rebuilt) and from plain configuration mistakes: the HTTP
    layer maps it to a server-side 500 where unknown names are a 404 and
    bad requests a 400.
    """


def check_session_name(name: str) -> str:
    """Validate a session name (shared by every store and the service).

    Names must start with an alphanumeric and use only alphanumerics,
    dots, underscores and dashes (max 128 chars) — safe as dictionary
    keys, directory names and CLI arguments alike.
    """
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ValidationError(
            f"invalid session name {name!r}: use alphanumerics, '.', '_' or "
            "'-', starting with an alphanumeric (max 128 characters)"
        )
    return name


class SessionStore:
    """Interface of a snapshot store (see module docstring).

    Subclasses implement :meth:`save`, :meth:`load`, :meth:`delete` and
    :meth:`names`; the convenience dunders are shared.  Log-structured
    backends additionally set :attr:`supports_wal` and implement
    :meth:`append` / :meth:`recovery` / :meth:`log_size`; the defaults
    here make every plain snapshot store the degenerate no-WAL case.
    """

    #: Whether :meth:`append` lands records in a durable write-ahead log.
    supports_wal = False

    def save(self, name: str, snapshot: SessionSnapshot) -> None:
        """Persist ``snapshot`` under ``name`` (overwriting any previous).

        On a log-structured store this is **compaction**: the snapshot
        becomes the new base generation and the session's log restarts
        empty.
        """
        raise NotImplementedError

    def load(self, name: str) -> SessionSnapshot:
        """Return an independent copy of the snapshot stored under ``name``.

        Raises ``ConfigurationError`` (listing available names) when the
        session is unknown.
        """
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove the snapshot stored under ``name`` (missing is an error)."""
        raise NotImplementedError

    def names(self) -> List[str]:
        """Stored session names, sorted."""
        raise NotImplementedError

    def append(self, name: str, record: WalRecord) -> None:
        """Append one durable log record for ``name`` (O(record)).

        Only meaningful when :attr:`supports_wal` is True.
        """
        raise ConfigurationError(
            f"{type(self).__name__} has no write-ahead log; use a "
            "log-structured store (DirectorySessionStore) or snapshot "
            "explicitly"
        )

    def recovery(self, name: str) -> Tuple[Optional[SessionSnapshot], List[WalRecord]]:
        """Everything needed to rebuild ``name``: base snapshot + log tail.

        The default (no-WAL) implementation returns ``(load(name), [])``.
        Log-structured stores may return ``(None, records)`` for a
        session whose whole history still lives in its log.
        """
        return self.load(name), []

    def log_size(self, name: str) -> int:
        """Bytes in the session's active log (0 on snapshot-only stores)."""
        return 0

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def __len__(self) -> int:
        return len(self.names())

    def _unknown(self, name: str) -> UnknownSessionError:
        names = self.names()
        if len(names) > 10:
            # A 100k-session store should not render 100k names into one
            # error message.
            listed = f"{names[:10]} … ({len(names)} total)"
        else:
            listed = f"{names}"
        return UnknownSessionError(
            f"no stored session named {name!r}; available: {listed}"
        )


class MemorySessionStore(SessionStore):
    """In-process snapshot store (the default serving backend)."""

    def __init__(self) -> None:
        self._snapshots: Dict[str, SessionSnapshot] = {}

    def save(self, name: str, snapshot: SessionSnapshot) -> None:
        """Store a defensive copy of ``snapshot`` under ``name``."""
        self._snapshots[check_session_name(name)] = snapshot.copy()

    def load(self, name: str) -> SessionSnapshot:
        """Return a fresh copy of the stored snapshot."""
        check_session_name(name)
        try:
            return self._snapshots[name].copy()
        except KeyError:
            raise self._unknown(name) from None

    def delete(self, name: str) -> None:
        """Drop the stored snapshot."""
        check_session_name(name)
        if self._snapshots.pop(name, None) is None:
            raise self._unknown(name)

    def names(self) -> List[str]:
        """Stored session names, sorted."""
        return sorted(self._snapshots)


class DirectorySessionStore(SessionStore):
    """On-disk log-structured store: one directory per session name.

    Parameters
    ----------
    root:
        Directory holding the per-session directories; created on first
        write.  Stale staging leftovers from crashed writers are swept
        when the store opens.
    sync:
        Fsync the log after every append (see
        :class:`~repro.streaming.wal.SessionLog`).
    exclusive:
        Claim sole ownership of the root with an advisory ``flock`` on
        ``<root>/.lock``.  A second exclusive open of the same root —
        from any process — raises ``ConfigurationError`` instead of
        silently interleaving two writers' WAL appends.  The lock is a
        kernel lease on the open file descriptor, so it vanishes with
        the process (including ``kill -9``), which is exactly what the
        process-per-shard serving layer needs: a restarted worker can
        always reclaim its shard.  Released by :meth:`close` (or
        process exit).
    """

    supports_wal = True

    #: Name of the advisory ownership lockfile inside the root.
    LOCK_FILENAME = ".lock"

    def __init__(
        self,
        root: Union[str, Path],
        *,
        sync: bool = False,
        exclusive: bool = False,
    ) -> None:
        self.root = Path(root)
        self.sync = bool(sync)
        self._lock_descriptor: Optional[int] = None
        if exclusive:
            self._acquire_exclusive()
        self._sweep_stale_files()

    def _acquire_exclusive(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            raise ConfigurationError(
                "exclusive store ownership requires fcntl.flock, which this "
                "platform does not provide"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(
            self.root / self.LOCK_FILENAME, os.O_RDWR | os.O_CREAT, 0o644
        )
        try:
            fcntl.flock(descriptor, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(descriptor)
            raise ConfigurationError(
                f"store root {self.root} is exclusively owned by another "
                "process (stale owners release the lock automatically when "
                "they die)"
            ) from None
        self._lock_descriptor = descriptor

    @property
    def exclusive(self) -> bool:
        """Whether this store currently holds the root's ownership lock."""
        return self._lock_descriptor is not None

    def close(self) -> None:
        """Release the exclusive ownership lock, if held.  Idempotent."""
        if self._lock_descriptor is not None:
            os.close(self._lock_descriptor)
            self._lock_descriptor = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # layout helpers
    # ------------------------------------------------------------------ #
    def _path(self, name: str) -> Path:
        return self.root / check_session_name(name)

    @staticmethod
    def _generation_dir(session_dir: Path, generation: int) -> Path:
        return session_dir / f"gen-{generation:08d}"

    @staticmethod
    def _wal_path(session_dir: Path, generation: int) -> Path:
        return session_dir / f"wal-{generation:08d}.log"

    @staticmethod
    def _snapshot_complete(directory: Path) -> bool:
        return (directory / MANIFEST_FILENAME).exists() and (
            directory / ARRAYS_FILENAME
        ).exists()

    def _generations(self, session_dir: Path) -> List[int]:
        """Complete snapshot generations, ascending (legacy layout = 0)."""
        if not session_dir.is_dir():
            return []
        found = []
        if self._snapshot_complete(session_dir):
            # Pre-WAL layout: the snapshot lives directly in the session
            # directory.  It reads as generation 0 and is upgraded (and
            # removed) by the next compaction.
            found.append(0)
        for entry in session_dir.iterdir():
            match = _GENERATION_PATTERN.match(entry.name)
            if match and self._snapshot_complete(entry):
                found.append(int(match.group(1)))
        return sorted(found)

    def _wal_numbers(self, session_dir: Path) -> List[int]:
        if not session_dir.is_dir():
            return []
        return sorted(
            int(match.group(1))
            for entry in session_dir.iterdir()
            if (match := _WAL_PATTERN.match(entry.name))
        )

    def _active_generation(self, session_dir: Path) -> int:
        """The generation new appends and reads belong to.

        The newest generation wins whether it is a snapshot or a log
        (legacy pre-WAL snapshots read as generation 0, so their paired
        log is ``wal-00000000.log``); a fresh log-only session starts at
        generation 1.
        """
        numbers = self._generations(session_dir) + self._wal_numbers(session_dir)
        return max(numbers) if numbers else 1

    def _sweep_stale_files(self) -> None:
        """Remove staging leftovers a crashed writer orphaned.

        A save stages its snapshot in a dot-prefixed ``*.tmp-…`` sibling
        and renames it into place; a crash between the two leaves the
        staging directory behind.  Swept here (store open) because no
        writer can hold a stale staging path across processes.
        """
        if not self.root.is_dir():
            return
        candidates = [self.root]
        candidates.extend(
            entry
            for entry in self.root.iterdir()
            if entry.is_dir() and _NAME_PATTERN.match(entry.name)
        )
        for directory in candidates:
            for entry in directory.iterdir():
                if _STALE_PATTERN.match(entry.name):
                    if entry.is_dir():
                        shutil.rmtree(entry, ignore_errors=True)
                    else:
                        entry.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # snapshot interface (save = compaction)
    # ------------------------------------------------------------------ #
    def save(self, name: str, snapshot: SessionSnapshot) -> None:
        """Compact: write a fresh generation and restart the log empty.

        The snapshot is staged in a temporary sibling and renamed into
        place, so a kill at any point leaves either the old
        generation+log pair intact or the new generation already
        visible — never a torn snapshot.  Only after the new generation
        is durable are the previous generation, its log, and any legacy
        layout files removed.
        """
        session_dir = self._path(name)
        session_dir.mkdir(parents=True, exist_ok=True)
        old_generations = self._generations(session_dir)
        old_wals = self._wal_numbers(session_dir)
        new_generation = max(old_generations + old_wals, default=0) + 1
        staging = Path(
            tempfile.mkdtemp(
                prefix=f".gen-{new_generation:08d}.tmp-", dir=session_dir
            )
        )
        try:
            write_snapshot(snapshot, staging)
            staging.rename(self._generation_dir(session_dir, new_generation))
        except Exception:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        # The new generation is durable; start its (empty) log and only
        # then clear out the superseded generation(s).
        self._wal_path(session_dir, new_generation).touch()
        for number in old_wals:
            self._wal_path(session_dir, number).unlink(missing_ok=True)
        for generation in old_generations:
            if generation == 0:
                (session_dir / MANIFEST_FILENAME).unlink(missing_ok=True)
                (session_dir / ARRAYS_FILENAME).unlink(missing_ok=True)
            else:
                shutil.rmtree(
                    self._generation_dir(session_dir, generation),
                    ignore_errors=True,
                )

    def load(self, name: str) -> SessionSnapshot:
        """Read the stored base snapshot (the newest valid generation).

        Pending log records are *not* folded in — use :meth:`recovery`
        (or an :class:`~repro.streaming.serving.EstimationService`) to
        rebuild the live state of a session with a non-empty log.
        """
        snapshot, records = self.recovery(name)
        if snapshot is None:
            raise ConfigurationError(
                f"session {name!r} has no base snapshot yet ({len(records)} "
                "log record(s) only); open it through an EstimationService "
                "or compact it first"
            )
        return snapshot

    def delete(self, name: str) -> None:
        """Remove the session's directory (snapshot and log)."""
        path = self._path(name)
        if not path.is_dir():
            raise self._unknown(name)
        shutil.rmtree(path)

    def names(self) -> List[str]:
        """Stored session names, sorted (non-session directories ignored)."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in self.root.iterdir():
            if not entry.is_dir() or not _NAME_PATTERN.match(entry.name):
                continue
            if self._generations(entry) or self._wal_numbers(entry):
                found.append(entry.name)
        return sorted(found)

    def __contains__(self, name: str) -> bool:
        """O(one session directory) — ``names()`` would scan the store.

        The serving layer probes membership on every ``create_session``,
        so this must not degrade to O(sessions) as the store grows.
        """
        try:
            session_dir = self._path(name)
        except ValidationError:
            return False
        return bool(self._generations(session_dir) or self._wal_numbers(session_dir))

    # ------------------------------------------------------------------ #
    # write-ahead log interface
    # ------------------------------------------------------------------ #
    def append(self, name: str, record: WalRecord) -> None:
        """Append one record to the session's active log — O(record)."""
        session_dir = self._path(name)
        session_dir.mkdir(parents=True, exist_ok=True)
        generation = self._active_generation(session_dir)
        SessionLog(self._wal_path(session_dir, generation), sync=self.sync).append(
            record
        )

    def recovery(self, name: str) -> Tuple[Optional[SessionSnapshot], List[WalRecord]]:
        """The newest valid generation's snapshot plus its replayable log.

        A torn final log record (crash mid-append) is detected by its
        checksum, ignored, and truncated away so later appends extend a
        valid prefix.  A generation whose snapshot turns out unreadable
        falls back to the next older valid generation; only when no
        generation and no log survives is the session reported corrupt.
        """
        session_dir = self._path(name)
        generations = self._generations(session_dir)
        wal_numbers = self._wal_numbers(session_dir)
        if not generations and not wal_numbers:
            raise self._unknown(name)
        failure: Optional[Exception] = None
        for generation in reversed(generations):
            directory = (
                session_dir
                if generation == 0
                else self._generation_dir(session_dir, generation)
            )
            try:
                snapshot = read_snapshot(directory)
            except Exception as error:  # corrupt bytes — try the older one
                failure = error
                continue
            return snapshot, self._log_records(session_dir, generation)
        if generations:
            raise StoreCorruptionError(
                f"stored session {name!r} is corrupt: no readable snapshot "
                f"generation ({failure!r})"
            )
        # Log-only session: its whole history is the newest log.
        return None, self._log_records(session_dir, wal_numbers[-1])

    def _log_records(self, session_dir: Path, generation: int) -> List[WalRecord]:
        log = SessionLog(self._wal_path(session_dir, generation), sync=self.sync)
        records, _, torn = log.scan()
        if torn:
            log.repair()
        return records

    def log_size(self, name: str) -> int:
        """Size of the session's active log in bytes."""
        session_dir = self._path(name)
        if not session_dir.is_dir():
            return 0
        return SessionLog(
            self._wal_path(session_dir, self._active_generation(session_dir))
        ).size_bytes()
