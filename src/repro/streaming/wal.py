"""Append-only write-ahead log for streaming sessions.

The log-structured persistence path (the HTAP-style split: an
append-only update path for ingestion, snapshots only at compaction)
rests on one small primitive — a :class:`SessionLog` holding a sequence
of framed, checksummed records:

* :class:`CreateRecord` — the session's birth certificate (item ids,
  estimator names, ``keep_votes``); always the first record of a log
  that has no base snapshot yet.
* :class:`BatchRecord` — one ingested batch of task columns, carrying
  the serving layer's ``(source, sequence)`` idempotency pair so a
  duplicate record replays as a no-op.

Frame format (little-endian)::

    +------+----------+------------+------------------+
    | RWAL | u32 size | u32 crc32  | payload (size B) |
    +------+----------+------------+------------------+

The payload is canonical JSON (sorted keys, compact separators), so a
log of identical appends is byte-identical across runs.  Readers stop at
the first frame that is short, has a wrong magic, or fails its CRC —
a torn final record from a crash mid-append is therefore *ignored*, and
:meth:`SessionLog.repair` truncates it away so later appends land on a
valid prefix.  Appending a batch costs O(batch), independent of the
session's accumulated state — the whole point of the WAL path.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.common.exceptions import ConfigurationError, ValidationError

#: Log payload format version; bump when the record schema changes.
WAL_FORMAT_VERSION = 1

#: Per-record frame: magic, payload size, payload crc32.
_FRAME = struct.Struct("<4sII")
_MAGIC = b"RWAL"


@dataclass(frozen=True)
class CreateRecord:
    """The first record of a snapshotless log: how to build the session.

    Carrying creation in the log keeps ``create_session`` O(1) on the
    durable path — no snapshot is written until the first compaction.
    """

    item_ids: Tuple[int, ...]
    estimators: Tuple[str, ...]
    keep_votes: bool = True

    def payload(self) -> dict:
        return {
            "kind": "create",
            "format": WAL_FORMAT_VERSION,
            "item_ids": list(self.item_ids),
            "estimators": list(self.estimators),
            "keep_votes": bool(self.keep_votes),
        }


@dataclass(frozen=True)
class BatchRecord:
    """One durably ingested batch of task columns.

    ``columns`` preserves both item order within a column and column
    order within the batch (each column is a tuple of ``(item, vote)``
    pairs), so replaying a record drives the exact ``add_column`` calls
    the live ingest made — the precondition for bit-identical recovery.
    """

    columns: Tuple[Tuple[Tuple[int, int], ...], ...]
    worker_ids: Optional[Tuple[Optional[int], ...]] = None
    source: Optional[str] = None
    sequence: Optional[int] = None

    @classmethod
    def from_columns(
        cls,
        columns,
        worker_ids=None,
        source: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> "BatchRecord":
        """Freeze a live ingest batch (mappings in, tuples out)."""
        return cls(
            columns=tuple(
                tuple((int(item), int(vote)) for item, vote in votes.items())
                for votes in columns
            ),
            worker_ids=(
                None
                if worker_ids is None
                else tuple(
                    None if worker is None else int(worker)
                    for worker in worker_ids
                )
            ),
            source=source,
            sequence=sequence,
        )

    def column_mappings(self) -> List[dict]:
        """The batch as ``{item: vote}`` mappings, in recorded order."""
        return [dict(pairs) for pairs in self.columns]

    def payload(self) -> dict:
        return {
            "kind": "batch",
            "format": WAL_FORMAT_VERSION,
            "columns": [[[item, vote] for item, vote in pairs] for pairs in self.columns],
            "worker_ids": (
                None if self.worker_ids is None else list(self.worker_ids)
            ),
            "source": self.source,
            "sequence": self.sequence,
        }


WalRecord = Union[CreateRecord, BatchRecord]


def encode_record(record: WalRecord) -> bytes:
    """Serialise one record into its framed on-disk bytes."""
    payload = json.dumps(
        record.payload(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _FRAME.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> WalRecord:
    """Rebuild a record from a CRC-verified payload.

    A payload that passes its checksum but does not decode is a format
    problem (a future log version, not a torn write) and raises
    ``ConfigurationError`` instead of being silently skipped.
    """
    try:
        document = json.loads(payload.decode("utf-8"))
        kind = document["kind"]
        if int(document.get("format", -1)) != WAL_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported WAL record format {document.get('format')!r} "
                f"(this build reads version {WAL_FORMAT_VERSION})"
            )
        if kind == "create":
            return CreateRecord(
                item_ids=tuple(int(item) for item in document["item_ids"]),
                estimators=tuple(str(name) for name in document["estimators"]),
                keep_votes=bool(document["keep_votes"]),
            )
        if kind == "batch":
            workers = document["worker_ids"]
            return BatchRecord(
                columns=tuple(
                    tuple((int(item), int(vote)) for item, vote in pairs)
                    for pairs in document["columns"]
                ),
                worker_ids=(
                    None
                    if workers is None
                    else tuple(
                        None if worker is None else int(worker)
                        for worker in workers
                    )
                ),
                source=document["source"],
                sequence=document["sequence"],
            )
        raise ConfigurationError(f"unknown WAL record kind {kind!r}")
    except ConfigurationError:
        raise
    except Exception as error:
        raise ConfigurationError(f"undecodable WAL record: {error!r}") from error


class SessionLog:
    """One session's append-only log file.

    Parameters
    ----------
    path:
        The log file; created on first append.
    sync:
        Fsync after every append.  Off by default: records are flushed
        to the OS (surviving process crashes); turn it on to also
        survive power loss at a large throughput cost.
    """

    def __init__(self, path: Union[str, Path], *, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = bool(sync)

    def append(self, record: WalRecord) -> int:
        """Append one framed record; returns the log size in bytes after.

        O(record) — the log is opened in append mode and never rewritten.
        """
        frame = encode_record(record)
        with open(self.path, "ab") as handle:
            handle.write(frame)
            handle.flush()
            if self.sync:
                import os

                os.fsync(handle.fileno())
            return handle.tell()

    def scan(self) -> Tuple[List[WalRecord], int, bool]:
        """Read every intact record.

        Returns ``(records, valid_bytes, torn)`` where ``valid_bytes``
        is the length of the longest valid prefix and ``torn`` reports
        whether trailing bytes (a short frame, wrong magic or checksum
        mismatch — the signature of a crash mid-append) were ignored.
        """
        if not self.path.exists():
            return [], 0, False
        data = self.path.read_bytes()
        records: List[WalRecord] = []
        offset = 0
        while offset < len(data):
            header = data[offset : offset + _FRAME.size]
            if len(header) < _FRAME.size:
                break
            magic, size, checksum = _FRAME.unpack(header)
            if magic != _MAGIC:
                break
            payload = data[offset + _FRAME.size : offset + _FRAME.size + size]
            if len(payload) < size or zlib.crc32(payload) != checksum:
                break
            records.append(decode_payload(payload))
            offset += _FRAME.size + size
        return records, offset, offset != len(data)

    def records(self) -> List[WalRecord]:
        """Every intact record, ignoring any torn tail."""
        return self.scan()[0]

    def repair(self) -> bool:
        """Truncate a torn tail so future appends land on a valid prefix.

        Returns True when bytes were removed.  Safe to call on a healthy
        (or missing) log — it is a no-op then.
        """
        _, valid_bytes, torn = self.scan()
        if torn:
            with open(self.path, "ab") as handle:
                handle.truncate(valid_bytes)
        return torn

    def size_bytes(self) -> int:
        """Current log size (0 when the file does not exist yet)."""
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"SessionLog({str(self.path)!r}, size={self.size_bytes()})"


def check_batch_record(record: WalRecord) -> BatchRecord:
    """Assert a replayed mid-log record is a batch (creates lead a log)."""
    if not isinstance(record, BatchRecord):
        raise ValidationError(
            "unexpected create record in the middle of a session log — the "
            "log is not a valid ingestion history"
        )
    return record
