"""Declarative scenario suite: specs, catalogue, runner and goldens.

This package is the regression surface of the estimator library.  A
:class:`Scenario` describes a complete workload (dataset x worker regime
x assignment x estimators x checkpoints) as plain data; the catalogue
registers ~20 named scenarios including the adversarial crowd regimes
(spammers, colluding cliques, accuracy drift, abandoning workers,
class-imbalanced errors, skewed attention) and the dynamic serving
regimes (bursty churn, duplicate storms, reordered deliveries,
cross-session collusion campaigns); :class:`ScenarioRunner` executes any
of them through the batch, sweep, streaming and perm-batch evaluation
paths — plus the serving path for scenarios with a
:class:`SessionDynamics` block — and emits one canonical JSON
trajectory; the golden helpers pin those trajectories byte-for-byte
under ``tests/golden/``.  The replay codec
(:func:`scenario_from_wal` / :func:`scenarios_from_fleet_report`) turns
any recorded session log into a traced scenario, so production traffic
becomes a golden regression test too.

Quick use::

    from repro.scenarios import ScenarioRunner, get_scenario
    trajectory = ScenarioRunner().run(get_scenario("cross-session-collusion"))
    print(trajectory.equivalence["serving_vs_replay"])
"""

from repro.scenarios.catalog import (
    adversarial_scenarios,
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.dynamics import (
    DynamicDriveReport,
    build_delivery_plans,
    drive_scenario,
)
from repro.scenarios.golden import (
    check_scenario,
    check_scenarios,
    default_golden_dir,
    golden_path,
    read_golden,
    record_scenarios,
    write_golden,
)
from repro.scenarios.replay import (
    TRACE_TAG,
    TraceSimulation,
    scenario_from_wal,
    scenarios_from_fleet_report,
    trace_matrix,
)
from repro.scenarios.runner import MODES, ScenarioRunner, ScenarioTrajectory
from repro.scenarios.spec import (
    ADVERSARIAL_TAG,
    AssignmentSpec,
    DatasetSpec,
    RegimeSpec,
    Scenario,
    SessionDynamics,
    TraceSpec,
)

__all__ = [
    "Scenario",
    "DatasetSpec",
    "RegimeSpec",
    "AssignmentSpec",
    "SessionDynamics",
    "TraceSpec",
    "ADVERSARIAL_TAG",
    "TRACE_TAG",
    "ScenarioRunner",
    "ScenarioTrajectory",
    "MODES",
    "DynamicDriveReport",
    "build_delivery_plans",
    "drive_scenario",
    "TraceSimulation",
    "trace_matrix",
    "scenario_from_wal",
    "scenarios_from_fleet_report",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "adversarial_scenarios",
    "default_golden_dir",
    "golden_path",
    "read_golden",
    "write_golden",
    "record_scenarios",
    "check_scenario",
    "check_scenarios",
]
