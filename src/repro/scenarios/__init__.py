"""Declarative scenario suite: specs, catalogue, runner and goldens.

This package is the regression surface of the estimator library.  A
:class:`Scenario` describes a complete workload (dataset x worker regime
x assignment x estimators x checkpoints) as plain data; the catalogue
registers ~14 named scenarios including the adversarial crowd regimes
(spammers, colluding cliques, accuracy drift, abandoning workers,
class-imbalanced errors, skewed attention); :class:`ScenarioRunner`
executes any of them through the batch, sweep and streaming evaluation
paths and emits one canonical JSON trajectory; the golden helpers pin
those trajectories byte-for-byte under ``tests/golden/``.

Quick use::

    from repro.scenarios import ScenarioRunner, get_scenario
    trajectory = ScenarioRunner().run(get_scenario("colluding-cliques"))
    print(trajectory.estimates["chao92"])
"""

from repro.scenarios.catalog import (
    adversarial_scenarios,
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.golden import (
    check_scenario,
    check_scenarios,
    default_golden_dir,
    golden_path,
    read_golden,
    record_scenarios,
    write_golden,
)
from repro.scenarios.runner import MODES, ScenarioRunner, ScenarioTrajectory
from repro.scenarios.spec import (
    ADVERSARIAL_TAG,
    AssignmentSpec,
    DatasetSpec,
    RegimeSpec,
    Scenario,
)

__all__ = [
    "Scenario",
    "DatasetSpec",
    "RegimeSpec",
    "AssignmentSpec",
    "ADVERSARIAL_TAG",
    "ScenarioRunner",
    "ScenarioTrajectory",
    "MODES",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "adversarial_scenarios",
    "default_golden_dir",
    "golden_path",
    "read_golden",
    "write_golden",
    "record_scenarios",
    "check_scenario",
    "check_scenarios",
]
