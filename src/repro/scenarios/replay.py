"""Trace-replay codec: recorded session logs become golden scenarios.

Any recorded column stream — a per-session write-ahead log from
:mod:`repro.streaming.wal`, or the acknowledged-batch record a
:class:`~repro.serving.loadgen.LoadGenerator` run produced — converts
into a deterministic, JSON-round-tripping
:class:`~repro.scenarios.spec.Scenario` whose
:class:`~repro.scenarios.spec.TraceSpec` carries the columns verbatim.
Registered and pinned through the existing golden harness, a production
trace becomes a regression test: the estimators must keep producing the
exact trajectory they produced on the live run.

The WAL conversion applies the same ``(source, sequence)`` idempotency
gate :func:`~repro.streaming.serving.replay_batch_record` applies, so a
log containing duplicated or reordered deliveries converts to exactly
the columns a recovering service would apply — the property the
hypothesis suite pins against ``SessionLog.repair()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.common.exceptions import ConfigurationError
from repro.crowd.response_matrix import ResponseMatrix
from repro.scenarios.spec import Scenario, TraceSpec
from repro.serving.loadgen import FleetReport, ordered_session_batches
from repro.streaming.wal import BatchRecord, CreateRecord, SessionLog

#: Tag every trace-derived scenario carries.
TRACE_TAG = "trace"


@dataclass
class TraceSimulation:
    """What the scenario runner needs from a trace: a matrix, no crowd.

    Duck-types the ``matrix`` / ``true_error_count`` surface of
    :class:`~repro.crowd.simulator.CrowdSimulation`; ``true_error_count``
    is ``-1`` when the trace carries no ground truth.
    """

    matrix: ResponseMatrix
    true_error_count: int = -1


def trace_matrix(trace: TraceSpec) -> ResponseMatrix:
    """Rebuild the recorded response matrix verbatim.

    A recorded ``worker_ids`` entry of ``None`` defaults to the column
    index — the same rule :class:`~repro.streaming.StreamingSession`
    applies on live ingestion, so the rebuilt matrix is bit-identical to
    the one the live run accumulated.
    """
    matrix = ResponseMatrix(trace.item_ids)
    for index, column in enumerate(trace.columns):
        worker = trace.worker_ids[index]
        matrix.add_column(dict(column), index if worker is None else worker)
    return matrix


def simulate_trace(trace: TraceSpec) -> TraceSimulation:
    """The runner's ``simulate`` step for a traced scenario."""
    return TraceSimulation(
        matrix=trace_matrix(trace), true_error_count=trace.true_errors
    )


def scenario_from_wal(
    log: Union[SessionLog, str, Path],
    name: str,
    *,
    description: str = "",
    estimators: Optional[Sequence[str]] = None,
    num_checkpoints: int = 8,
    tags: Sequence[str] = (),
) -> Scenario:
    """Convert a session WAL into a traced scenario.

    Reads the log's valid prefix (a torn tail is ignored, exactly as
    recovery ignores it), requires the leading ``CreateRecord``, and
    applies every batch record through the same ``(source, sequence)``
    high-water-mark gate live ingestion uses — duplicated and reordered
    records convert to no-ops, so the resulting trace holds exactly the
    columns a recovering service would serve.
    """
    if not isinstance(log, SessionLog):
        log = SessionLog(Path(log))
    records = log.records()
    if not records or not isinstance(records[0], CreateRecord):
        raise ConfigurationError(
            f"cannot build a scenario from {str(log.path)!r}: the log does "
            "not start with a session-create record"
        )
    create = records[0]
    columns: List[tuple] = []
    worker_ids: List[Optional[int]] = []
    sources: Dict[str, int] = {}
    for record in records[1:]:
        if not isinstance(record, BatchRecord):
            raise ConfigurationError(
                f"unexpected extra create record in {str(log.path)!r}"
            )
        if record.source is not None:
            last = sources.get(record.source)
            if last is not None and record.sequence <= last:
                continue
        columns.extend(record.columns)
        worker_ids.extend(
            record.worker_ids
            if record.worker_ids is not None
            else [None] * len(record.columns)
        )
        if record.source is not None:
            sources[record.source] = record.sequence
    return Scenario(
        name=name,
        description=description
        or f"trace replay of the recorded session log {Path(log.path).name!r}",
        estimators=tuple(estimators if estimators is not None else create.estimators),
        num_checkpoints=num_checkpoints,
        tags=tuple(tags) + (TRACE_TAG,),
        trace=TraceSpec(
            item_ids=tuple(create.item_ids),
            columns=tuple(columns),
            worker_ids=tuple(worker_ids),
            true_errors=-1,
        ),
    )


def scenarios_from_fleet_report(
    report: FleetReport,
    *,
    name_prefix: str = "replay-",
    estimators: Optional[Sequence[str]] = None,
    num_checkpoints: int = 8,
    tags: Sequence[str] = (),
) -> List[Scenario]:
    """Convert a fleet run's acknowledged batches into traced scenarios.

    One scenario per session the fleet touched, columns in the
    server-side application order recovered from the acknowledgements
    (tiling-verified, as in
    :func:`~repro.serving.loadgen.replay_applied_batches`).  Unlike a
    production WAL, a synthetic fleet knows its ground truth, so
    ``true_errors`` is carried into the trace.
    """
    config = report.config
    true_errors = int(config.true_labels().sum())
    scenarios = []
    for session, batches in ordered_session_batches(
        report.applied_batches, config.session_names()
    ).items():
        columns: List[tuple] = []
        worker_ids: List[Optional[int]] = []
        for batch in batches:
            columns.extend(tuple(votes.items()) for votes in batch.columns)
            worker_ids.extend(batch.worker_ids)
        scenarios.append(
            Scenario(
                name=f"{name_prefix}{session}",
                description=(
                    f"trace replay of fleet session {session!r} "
                    f"(seed {config.seed})"
                ),
                estimators=tuple(
                    estimators if estimators is not None else config.estimators
                ),
                num_checkpoints=num_checkpoints,
                tags=tuple(tags) + (TRACE_TAG,),
                trace=TraceSpec(
                    item_ids=tuple(range(config.num_items)),
                    columns=tuple(columns),
                    worker_ids=tuple(worker_ids),
                    true_errors=true_errors,
                ),
            )
        )
    return scenarios
