"""Golden-trajectory persistence and drift checking.

A golden file is the canonical JSON trajectory of one registered
scenario at its default seed, stored under ``tests/golden/<name>.json``.
``record`` (re)writes them; ``check`` replays the scenario and compares
byte-for-byte.  Any estimator change that moves a single float on any
regime shows up as a golden diff — intentional changes re-record via
``repro scenario record`` (or ``python tools/golden.py record``) and the
diff documents exactly which trajectories moved.
"""

from __future__ import annotations

import difflib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.exceptions import ConfigurationError
from repro.scenarios.catalog import available_scenarios, get_scenario
from repro.scenarios.runner import ScenarioRunner, ScenarioTrajectory


def default_golden_dir() -> Path:
    """The in-repo golden directory (``tests/golden`` next to ``src``)."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_path(name: str, directory: Optional[Path] = None) -> Path:
    """Where the golden file of scenario ``name`` lives."""
    directory = Path(directory) if directory is not None else default_golden_dir()
    return directory / f"{str(name).lower()}.json"


def write_golden(
    trajectory: ScenarioTrajectory, directory: Optional[Path] = None
) -> Path:
    """Persist a trajectory as its scenario's golden file."""
    path = golden_path(trajectory.scenario.name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trajectory.canonical_json() + "\n", encoding="utf-8")
    return path


def read_golden(name: str, directory: Optional[Path] = None) -> str:
    """The stored golden text of scenario ``name``.

    Raises
    ------
    repro.common.exceptions.ConfigurationError
        If no golden file has been recorded for the scenario.
    """
    path = golden_path(name, directory)
    if not path.exists():
        raise ConfigurationError(
            f"no golden file for scenario {name!r} at {path}; record it with "
            "'repro scenario record' or 'python tools/golden.py record'"
        )
    return path.read_text(encoding="utf-8")


def record_scenarios(
    names: Optional[Iterable[str]] = None,
    *,
    directory: Optional[Path] = None,
    runner: Optional[ScenarioRunner] = None,
) -> List[Path]:
    """Run and record golden files for ``names`` (default: every scenario)."""
    runner = runner or ScenarioRunner()
    paths = []
    for name in list(names) if names else available_scenarios():
        trajectory = runner.run(get_scenario(name))
        paths.append(write_golden(trajectory, directory))
    return paths


def check_scenario(
    name: str,
    *,
    directory: Optional[Path] = None,
    runner: Optional[ScenarioRunner] = None,
) -> Tuple[bool, str]:
    """Replay one scenario and diff it against its golden file.

    Returns ``(ok, message)`` where ``message`` is a unified diff on
    mismatch (empty on success).
    """
    runner = runner or ScenarioRunner()
    expected = read_golden(name, directory)
    actual = runner.run(get_scenario(name)).canonical_json() + "\n"
    if actual == expected:
        return True, ""
    diff = "\n".join(
        difflib.unified_diff(
            expected.splitlines(),
            actual.splitlines(),
            fromfile=f"golden/{name}.json",
            tofile=f"replay/{name}.json",
            lineterm="",
        )
    )
    return False, diff


def check_scenarios(
    names: Optional[Iterable[str]] = None,
    *,
    directory: Optional[Path] = None,
) -> Dict[str, Tuple[bool, str]]:
    """Replay ``names`` (default: all) against their golden files."""
    runner = ScenarioRunner()
    return {
        name: check_scenario(name, directory=directory, runner=runner)
        for name in (list(names) if names else available_scenarios())
    }


def report_check_results(results: Dict[str, Tuple[bool, str]]) -> int:
    """Print the standard ok/DRIFT report and return the failure count.

    Shared by ``repro scenario check`` and ``tools/golden.py`` so the
    report format lives in one place.
    """
    failures = 0
    for name, (ok, diff) in sorted(results.items()):
        print(f"{'ok' if ok else 'DRIFT':<6} {name}")
        if not ok:
            failures += 1
            print(diff)
    return failures
