"""Declarative scenario specifications.

A :class:`Scenario` names one complete estimation workload as plain data:
a dataset builder x a worker regime x an assignment strategy x an
estimator set x a checkpoint schedule, all hanging off a single root
seed.  Because every field round-trips through :meth:`Scenario.to_dict`
/ :meth:`Scenario.from_dict`, a scenario can live in a golden file, a
CLI invocation or a test parameter without loss — the spec *is* the
experiment.

The three component specs (:class:`DatasetSpec`, :class:`RegimeSpec`,
:class:`AssignmentSpec`) are thin dispatchers from a ``kind`` string plus
JSON-friendly ``params`` onto the concrete builders in
:mod:`repro.data`, :mod:`repro.crowd.worker` and
:mod:`repro.crowd.assignment`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.exceptions import ConfigurationError
from repro.common.rng import RandomState, derive_rng
from repro.common.validation import (
    check_int,
    check_known_keys,
    check_non_negative,
    check_probability,
)
from repro.crowd.assignment import SkewedAssigner
from repro.crowd.worker import (
    CliqueRegime,
    CrossSessionCliqueRegime,
    DriftRegime,
    HomogeneousRegime,
    MixtureRegime,
    StratifiedRegime,
    WorkerProfile,
    WorkerRegime,
)
from repro.data.address import AddressDatasetConfig, generate_address_dataset
from repro.data.record import Dataset
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs

#: Tag marking regimes the paper's uniform-crowd assumptions do not cover.
ADVERSARIAL_TAG = "adversarial"


def _profile(data: Mapping[str, float]) -> WorkerProfile:
    return WorkerProfile.from_dict(data)


def _check_config_params(kind: str, params: Mapping[str, object], config_cls) -> None:
    """Reject params the dataset config dataclass does not define.

    Same rationale as the regime/assignment validation: a typoed knob in a
    hand-edited spec must fail with the suite's standard remediation
    message, not a raw ``TypeError`` from the config constructor.  The
    config's own ``seed`` field is excluded from the vocabulary — dataset
    randomness always derives from the *scenario* root seed, so accepting
    a per-dataset seed here would be a silently ignored knob.
    """
    allowed = {
        config_field.name for config_field in dataclasses.fields(config_cls)
    } - {"seed"}
    check_known_keys(params, f"{kind!r} dataset params", allowed)


@dataclass(frozen=True)
class DatasetSpec:
    """Which candidate population to build.

    ``kind`` selects the generator; ``params`` are its configuration
    fields (JSON-friendly values only).  Supported kinds:

    * ``"synthetic"`` — :func:`repro.data.synthetic.generate_synthetic_pairs`
      (params: ``num_items``, ``num_errors``, ``shuffle``);
    * ``"address"`` — :func:`repro.data.address.generate_address_dataset`
      (params: ``num_records``, ``num_errors``).
    """

    kind: str = "synthetic"
    params: Dict[str, object] = field(default_factory=dict)

    def build(self, seed: RandomState) -> Dataset:
        """Materialise the dataset (randomness derived from ``seed``)."""
        rng = derive_rng(seed, 11)
        if self.kind == "synthetic":
            _check_config_params("synthetic", self.params, SyntheticPairConfig)
            return generate_synthetic_pairs(SyntheticPairConfig(**self.params), seed=rng)
        if self.kind == "address":
            _check_config_params("address", self.params, AddressDatasetConfig)
            return generate_address_dataset(AddressDatasetConfig(**self.params), seed=rng)
        raise ConfigurationError(
            f"unknown dataset kind {self.kind!r}; available: ['address', 'synthetic']"
        )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DatasetSpec":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class RegimeSpec:
    """Which worker population answers the tasks.

    ``kind`` selects a :class:`~repro.crowd.worker.WorkerRegime`; profile
    values inside ``params`` are ``{"false_negative_rate": ..,
    "false_positive_rate": ..}`` dictionaries.  Supported kinds and their
    params:

    * ``"homogeneous"`` — ``profile``, ``rate_jitter``;
    * ``"mixture"`` — ``components``: list of ``[weight, profile]`` pairs;
    * ``"drift"`` — ``start``, ``end``, ``horizon``;
    * ``"cliques"`` — ``profile``, ``colluder_profile``, ``num_cliques``,
      ``colluder_fraction``;
    * ``"cross_session_cliques"`` — the same knobs plus ``campaign_seed``:
      clique answer sheets derive from the campaign seed instead of the
      pool rng, so colluders in independently seeded pools (e.g. separate
      serving sessions) share identical sheets;
    * ``"stratified"`` — ``profile``, ``num_strata``,
      ``stratum_profiles``: mapping from stratum (stringified int, as in
      JSON) to profile.

    ``completion_rate`` below 1 adds sparse/abandoning behaviour to any
    of them.
    """

    kind: str = "homogeneous"
    params: Dict[str, object] = field(default_factory=dict)
    completion_rate: float = 1.0

    def build(self) -> WorkerRegime:
        """Materialise the worker regime.

        Only the params actually present are forwarded, so a spec that
        omits a field gets the regime class's own default (e.g. an
        unspecified ``colluder_profile`` stays error-ridden rather than
        silently collapsing to a perfect worker).
        """
        params = self.params
        kwargs: Dict[str, object] = {"completion_rate": float(self.completion_rate)}
        converters = {
            "homogeneous": {"profile": _profile, "rate_jitter": float},
            "mixture": {
                "components": lambda value: tuple(
                    (float(weight), _profile(profile)) for weight, profile in value
                ),
            },
            "drift": {"start": _profile, "end": _profile, "horizon": int},
            "cliques": {
                "profile": _profile,
                "colluder_profile": _profile,
                "num_cliques": int,
                "colluder_fraction": float,
            },
            "cross_session_cliques": {
                "profile": _profile,
                "colluder_profile": _profile,
                "num_cliques": int,
                "colluder_fraction": float,
                "campaign_seed": int,
            },
            "stratified": {
                "profile": _profile,
                "num_strata": int,
                "stratum_profiles": lambda value: tuple(
                    (int(stratum), _profile(profile))
                    for stratum, profile in value.items()
                ),
            },
        }
        classes = {
            "homogeneous": HomogeneousRegime,
            "mixture": MixtureRegime,
            "drift": DriftRegime,
            "cliques": CliqueRegime,
            "cross_session_cliques": CrossSessionCliqueRegime,
            "stratified": StratifiedRegime,
        }
        if self.kind not in classes:
            raise ConfigurationError(
                f"unknown regime kind {self.kind!r}; available: {sorted(classes)}"
            )
        fields = converters[self.kind]
        check_known_keys(params, f"{self.kind!r} regime params", fields)
        for name, convert in fields.items():
            if name in params:
                kwargs[name] = convert(params[name])
        return classes[self.kind](**kwargs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "completion_rate": self.completion_rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RegimeSpec":
        return cls(
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
            completion_rate=float(data.get("completion_rate", 1.0)),
        )


@dataclass(frozen=True)
class AssignmentSpec:
    """How items reach workers.

    ``"uniform"`` is the paper's uniform random assignment (the
    simulator's default); ``"skewed"`` plugs in the Zipf-weighted
    :class:`~repro.crowd.assignment.SkewedAssigner` (param:
    ``exponent``).
    """

    kind: str = "uniform"
    params: Dict[str, object] = field(default_factory=dict)

    def builder(self) -> Optional[Callable[[Sequence[int], int, RandomState], object]]:
        """The simulator ``assigner_builder`` hook (``None`` = uniform).

        Params are validated strictly (same rationale as
        :meth:`RegimeSpec.build`): a typoed knob must fail loudly rather
        than silently pin a golden for the default assignment.
        """
        allowed = {"uniform": set(), "skewed": {"exponent"}}
        if self.kind in allowed:
            check_known_keys(
                self.params, f"{self.kind!r} assignment params", allowed[self.kind]
            )
        if self.kind == "uniform":
            return None
        if self.kind == "skewed":
            exponent = float(self.params.get("exponent", 1.0))

            def build(item_ids: Sequence[int], items_per_task: int, rng: RandomState):
                return SkewedAssigner(
                    item_ids,
                    items_per_task=items_per_task,
                    exponent=exponent,
                    seed=rng,
                )

            return build
        raise ConfigurationError(
            f"unknown assignment kind {self.kind!r}; available: ['skewed', 'uniform']"
        )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AssignmentSpec":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class SessionDynamics:
    """How a scenario's columns reach the serving layer.

    A scenario with dynamics is additionally driven through the
    multi-tenant serving facade (``EstimationService`` or a
    ``SessionClient``) as a fleet of delivery sources: columns are split
    across named sessions, chopped into batches, reordered, duplicated
    and abandoned according to these knobs, and the served estimates are
    asserted bit-identical to the acknowledged-batch replay oracle
    (``equivalence["serving_vs_replay"]`` in the trajectory).

    Attributes
    ----------
    num_sessions:
        Named serving sessions the columns are spread over (round-robin
        by column index).
    sources_per_session:
        Independent delivery sources per session; each source carries its
        own ``(source, sequence)`` idempotency stream.
    columns_per_batch:
        Task columns per ingest batch.
    workers_per_burst / burst_gap_s:
        Burst shape for the threaded (load-generator) drive; the
        deterministic serial drive ignores the gap.
    loop_delay_s:
        ``(low, high)`` uniform think-time range between a source's
        deliveries — the loop-point delivery time.  Recorded in the
        delivery plan; only the threaded drive sleeps.
    duplicate_every:
        Every n-th batch of a source is re-delivered with the same
        sequence number (0 disables); the retry must be acknowledged as a
        duplicate no-op.
    reorder_every:
        Every n-th adjacent batch pair of a source is swapped before
        delivery (0 disables), exercising the high-water-mark drop path.
    abandon_rate:
        Probability that a source abandons mid-stream, truncating its
        plan after a uniformly drawn batch.
    """

    num_sessions: int = 1
    sources_per_session: int = 2
    columns_per_batch: int = 3
    workers_per_burst: int = 4
    burst_gap_s: float = 0.0
    loop_delay_s: Tuple[float, float] = (0.0, 0.0)
    duplicate_every: int = 0
    reorder_every: int = 0
    abandon_rate: float = 0.0

    def __post_init__(self) -> None:
        check_int(self.num_sessions, "num_sessions", minimum=1)
        check_int(self.sources_per_session, "sources_per_session", minimum=1)
        check_int(self.columns_per_batch, "columns_per_batch", minimum=1)
        check_int(self.workers_per_burst, "workers_per_burst", minimum=1)
        check_non_negative(self.burst_gap_s, "burst_gap_s")
        check_int(self.duplicate_every, "duplicate_every", minimum=0)
        check_int(self.reorder_every, "reorder_every", minimum=0)
        check_probability(self.abandon_rate, "abandon_rate")
        low, high = self.loop_delay_s
        check_non_negative(low, "loop_delay_s[0]")
        check_non_negative(high, "loop_delay_s[1]")
        if float(low) > float(high):
            raise ConfigurationError(
                f"loop_delay_s low {low!r} exceeds high {high!r}"
            )
        object.__setattr__(self, "loop_delay_s", (float(low), float(high)))

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_sessions": self.num_sessions,
            "sources_per_session": self.sources_per_session,
            "columns_per_batch": self.columns_per_batch,
            "workers_per_burst": self.workers_per_burst,
            "burst_gap_s": self.burst_gap_s,
            "loop_delay_s": list(self.loop_delay_s),
            "duplicate_every": self.duplicate_every,
            "reorder_every": self.reorder_every,
            "abandon_rate": self.abandon_rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SessionDynamics":
        converters: Dict[str, Callable[[object], object]] = {
            "num_sessions": int,
            "sources_per_session": int,
            "columns_per_batch": int,
            "workers_per_burst": int,
            "burst_gap_s": float,
            "loop_delay_s": lambda value: tuple(float(v) for v in value),
            "duplicate_every": int,
            "reorder_every": int,
            "abandon_rate": float,
        }
        check_known_keys(data, "dynamics keys", converters)
        kwargs = {
            name: convert(data[name])
            for name, convert in converters.items()
            if name in data
        }
        return cls(**kwargs)


@dataclass(frozen=True)
class TraceSpec:
    """A recorded column stream, replayable as a scenario.

    Instead of simulating a crowd, a traced scenario rebuilds its
    response matrix verbatim from ``columns`` — ordered ``(item, vote)``
    pair tuples exactly as they were applied by a live run (a WAL replay
    or an acknowledged-batch fleet record).  ``true_errors`` is the gold
    error count when known, or ``-1`` when the trace carries no ground
    truth (production traces usually don't).
    """

    item_ids: Tuple[int, ...] = ()
    columns: Tuple[Tuple[Tuple[int, int], ...], ...] = ()
    worker_ids: Tuple[Optional[int], ...] = ()
    true_errors: int = -1

    def __post_init__(self) -> None:
        if not self.item_ids:
            raise ConfigurationError("a trace needs at least one item id")
        if len(self.worker_ids) != len(self.columns):
            raise ConfigurationError(
                f"trace has {len(self.columns)} columns but "
                f"{len(self.worker_ids)} worker ids"
            )
        check_int(self.true_errors, "true_errors", minimum=-1)

    def to_dict(self) -> Dict[str, object]:
        return {
            "item_ids": list(self.item_ids),
            "columns": [
                [[item, vote] for item, vote in column] for column in self.columns
            ],
            "worker_ids": list(self.worker_ids),
            "true_errors": self.true_errors,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TraceSpec":
        check_known_keys(
            data,
            "trace keys",
            {"item_ids", "columns", "worker_ids", "true_errors"},
        )
        return cls(
            item_ids=tuple(int(item) for item in data["item_ids"]),
            columns=tuple(
                tuple((int(item), int(vote)) for item, vote in column)
                for column in data["columns"]
            ),
            worker_ids=tuple(
                None if worker is None else int(worker)
                for worker in data.get("worker_ids", [None] * len(data["columns"]))
            ),
            true_errors=int(data.get("true_errors", -1)),
        )


@dataclass(frozen=True)
class Scenario:
    """One named, fully reproducible estimation workload.

    Attributes
    ----------
    name:
        Registry key (kebab-case by convention).
    description:
        One-line human summary shown by ``repro scenario list``.
    dataset / regime / assignment:
        The three component specs.
    estimators:
        Registry names evaluated over the run.
    num_tasks / items_per_task / tasks_per_worker:
        Crowd-simulation shape (see
        :class:`~repro.crowd.simulator.SimulationConfig`).
    num_checkpoints:
        Number of evenly spaced prefix checkpoints in the trajectory.
    seed:
        Default root seed (``repro scenario run --seed`` overrides).
    tags:
        Free-form labels; ``"adversarial"`` marks regimes outside the
        paper's assumptions.
    dynamics:
        Optional :class:`SessionDynamics`; when present the runner also
        drives the scenario through the serving facade and records the
        ``serving_vs_replay`` equivalence flag.
    trace:
        Optional :class:`TraceSpec`; when present the matrix is rebuilt
        from the recorded columns instead of simulating a crowd (the
        dataset / regime / assignment specs are ignored).
    """

    name: str
    description: str
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    regime: RegimeSpec = field(default_factory=RegimeSpec)
    assignment: AssignmentSpec = field(default_factory=AssignmentSpec)
    estimators: Tuple[str, ...] = ("voting", "chao92", "vchao92", "switch_total")
    num_tasks: int = 80
    items_per_task: int = 15
    tasks_per_worker: int = 1
    num_checkpoints: int = 8
    seed: int = 0
    tags: Tuple[str, ...] = ()
    dynamics: Optional[SessionDynamics] = None
    trace: Optional[TraceSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if not self.estimators:
            raise ConfigurationError(f"scenario {self.name!r} lists no estimators")
        check_int(self.num_tasks, "num_tasks", minimum=1)
        check_int(self.items_per_task, "items_per_task", minimum=1)
        check_int(self.tasks_per_worker, "tasks_per_worker", minimum=1)
        check_int(self.num_checkpoints, "num_checkpoints", minimum=1)

    @property
    def is_adversarial(self) -> bool:
        """Whether the scenario is tagged as an adversarial regime."""
        return ADVERSARIAL_TAG in self.tags

    def checkpoints(self, num_columns: int) -> List[int]:
        """Evenly spaced prefix lengths for a run with ``num_columns`` tasks."""
        if num_columns <= self.num_checkpoints:
            return list(range(1, num_columns + 1))
        step = num_columns / self.num_checkpoints
        points = sorted({int(round(step * (i + 1))) for i in range(self.num_checkpoints)})
        return [p for p in points if p >= 1]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (embedded in golden files).

        The optional ``dynamics`` / ``trace`` keys are emitted only when
        set, so the serialisation of every pre-existing scenario — and
        therefore every pinned golden file — is byte-identical to what it
        was before those fields existed.
        """
        data: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "dataset": self.dataset.to_dict(),
            "regime": self.regime.to_dict(),
            "assignment": self.assignment.to_dict(),
            "estimators": list(self.estimators),
            "num_tasks": self.num_tasks,
            "items_per_task": self.items_per_task,
            "tasks_per_worker": self.tasks_per_worker,
            "num_checkpoints": self.num_checkpoints,
            "seed": self.seed,
            "tags": list(self.tags),
        }
        if self.dynamics is not None:
            data["dynamics"] = self.dynamics.to_dict()
        if self.trace is not None:
            data["trace"] = self.trace.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output.

        Omitted fields take the same dataclass defaults as direct
        construction, so a minimal hand-written ``{"name": ..,
        "description": ..}`` dictionary builds the same scenario as
        ``Scenario(name=.., description=..)``.
        """
        converters = {
            "dataset": DatasetSpec.from_dict,
            "regime": RegimeSpec.from_dict,
            "assignment": AssignmentSpec.from_dict,
            "estimators": tuple,
            "num_tasks": int,
            "items_per_task": int,
            "tasks_per_worker": int,
            "num_checkpoints": int,
            "seed": int,
            "tags": tuple,
            "dynamics": SessionDynamics.from_dict,
            "trace": TraceSpec.from_dict,
        }
        check_known_keys(
            data, "scenario keys", set(converters) | {"name", "description"}
        )
        kwargs: Dict[str, object] = {
            "name": str(data["name"]),
            "description": str(data.get("description", "")),
        }
        for field_name, convert in converters.items():
            if field_name in data:
                kwargs[field_name] = convert(data[field_name])
        return cls(**kwargs)
