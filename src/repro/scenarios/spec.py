"""Declarative scenario specifications.

A :class:`Scenario` names one complete estimation workload as plain data:
a dataset builder x a worker regime x an assignment strategy x an
estimator set x a checkpoint schedule, all hanging off a single root
seed.  Because every field round-trips through :meth:`Scenario.to_dict`
/ :meth:`Scenario.from_dict`, a scenario can live in a golden file, a
CLI invocation or a test parameter without loss — the spec *is* the
experiment.

The three component specs (:class:`DatasetSpec`, :class:`RegimeSpec`,
:class:`AssignmentSpec`) are thin dispatchers from a ``kind`` string plus
JSON-friendly ``params`` onto the concrete builders in
:mod:`repro.data`, :mod:`repro.crowd.worker` and
:mod:`repro.crowd.assignment`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.exceptions import ConfigurationError
from repro.common.rng import RandomState, derive_rng
from repro.common.validation import check_int, check_known_keys
from repro.crowd.assignment import SkewedAssigner
from repro.crowd.worker import (
    CliqueRegime,
    DriftRegime,
    HomogeneousRegime,
    MixtureRegime,
    StratifiedRegime,
    WorkerProfile,
    WorkerRegime,
)
from repro.data.address import AddressDatasetConfig, generate_address_dataset
from repro.data.record import Dataset
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs

#: Tag marking regimes the paper's uniform-crowd assumptions do not cover.
ADVERSARIAL_TAG = "adversarial"


def _profile(data: Mapping[str, float]) -> WorkerProfile:
    return WorkerProfile.from_dict(data)


def _check_config_params(kind: str, params: Mapping[str, object], config_cls) -> None:
    """Reject params the dataset config dataclass does not define.

    Same rationale as the regime/assignment validation: a typoed knob in a
    hand-edited spec must fail with the suite's standard remediation
    message, not a raw ``TypeError`` from the config constructor.  The
    config's own ``seed`` field is excluded from the vocabulary — dataset
    randomness always derives from the *scenario* root seed, so accepting
    a per-dataset seed here would be a silently ignored knob.
    """
    allowed = {
        config_field.name for config_field in dataclasses.fields(config_cls)
    } - {"seed"}
    check_known_keys(params, f"{kind!r} dataset params", allowed)


@dataclass(frozen=True)
class DatasetSpec:
    """Which candidate population to build.

    ``kind`` selects the generator; ``params`` are its configuration
    fields (JSON-friendly values only).  Supported kinds:

    * ``"synthetic"`` — :func:`repro.data.synthetic.generate_synthetic_pairs`
      (params: ``num_items``, ``num_errors``, ``shuffle``);
    * ``"address"`` — :func:`repro.data.address.generate_address_dataset`
      (params: ``num_records``, ``num_errors``).
    """

    kind: str = "synthetic"
    params: Dict[str, object] = field(default_factory=dict)

    def build(self, seed: RandomState) -> Dataset:
        """Materialise the dataset (randomness derived from ``seed``)."""
        rng = derive_rng(seed, 11)
        if self.kind == "synthetic":
            _check_config_params("synthetic", self.params, SyntheticPairConfig)
            return generate_synthetic_pairs(SyntheticPairConfig(**self.params), seed=rng)
        if self.kind == "address":
            _check_config_params("address", self.params, AddressDatasetConfig)
            return generate_address_dataset(AddressDatasetConfig(**self.params), seed=rng)
        raise ConfigurationError(
            f"unknown dataset kind {self.kind!r}; available: ['address', 'synthetic']"
        )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DatasetSpec":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class RegimeSpec:
    """Which worker population answers the tasks.

    ``kind`` selects a :class:`~repro.crowd.worker.WorkerRegime`; profile
    values inside ``params`` are ``{"false_negative_rate": ..,
    "false_positive_rate": ..}`` dictionaries.  Supported kinds and their
    params:

    * ``"homogeneous"`` — ``profile``, ``rate_jitter``;
    * ``"mixture"`` — ``components``: list of ``[weight, profile]`` pairs;
    * ``"drift"`` — ``start``, ``end``, ``horizon``;
    * ``"cliques"`` — ``profile``, ``colluder_profile``, ``num_cliques``,
      ``colluder_fraction``;
    * ``"stratified"`` — ``profile``, ``num_strata``,
      ``stratum_profiles``: mapping from stratum (stringified int, as in
      JSON) to profile.

    ``completion_rate`` below 1 adds sparse/abandoning behaviour to any
    of them.
    """

    kind: str = "homogeneous"
    params: Dict[str, object] = field(default_factory=dict)
    completion_rate: float = 1.0

    def build(self) -> WorkerRegime:
        """Materialise the worker regime.

        Only the params actually present are forwarded, so a spec that
        omits a field gets the regime class's own default (e.g. an
        unspecified ``colluder_profile`` stays error-ridden rather than
        silently collapsing to a perfect worker).
        """
        params = self.params
        kwargs: Dict[str, object] = {"completion_rate": float(self.completion_rate)}
        converters = {
            "homogeneous": {"profile": _profile, "rate_jitter": float},
            "mixture": {
                "components": lambda value: tuple(
                    (float(weight), _profile(profile)) for weight, profile in value
                ),
            },
            "drift": {"start": _profile, "end": _profile, "horizon": int},
            "cliques": {
                "profile": _profile,
                "colluder_profile": _profile,
                "num_cliques": int,
                "colluder_fraction": float,
            },
            "stratified": {
                "profile": _profile,
                "num_strata": int,
                "stratum_profiles": lambda value: tuple(
                    (int(stratum), _profile(profile))
                    for stratum, profile in value.items()
                ),
            },
        }
        classes = {
            "homogeneous": HomogeneousRegime,
            "mixture": MixtureRegime,
            "drift": DriftRegime,
            "cliques": CliqueRegime,
            "stratified": StratifiedRegime,
        }
        if self.kind not in classes:
            raise ConfigurationError(
                f"unknown regime kind {self.kind!r}; available: {sorted(classes)}"
            )
        fields = converters[self.kind]
        check_known_keys(params, f"{self.kind!r} regime params", fields)
        for name, convert in fields.items():
            if name in params:
                kwargs[name] = convert(params[name])
        return classes[self.kind](**kwargs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "completion_rate": self.completion_rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RegimeSpec":
        return cls(
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
            completion_rate=float(data.get("completion_rate", 1.0)),
        )


@dataclass(frozen=True)
class AssignmentSpec:
    """How items reach workers.

    ``"uniform"`` is the paper's uniform random assignment (the
    simulator's default); ``"skewed"`` plugs in the Zipf-weighted
    :class:`~repro.crowd.assignment.SkewedAssigner` (param:
    ``exponent``).
    """

    kind: str = "uniform"
    params: Dict[str, object] = field(default_factory=dict)

    def builder(self) -> Optional[Callable[[Sequence[int], int, RandomState], object]]:
        """The simulator ``assigner_builder`` hook (``None`` = uniform).

        Params are validated strictly (same rationale as
        :meth:`RegimeSpec.build`): a typoed knob must fail loudly rather
        than silently pin a golden for the default assignment.
        """
        allowed = {"uniform": set(), "skewed": {"exponent"}}
        if self.kind in allowed:
            check_known_keys(
                self.params, f"{self.kind!r} assignment params", allowed[self.kind]
            )
        if self.kind == "uniform":
            return None
        if self.kind == "skewed":
            exponent = float(self.params.get("exponent", 1.0))

            def build(item_ids: Sequence[int], items_per_task: int, rng: RandomState):
                return SkewedAssigner(
                    item_ids,
                    items_per_task=items_per_task,
                    exponent=exponent,
                    seed=rng,
                )

            return build
        raise ConfigurationError(
            f"unknown assignment kind {self.kind!r}; available: ['skewed', 'uniform']"
        )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AssignmentSpec":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class Scenario:
    """One named, fully reproducible estimation workload.

    Attributes
    ----------
    name:
        Registry key (kebab-case by convention).
    description:
        One-line human summary shown by ``repro scenario list``.
    dataset / regime / assignment:
        The three component specs.
    estimators:
        Registry names evaluated over the run.
    num_tasks / items_per_task / tasks_per_worker:
        Crowd-simulation shape (see
        :class:`~repro.crowd.simulator.SimulationConfig`).
    num_checkpoints:
        Number of evenly spaced prefix checkpoints in the trajectory.
    seed:
        Default root seed (``repro scenario run --seed`` overrides).
    tags:
        Free-form labels; ``"adversarial"`` marks regimes outside the
        paper's assumptions.
    """

    name: str
    description: str
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    regime: RegimeSpec = field(default_factory=RegimeSpec)
    assignment: AssignmentSpec = field(default_factory=AssignmentSpec)
    estimators: Tuple[str, ...] = ("voting", "chao92", "vchao92", "switch_total")
    num_tasks: int = 80
    items_per_task: int = 15
    tasks_per_worker: int = 1
    num_checkpoints: int = 8
    seed: int = 0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if not self.estimators:
            raise ConfigurationError(f"scenario {self.name!r} lists no estimators")
        check_int(self.num_tasks, "num_tasks", minimum=1)
        check_int(self.items_per_task, "items_per_task", minimum=1)
        check_int(self.tasks_per_worker, "tasks_per_worker", minimum=1)
        check_int(self.num_checkpoints, "num_checkpoints", minimum=1)

    @property
    def is_adversarial(self) -> bool:
        """Whether the scenario is tagged as an adversarial regime."""
        return ADVERSARIAL_TAG in self.tags

    def checkpoints(self, num_columns: int) -> List[int]:
        """Evenly spaced prefix lengths for a run with ``num_columns`` tasks."""
        if num_columns <= self.num_checkpoints:
            return list(range(1, num_columns + 1))
        step = num_columns / self.num_checkpoints
        points = sorted({int(round(step * (i + 1))) for i in range(self.num_checkpoints)})
        return [p for p in points if p >= 1]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (embedded in golden files)."""
        return {
            "name": self.name,
            "description": self.description,
            "dataset": self.dataset.to_dict(),
            "regime": self.regime.to_dict(),
            "assignment": self.assignment.to_dict(),
            "estimators": list(self.estimators),
            "num_tasks": self.num_tasks,
            "items_per_task": self.items_per_task,
            "tasks_per_worker": self.tasks_per_worker,
            "num_checkpoints": self.num_checkpoints,
            "seed": self.seed,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output.

        Omitted fields take the same dataclass defaults as direct
        construction, so a minimal hand-written ``{"name": ..,
        "description": ..}`` dictionary builds the same scenario as
        ``Scenario(name=.., description=..)``.
        """
        converters = {
            "dataset": DatasetSpec.from_dict,
            "regime": RegimeSpec.from_dict,
            "assignment": AssignmentSpec.from_dict,
            "estimators": tuple,
            "num_tasks": int,
            "items_per_task": int,
            "tasks_per_worker": int,
            "num_checkpoints": int,
            "seed": int,
            "tags": tuple,
        }
        check_known_keys(
            data, "scenario keys", set(converters) | {"name", "description"}
        )
        kwargs: Dict[str, object] = {
            "name": str(data["name"]),
            "description": str(data.get("description", "")),
        }
        for field_name, convert in converters.items():
            if field_name in data:
                kwargs[field_name] = convert(data[field_name])
        return cls(**kwargs)
