"""Scenario execution: one spec, four evaluation modes, one trajectory.

:class:`ScenarioRunner` turns a declarative
:class:`~repro.scenarios.spec.Scenario` into a
:class:`ScenarioTrajectory`: it simulates the crowd, then evaluates every
listed estimator at every checkpoint through all four evaluation paths —
the batch single-prefix path (``estimate``), the incremental sweep engine
(``estimate_sweep`` over shared tables), the streaming session and the
cross-permutation tensor engine
(:class:`~repro.core.state.PermutationBatch`) — and verifies they agree
*exactly*.  The trajectory serialises to a canonical JSON document
(sorted keys, two-space indent, shortest-repr floats) so that a golden
file diff is stable and byte-for-byte reproducible from
``repro scenario run <name> --seed <seed>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.exceptions import ConfigurationError
from repro.core.base import EstimateResult, batch_estimates, sweep_estimates
from repro.core.registry import get_estimator
from repro.core.state import PermutationBatch, matrix_sweep_states
from repro.crowd.simulator import CrowdSimulation, CrowdSimulator, SimulationConfig
from repro.scenarios.spec import Scenario
from repro.streaming.session import StreamingSession

#: The evaluation modes every scenario is pushed through.
MODES = ("batch", "sweep", "streaming", "perm_batch")

#: Golden-file format version (bump when the payload layout changes).
#: 2: added the ``perm_batch`` mode and its equivalence flag (PR 4).
FORMAT_VERSION = 2


@dataclass
class ScenarioTrajectory:
    """The canonical result of one scenario run.

    ``estimates``/``observed`` hold the per-estimator checkpoint series
    (the sweep engine's values — the other two modes are verified equal);
    ``equivalence`` records the cross-mode comparison outcome.
    """

    scenario: Scenario
    seed: int
    checkpoints: List[int]
    num_items: int
    true_errors: int
    num_columns: int
    total_votes: int
    estimates: Dict[str, List[float]]
    observed: Dict[str, List[float]]
    equivalence: Dict[str, bool] = field(default_factory=dict)
    #: Deterministic serving-traffic counters, present only for scenarios
    #: with a dynamics block (``None`` keeps pre-dynamics goldens stable).
    dynamics_stats: Optional[Dict[str, int]] = None

    def payload(self) -> Dict[str, object]:
        """The JSON document recorded in golden files."""
        payload: Dict[str, object] = {
            "format_version": FORMAT_VERSION,
            "scenario": self.scenario.to_dict(),
            "seed": self.seed,
            "dataset": {"num_items": self.num_items, "true_errors": self.true_errors},
            "checkpoints": list(self.checkpoints),
            "num_columns": self.num_columns,
            "total_votes": self.total_votes,
            "modes": list(MODES),
            "equivalence": dict(self.equivalence),
            "trajectories": {
                name: {
                    "estimate": list(self.estimates[name]),
                    "observed": list(self.observed[name]),
                }
                for name in sorted(self.estimates)
            },
        }
        if self.dynamics_stats is not None:
            payload["dynamics"] = dict(self.dynamics_stats)
        return payload

    def canonical_json(self) -> str:
        """Deterministic JSON text (no trailing newline).

        ``repro scenario run`` prints exactly this string; golden files
        store it plus one trailing newline, making CLI stdout and golden
        content byte-identical.
        """
        return json.dumps(self.payload(), sort_keys=True, indent=2, ensure_ascii=True)


def _series_equal(a: List[EstimateResult], b: List[EstimateResult]) -> bool:
    """Exact (bitwise) equality of two checkpoint result series."""
    return all(
        x.estimate == y.estimate and x.observed == y.observed for x, y in zip(a, b)
    ) and len(a) == len(b)


class ScenarioRunner:
    """Execute scenarios and emit canonical trajectories.

    Parameters
    ----------
    strict:
        Raise :class:`~repro.common.exceptions.ConfigurationError` when
        the batch, sweep and streaming paths disagree (they never should;
        a mismatch means an estimator broke the shared-state contract).
        When false the disagreement is only recorded in the trajectory's
        ``equivalence`` flags.
    backend:
        Name of the :class:`~repro.core.backend.ArrayBackend` the
        ``perm_batch`` mode's tensor engine runs on (``None`` = resolve
        via ``REPRO_BACKEND`` / default numpy).  The other three modes
        always run the numpy reference, so a strict run with a non-numpy
        backend *is* a cross-backend bit-identity check — the backend
        parity suite drives golden scenarios through exactly this hook.
    """

    def __init__(self, *, strict: bool = True, backend: Optional[str] = None) -> None:
        self.strict = bool(strict)
        self.backend = backend

    def simulate(self, scenario: Scenario, seed: Optional[int] = None) -> CrowdSimulation:
        """Run just the crowd simulation of ``scenario``.

        A traced scenario has no crowd to simulate: its recorded columns
        rebuild the matrix verbatim (the dataset / regime / assignment
        specs and the seed are ignored — a trace *is* its own data).
        """
        seed = scenario.seed if seed is None else int(seed)
        if scenario.trace is not None:
            from repro.scenarios.replay import simulate_trace

            return simulate_trace(scenario.trace)
        dataset = scenario.dataset.build(seed)
        config = SimulationConfig(
            num_tasks=scenario.num_tasks,
            items_per_task=scenario.items_per_task,
            tasks_per_worker=scenario.tasks_per_worker,
            worker_regime=scenario.regime.build(),
            seed=seed,
        )
        simulator = CrowdSimulator(
            dataset, config, assigner_builder=scenario.assignment.builder()
        )
        return simulator.run()

    def run(self, scenario: Scenario, seed: Optional[int] = None) -> ScenarioTrajectory:
        """Simulate ``scenario`` and evaluate it through every mode."""
        seed = scenario.seed if seed is None else int(seed)
        simulation = self.simulate(scenario, seed)
        matrix = simulation.matrix
        # Series are keyed by the *registry* names the scenario lists (the
        # self-describing golden contract); the instances' self-declared
        # names are only used to address the streaming session, so aliases
        # whose instances share a name cannot be disambiguated — reject
        # them up front instead of collapsing two series into one.
        estimators = [(name, get_estimator(name)) for name in scenario.estimators]
        instance_names = [instance.name for _, instance in estimators]
        if len(set(instance_names)) != len(instance_names):
            raise ConfigurationError(
                f"scenario {scenario.name!r} estimators {list(scenario.estimators)} "
                f"resolve to duplicate instance names {instance_names}; registry "
                "aliases of the same estimator cannot be evaluated side by side"
            )
        checkpoints = scenario.checkpoints(matrix.num_columns)

        # Sweep mode: shared tables across estimators — the canonical values.
        states = matrix_sweep_states(matrix, checkpoints)
        sweep: Dict[str, List[EstimateResult]] = {
            name: sweep_estimates(instance, matrix, checkpoints, states=states)
            for name, instance in estimators
        }

        # Batch mode: the classic one-prefix-at-a-time path.
        batch: Dict[str, List[EstimateResult]] = {
            name: [instance.estimate(matrix, checkpoint) for checkpoint in checkpoints]
            for name, instance in estimators
        }

        # Streaming mode: feed columns one at a time, snapshot at checkpoints.
        session = StreamingSession(
            matrix.item_ids, [instance for _, instance in estimators], keep_votes=False
        )
        wanted = set(checkpoints)
        streaming: Dict[str, List[EstimateResult]] = {name: [] for name, _ in estimators}
        workers = matrix.column_workers
        for column in range(matrix.num_columns):
            session.add_column(matrix.column_votes(column), workers[column])
            if session.num_columns in wanted:
                for name, instance in estimators:
                    streaming[name].append(session.estimate(instance.name))

        # Cross-permutation tensor engine: one single-permutation batch must
        # reproduce the sweep exactly (the runner's default path).
        tensor_batch = PermutationBatch(matrix, [None], checkpoints, backend=self.backend)
        perm_batch: Dict[str, List[EstimateResult]] = {
            name: batch_estimates(instance, tensor_batch)[0]
            for name, instance in estimators
        }

        equivalence = {
            "batch_vs_sweep": all(
                _series_equal(batch[name], sweep[name]) for name in sweep
            ),
            "streaming_vs_sweep": all(
                _series_equal(streaming[name], sweep[name]) for name in sweep
            ),
            "perm_batch_vs_sweep": all(
                _series_equal(perm_batch[name], sweep[name]) for name in sweep
            ),
        }

        # Dynamic scenarios additionally travel the serving path: the same
        # matrix, delivered as bursty / duplicated / reordered / abandoned
        # traffic, must serve estimates bit-identical to the acknowledged
        # batch replay oracle.
        dynamics_stats: Optional[Dict[str, int]] = None
        if scenario.dynamics is not None:
            from repro.scenarios.dynamics import drive_scenario

            drive = drive_scenario(scenario, matrix)
            equivalence["serving_vs_replay"] = drive.serving_matches_replay
            dynamics_stats = drive.stats()

        if self.strict and not all(equivalence.values()):
            failing = sorted(key for key, ok in equivalence.items() if not ok)
            raise ConfigurationError(
                f"scenario {scenario.name!r} modes disagree: {failing} — an estimator "
                "violated the batch/sweep/streaming/perm_batch equivalence contract"
            )

        return ScenarioTrajectory(
            scenario=scenario,
            seed=seed,
            checkpoints=checkpoints,
            num_items=matrix.num_items,
            true_errors=simulation.true_error_count,
            num_columns=matrix.num_columns,
            total_votes=matrix.total_votes(),
            estimates={
                name: [result.estimate for result in series]
                for name, series in sweep.items()
            },
            observed={
                name: [result.observed for result in series]
                for name, series in sweep.items()
            },
            equivalence=equivalence,
            dynamics_stats=dynamics_stats,
        )
