"""The scenario registry and its built-in catalogue.

Every scenario below is a complete, seeded workload; together they form
the regression surface of the estimator suite.  The first block re-states
the paper's calibrated crowds as declarative specs; the ``adversarial``
block exercises regimes the paper's uniform-independent-worker model
cannot express — spammers, ballot-stuffers, colluding cliques, accuracy
drift, abandoning workers, class-imbalanced error rates and Zipf-skewed
task attention.  ``tests/test_scenarios_golden.py`` replays each one
against its golden trajectory and asserts batch == sweep == streaming.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.registry import Registry
from repro.scenarios.spec import (
    ADVERSARIAL_TAG,
    AssignmentSpec,
    DatasetSpec,
    RegimeSpec,
    Scenario,
    SessionDynamics,
)

_SCENARIOS: Registry[Scenario] = Registry("scenario")


def register_scenario(scenario: Scenario, *, overwrite: bool = False) -> None:
    """Register ``scenario`` under its name.

    Raises
    ------
    repro.common.exceptions.ConfigurationError
        If the name is taken and ``overwrite`` is false; the message
        names the remedy and lists the available scenarios.
    """
    _SCENARIOS.register(scenario.name, scenario, overwrite=overwrite)


def unregister_scenario(name: str) -> None:
    """Remove a registration (mainly for tests)."""
    _SCENARIOS.unregister(name)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises
    ------
    repro.common.exceptions.ConfigurationError
        If no scenario is registered under that name; the message lists
        the available scenarios.
    """
    return _SCENARIOS.get(name)


def available_scenarios(*, tag: Optional[str] = None) -> List[str]:
    """Names of registered scenarios, sorted; optionally filtered by tag."""
    names = _SCENARIOS.names()
    if tag is None:
        return names
    return [name for name in names if tag in _SCENARIOS.get(name).tags]


def adversarial_scenarios() -> List[str]:
    """Names of the registered adversarial scenarios."""
    return available_scenarios(tag=ADVERSARIAL_TAG)


# ---------------------------------------------------------------------- #
# built-in catalogue
# ---------------------------------------------------------------------- #

#: The error profiles the built-ins are composed from.
_HONEST = {"false_negative_rate": 0.1, "false_positive_rate": 0.02}
_FP_HEAVY = {"false_negative_rate": 0.2, "false_positive_rate": 0.05}
_FN_HEAVY = {"false_negative_rate": 0.35, "false_positive_rate": 0.005}
_PERFECT = {"false_negative_rate": 0.0, "false_positive_rate": 0.0}
_SPAM_COIN = {"false_negative_rate": 0.5, "false_positive_rate": 0.5}
_SPAM_DIRTY = {"false_negative_rate": 0.05, "false_positive_rate": 0.95}

#: The default synthetic population (paper's 1000/100 at test scale).
_SYNTH = DatasetSpec("synthetic", {"num_items": 200, "num_errors": 24})

_ESTIMATORS = ("voting", "chao92", "vchao92", "switch_total")


def _register_builtins() -> None:
    builtins = [
        # -- paper-style crowds ---------------------------------------- #
        Scenario(
            name="baseline-uniform",
            description="FN-only crowd, uniform assignment: the paper's core simulation",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "homogeneous",
                {"profile": {"false_negative_rate": 0.1, "false_positive_rate": 0.0}},
            ),
            estimators=_ESTIMATORS + ("good_turing",),
            seed=101,
            tags=("paper",),
        ),
        Scenario(
            name="fp-heavy",
            description="Many false positives (restaurant-style crowd): VOTING drifts down",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _FP_HEAVY}),
            seed=102,
            tags=("paper",),
        ),
        Scenario(
            name="fn-heavy",
            description="Many false negatives (product-style crowd): VOTING climbs slowly",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _FN_HEAVY}),
            seed=103,
            tags=("paper",),
        ),
        Scenario(
            name="perfect-crowd",
            description="Oracle workers: every estimator must converge to the truth",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _PERFECT}),
            seed=104,
            tags=("sanity",),
        ),
        Scenario(
            name="heterogeneous-crowd",
            description="Per-worker rate jitter around an honest profile (AMT-like spread)",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "homogeneous", {"profile": _HONEST, "rate_jitter": 0.05}
            ),
            seed=105,
            tags=("paper",),
        ),
        Scenario(
            name="address-records",
            description="Address dataset with balanced two-sided noise (Figure 5 regime)",
            dataset=DatasetSpec("address", {"num_records": 200, "num_errors": 20}),
            regime=RegimeSpec(
                "homogeneous",
                {"profile": {"false_negative_rate": 0.2, "false_positive_rate": 0.02}},
            ),
            seed=106,
            tags=("paper", "real-data"),
        ),
        Scenario(
            name="prolific-workers",
            description="Each worker completes 5 consecutive tasks before handing off",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _HONEST}),
            tasks_per_worker=5,
            seed=107,
            tags=("paper",),
        ),
        # -- adversarial regimes --------------------------------------- #
        Scenario(
            name="spammer-infested",
            description="25% coin-flip spammers diluting an otherwise honest crowd",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "mixture",
                {"components": [[0.75, _HONEST], [0.25, _SPAM_COIN]]},
            ),
            seed=108,
            tags=(ADVERSARIAL_TAG, "spammers"),
        ),
        Scenario(
            name="ballot-stuffers",
            description="20% of workers flag nearly everything dirty regardless of truth",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "mixture",
                {"components": [[0.8, _HONEST], [0.2, _SPAM_DIRTY]]},
            ),
            seed=109,
            tags=(ADVERSARIAL_TAG, "spammers"),
        ),
        Scenario(
            name="colluding-cliques",
            description="3 cliques (40% of workers) submit identical error-ridden answers",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "cliques",
                {
                    "profile": _HONEST,
                    "colluder_profile": {
                        "false_negative_rate": 0.45,
                        "false_positive_rate": 0.15,
                    },
                    "num_cliques": 3,
                    "colluder_fraction": 0.4,
                },
            ),
            seed=110,
            tags=(ADVERSARIAL_TAG, "collusion"),
        ),
        Scenario(
            name="fatigue-drift",
            description="Accuracy decays over the stream: near-perfect start, sloppy finish",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "drift",
                {
                    "start": {"false_negative_rate": 0.02, "false_positive_rate": 0.01},
                    "end": {"false_negative_rate": 0.45, "false_positive_rate": 0.25},
                    "horizon": 80,
                },
            ),
            estimators=_ESTIMATORS + ("switch",),
            seed=111,
            tags=(ADVERSARIAL_TAG, "drift"),
        ),
        Scenario(
            name="abandoning-workers",
            description="Workers answer only ~55% of their assigned items (sparse columns)",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "homogeneous", {"profile": _HONEST}, completion_rate=0.55
            ),
            seed=112,
            tags=(ADVERSARIAL_TAG, "sparse"),
        ),
        Scenario(
            name="class-imbalance",
            description="A hard stratum (every 4th item) whose errors are missed 10x more",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "stratified",
                {
                    "profile": {"false_negative_rate": 0.05, "false_positive_rate": 0.01},
                    "num_strata": 4,
                    "stratum_profiles": {
                        "0": {"false_negative_rate": 0.5, "false_positive_rate": 0.02}
                    },
                },
            ),
            seed=113,
            tags=(ADVERSARIAL_TAG, "imbalance"),
        ),
        Scenario(
            name="skewed-attention",
            description="Zipf task attention: heavy vote-count skew, chao92's blind spot",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _HONEST}),
            assignment=AssignmentSpec("skewed", {"exponent": 1.2}),
            estimators=_ESTIMATORS + ("extrapolation",),
            seed=114,
            tags=(ADVERSARIAL_TAG, "skew"),
        ),
        # -- dynamic serving traffic ----------------------------------- #
        # These scenarios additionally travel the serving path: the same
        # matrix is delivered as multi-session, multi-source traffic and
        # the served estimates are pinned bit-identical to the
        # acknowledged-batch replay oracle (``serving_vs_replay``).
        Scenario(
            name="churn-bursty-arrivals",
            description="Honest crowd delivered in 3-session bursts with loop-point delays",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _HONEST}),
            dynamics=SessionDynamics(
                num_sessions=3,
                sources_per_session=2,
                columns_per_batch=4,
                workers_per_burst=2,
                loop_delay_s=(0.0, 0.002),
            ),
            seed=115,
            tags=("dynamic", "churn"),
        ),
        Scenario(
            name="churn-abandonment",
            description="Half the delivery sources abandon mid-stream (truncated plans)",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "homogeneous", {"profile": _HONEST}, completion_rate=0.8
            ),
            dynamics=SessionDynamics(
                num_sessions=2,
                sources_per_session=3,
                columns_per_batch=3,
                abandon_rate=0.5,
            ),
            seed=116,
            tags=("dynamic", "churn"),
        ),
        Scenario(
            name="duplicate-storm",
            description="Every delivery is immediately re-sent: all retries must no-op",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _HONEST}),
            dynamics=SessionDynamics(
                num_sessions=2,
                sources_per_session=2,
                columns_per_batch=3,
                duplicate_every=1,
            ),
            seed=117,
            tags=("dynamic", "retry"),
        ),
        Scenario(
            name="reorder-heavy",
            description="Every other adjacent delivery pair swapped: late batches dropped",
            dataset=_SYNTH,
            regime=RegimeSpec("homogeneous", {"profile": _HONEST}),
            dynamics=SessionDynamics(
                num_sessions=2,
                sources_per_session=2,
                columns_per_batch=2,
                reorder_every=2,
                duplicate_every=4,
            ),
            seed=118,
            tags=("dynamic", "reorder"),
        ),
        Scenario(
            name="cross-session-collusion",
            description="One collusion campaign poisons 3 sessions with shared answer sheets",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "cross_session_cliques",
                {
                    "profile": _HONEST,
                    "colluder_profile": {
                        "false_negative_rate": 0.45,
                        "false_positive_rate": 0.15,
                    },
                    "num_cliques": 2,
                    "colluder_fraction": 0.35,
                    "campaign_seed": 7001,
                },
            ),
            dynamics=SessionDynamics(
                num_sessions=3,
                sources_per_session=2,
                columns_per_batch=3,
            ),
            seed=119,
            tags=(ADVERSARIAL_TAG, "dynamic", "collusion"),
        ),
        Scenario(
            name="collusion-campaign-skew",
            description="Cross-session cliques under Zipf attention, churned deliveries",
            dataset=_SYNTH,
            regime=RegimeSpec(
                "cross_session_cliques",
                {
                    "profile": _HONEST,
                    "colluder_profile": {
                        "false_negative_rate": 0.5,
                        "false_positive_rate": 0.2,
                    },
                    "num_cliques": 3,
                    "colluder_fraction": 0.3,
                    "campaign_seed": 7002,
                },
            ),
            assignment=AssignmentSpec("skewed", {"exponent": 1.1}),
            dynamics=SessionDynamics(
                num_sessions=2,
                sources_per_session=2,
                columns_per_batch=3,
                duplicate_every=3,
                reorder_every=4,
                abandon_rate=0.25,
            ),
            seed=120,
            tags=(ADVERSARIAL_TAG, "dynamic", "collusion"),
        ),
    ]
    for scenario in builtins:
        if scenario.name not in _SCENARIOS:
            register_scenario(scenario)


_register_builtins()
