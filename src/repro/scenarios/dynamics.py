"""Drive a scenario's columns through the serving layer.

A scenario with a :class:`~repro.scenarios.spec.SessionDynamics` block is
not just a matrix to sweep — it is *traffic*.  This module turns the
simulated response matrix into per-source delivery plans (bursts,
loop-point think times, duplicates, reorders, abandonment — the same
fault vocabulary as :mod:`repro.serving.loadgen`), pushes them through
the multi-tenant serving facade, and checks the served estimates against
the acknowledged-batch replay oracle **bit for bit**.

Two drives share one plan builder:

* :func:`drive_scenario` — the deterministic serial drive used by the
  golden harness: deliveries interleave round-robin across sources (the
  reproducible stand-in for concurrency), think times are recorded but
  not slept, and the resulting
  :attr:`DynamicDriveReport.stats` are stable enough to byte-pin.
* The threaded drive — pass the same plans to
  :meth:`~repro.serving.loadgen.LoadGenerator.run` via its ``plans``
  override to exercise real sockets and real concurrency (the slow e2e
  path); landing positions then depend on thread scheduling, but the
  replay oracle still pins the estimates exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from repro.common.exceptions import ConfigurationError
from repro.common.rng import derive_rng
from repro.core.base import EstimateResult
from repro.crowd.response_matrix import ResponseMatrix
from repro.scenarios.spec import Scenario, SessionDynamics
from repro.serving.loadgen import (
    AppliedBatch,
    Delivery,
    FleetConfig,
    FleetReport,
    replay_batches,
)

#: Stream index dynamics randomness derives from (disjoint from the
#: dataset's 11 and the simulator's 0-3 so plans never correlate with
#: crowd noise).
_DYNAMICS_STREAM = 29


def _require_dynamics(scenario: Scenario) -> SessionDynamics:
    if scenario.dynamics is None:
        raise ConfigurationError(
            f"scenario {scenario.name!r} has no dynamics block; only dynamic "
            "scenarios can be driven through the serving layer"
        )
    return scenario.dynamics


def fleet_config(scenario: Scenario, num_items: int) -> FleetConfig:
    """The :class:`FleetConfig` carrier for a dynamic scenario's fleet.

    Session names, estimator list and fault knobs all live here so the
    load-generator machinery (session creation, threaded delivery,
    replay) works on dynamic scenarios unchanged.  The per-worker batch
    shape fields are placeholders — plans come from
    :func:`build_delivery_plans`, not ``build_worker_plan``.
    """
    dynamics = _require_dynamics(scenario)
    return FleetConfig(
        num_sessions=dynamics.num_sessions,
        num_workers=dynamics.num_sessions * dynamics.sources_per_session,
        num_items=int(num_items),
        columns_per_batch=dynamics.columns_per_batch,
        items_per_column=1,
        latency_s=dynamics.loop_delay_s,
        workers_per_burst=dynamics.workers_per_burst,
        burst_gap_s=dynamics.burst_gap_s,
        duplicate_every=dynamics.duplicate_every,
        reorder_every=dynamics.reorder_every,
        estimators=tuple(scenario.estimators),
        session_prefix=f"{scenario.name}-s",
        keep_votes=False,
        seed=scenario.seed,
    )


def build_delivery_plans(
    scenario: Scenario, matrix: ResponseMatrix
) -> List[List[Delivery]]:
    """One delivery plan per source for ``matrix``'s columns.

    Columns are spread round-robin over the dynamics' sessions, chopped
    into ``columns_per_batch`` batches, and the batches dealt round-robin
    to each session's sources (each source carrying its own ``(source,
    sequence)`` idempotency stream).  Per source, in order: abandonment
    truncates the plan after a uniformly drawn batch, reordering swaps
    every n-th adjacent pair (so a lower sequence arrives late and must
    be high-water-mark dropped), and every n-th surviving delivery gains
    an immediate retry twin.  All randomness derives from the scenario
    seed per source, so any one source's plan is stable under changes to
    the others.
    """
    dynamics = _require_dynamics(scenario)
    config = fleet_config(scenario, matrix.num_items)
    session_names = config.session_names()
    workers = matrix.column_workers

    # Column indices per session, then batches per (session, source).
    per_session: List[List[int]] = [[] for _ in session_names]
    for column in range(matrix.num_columns):
        per_session[column % len(session_names)].append(column)

    plans: List[List[Delivery]] = []
    root = derive_rng(scenario.seed, _DYNAMICS_STREAM)
    for session_index, session in enumerate(session_names):
        columns = per_session[session_index]
        chunks = [
            columns[start : start + dynamics.columns_per_batch]
            for start in range(0, len(columns), dynamics.columns_per_batch)
        ]
        for source_index in range(dynamics.sources_per_session):
            source = f"{session}-src{source_index:02d}"
            rng = derive_rng(
                root, session_index * dynamics.sources_per_session + source_index
            )
            batches: List[Delivery] = []
            for sequence, chunk in enumerate(
                chunks[source_index :: dynamics.sources_per_session], start=1
            ):
                batches.append(
                    Delivery(
                        session=session,
                        source=source,
                        sequence=sequence,
                        columns=tuple(
                            matrix.column_votes(column) for column in chunk
                        ),
                        worker_ids=tuple(workers[column] for column in chunk),
                        think_s=float(rng.uniform(*dynamics.loop_delay_s)),
                    )
                )
            if (
                dynamics.abandon_rate
                and len(batches) > 1
                and float(rng.random()) < dynamics.abandon_rate
            ):
                batches = batches[: int(rng.integers(1, len(batches)))]
            if dynamics.reorder_every:
                for index in range(
                    dynamics.reorder_every - 1,
                    len(batches) - 1,
                    dynamics.reorder_every,
                ):
                    batches[index], batches[index + 1] = (
                        batches[index + 1],
                        batches[index],
                    )
            plan: List[Delivery] = []
            for index, delivery in enumerate(batches):
                plan.append(delivery)
                if (
                    dynamics.duplicate_every
                    and (index + 1) % dynamics.duplicate_every == 0
                ):
                    plan.append(
                        Delivery(
                            session=delivery.session,
                            source=delivery.source,
                            sequence=delivery.sequence,
                            columns=delivery.columns,
                            worker_ids=delivery.worker_ids,
                            is_retry=True,
                            think_s=0.0,
                        )
                    )
            plans.append(plan)
    return plans


@dataclass
class DynamicDriveReport:
    """One serving-path drive of a dynamic scenario, plus its oracle."""

    report: FleetReport
    served: Dict[str, Dict[str, EstimateResult]]
    replayed: Dict[str, Dict[str, EstimateResult]]

    @property
    def serving_matches_replay(self) -> bool:
        """Whether every served estimate equals its replay-oracle twin."""
        if set(self.served) != set(self.replayed):
            return False
        for session, results in self.served.items():
            oracle = self.replayed[session]
            if set(results) != set(oracle):
                return False
            for name, result in results.items():
                twin = oracle[name]
                if result.estimate != twin.estimate or result.observed != twin.observed:
                    return False
        return True

    def stats(self) -> Dict[str, int]:
        """Deterministic traffic counters (what the golden payload pins)."""
        report = self.report
        return {
            "deliveries": report.deliveries,
            "applied_deliveries": report.applied_deliveries,
            "duplicate_acks": report.duplicate_acks,
            "late_drops": report.late_drops,
            "columns_applied": report.columns_applied,
            "votes_applied": report.votes_applied,
            "num_sessions": report.config.num_sessions,
        }


def drive_scenario(
    scenario: Scenario,
    matrix: ResponseMatrix,
    client=None,
) -> DynamicDriveReport:
    """Serially drive ``matrix`` through the serving layer per the spec.

    ``client`` is anything with the service surface (``create_session`` /
    ``ingest`` / ``estimates``); ``None`` builds a fresh in-memory
    :class:`~repro.streaming.serving.EstimationService`.  Deliveries
    interleave round-robin across sources — one delivery each per turn —
    which stands in for concurrency while keeping landing positions (and
    therefore the golden payload) deterministic.  Think times are part of
    the plan but never slept here.
    """
    if client is None:
        from repro.streaming.serving import EstimationService

        client = EstimationService()
    config = fleet_config(scenario, matrix.num_items)
    plans = build_delivery_plans(scenario, matrix)
    for name in config.session_names():
        client.create_session(
            name,
            range(config.num_items),
            list(config.estimators),
            keep_votes=config.keep_votes,
        )

    counts = {"deliveries": 0, "applied": 0, "duplicates": 0, "late_drops": 0,
              "columns": 0, "votes": 0}
    latencies: List[float] = []
    applied_batches: List[AppliedBatch] = []
    start = time.perf_counter()
    pending = [list(plan) for plan in plans]
    while any(pending):
        for plan in pending:
            if not plan:
                continue
            delivery = plan.pop(0)
            begin = time.perf_counter()
            result = client.ingest(
                delivery.session,
                list(delivery.columns),
                worker_ids=list(delivery.worker_ids),
                source=delivery.source,
                sequence=delivery.sequence,
            )
            latencies.append(time.perf_counter() - begin)
            counts["deliveries"] += 1
            if result.duplicate:
                counts["duplicates"] += 1
                if not delivery.is_retry:
                    counts["late_drops"] += 1
            else:
                counts["applied"] += 1
                counts["columns"] += result.applied
                counts["votes"] += sum(len(column) for column in delivery.columns)
                applied_batches.append(
                    AppliedBatch(
                        session=delivery.session,
                        start=result.num_columns - result.applied,
                        columns=delivery.columns,
                        worker_ids=delivery.worker_ids,
                    )
                )
    wall = time.perf_counter() - start

    report = FleetReport(
        config=config,
        wall_s=wall,
        deliveries=counts["deliveries"],
        applied_deliveries=counts["applied"],
        duplicate_acks=counts["duplicates"],
        late_drops=counts["late_drops"],
        columns_applied=counts["columns"],
        votes_applied=counts["votes"],
        latencies_s=latencies,
        applied_batches=applied_batches,
    )
    served = {
        name: client.estimates(name) for name in config.session_names()
    }
    replayed = replay_batches(
        applied_batches,
        config.num_items,
        list(config.estimators),
        keep_votes=config.keep_votes,
        session_names=config.session_names(),
    )
    return DynamicDriveReport(report=report, served=served, replayed=replayed)
