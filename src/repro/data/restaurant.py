"""Synthetic restaurant de-duplication dataset.

The paper's first real-world dataset is a restaurant table with 858 records
where some rows describe the same restaurant under slightly different names
("Ritz-Carlton Cafe (buckhead)" vs "Cafe Ritz-Carlton Buckhead").  Out of
the 858 x 858 cross product, 106 pairs are duplicates; after the similarity
prioritisation (normalised edit-distance similarity in (0.5, 0.9)) the
candidate set contains 1264 pairs of which 12 are true duplicates.

We cannot redistribute the original table, so
:func:`generate_restaurant_dataset` synthesises a dataset with the same
schema::

    Restaurant(id, name, address, city, category)

and the same *statistical* structure: the configured number of base
records, a configured number of duplicated entities, and name/address
perturbations calibrated so the duplicate pairs fall into the similarity
band the paper's heuristic targets.  The estimators only ever observe
worker votes over candidate pairs, so matching cardinalities and the
similarity-band split is what preserves the experimental behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import check_int, check_probability
from repro.data import vocab
from repro.data.corruption import abbreviate_tokens, introduce_typos, shuffle_tokens
from repro.data.record import Dataset, Record


@dataclass(frozen=True)
class RestaurantDatasetConfig:
    """Configuration for :func:`generate_restaurant_dataset`.

    The defaults reproduce the cardinalities reported in the paper:
    858 records of which 106 are the second copy of a duplicated entity
    (each restaurant is duplicated at most once).

    Parameters
    ----------
    num_records:
        Total number of records in the generated table.
    num_duplicated_entities:
        Number of entities that appear twice.  The number of duplicate
        *pairs* in the cross product equals this value because every entity
        is duplicated at most once.
    typo_rate:
        Character-level typo rate applied to duplicated copies.
    abbreviation_probability:
        Probability that an abbreviable token in a duplicate copy is
        abbreviated.
    token_shuffle_probability:
        Probability that the duplicate copy has its name tokens reordered.
    seed:
        Default seed used when the caller does not pass one explicitly.
    """

    num_records: int = 858
    num_duplicated_entities: int = 106
    typo_rate: float = 0.03
    abbreviation_probability: float = 0.45
    token_shuffle_probability: float = 0.5
    seed: Optional[int] = 7

    def __post_init__(self) -> None:
        check_int(self.num_records, "num_records", minimum=2)
        check_int(self.num_duplicated_entities, "num_duplicated_entities", minimum=0)
        check_probability(self.typo_rate, "typo_rate")
        check_probability(self.abbreviation_probability, "abbreviation_probability")
        check_probability(self.token_shuffle_probability, "token_shuffle_probability")
        if self.num_duplicated_entities * 2 > self.num_records:
            raise ValueError(
                "num_duplicated_entities cannot exceed half of num_records "
                f"({self.num_duplicated_entities} * 2 > {self.num_records})"
            )


def _make_name(rng) -> str:
    head = vocab.RESTAURANT_NAME_HEADS[int(rng.integers(0, len(vocab.RESTAURANT_NAME_HEADS)))]
    core = vocab.RESTAURANT_NAME_CORES[int(rng.integers(0, len(vocab.RESTAURANT_NAME_CORES)))]
    tail = vocab.RESTAURANT_NAME_TAILS[int(rng.integers(0, len(vocab.RESTAURANT_NAME_TAILS)))]
    return f"{head} {core} {tail}"


def _make_address(rng) -> str:
    number = int(rng.integers(1, 9999))
    street = vocab.STREET_NAMES[int(rng.integers(0, len(vocab.STREET_NAMES)))]
    street_type = vocab.STREET_TYPES[int(rng.integers(0, len(vocab.STREET_TYPES)))]
    return f"{number} {street} {street_type}"


def _duplicate_copy(original: Record, rng, config: RestaurantDatasetConfig, record_id: int) -> Record:
    """Create a perturbed second copy of ``original`` describing the same entity."""
    name = str(original["name"])
    address = str(original["address"])
    if rng.random() < config.token_shuffle_probability:
        name = shuffle_tokens(name, rng)
    name = abbreviate_tokens(name, rng, probability=config.abbreviation_probability)
    name = introduce_typos(name, rng, rate=config.typo_rate, max_typos=2)
    address = abbreviate_tokens(address, rng, probability=config.abbreviation_probability)
    address = introduce_typos(address, rng, rate=config.typo_rate, max_typos=2)
    return Record(
        record_id=record_id,
        fields={
            "name": name,
            "address": address,
            "city": original["city"],
            "category": original["category"],
        },
        source="restaurant",
        entity_id=original.entity_id,
    )


def generate_restaurant_dataset(
    config: Optional[RestaurantDatasetConfig] = None,
    seed: RandomState = None,
) -> Dataset:
    """Generate the synthetic restaurant dataset.

    Parameters
    ----------
    config:
        Generator configuration; defaults to the paper's cardinalities.
    seed:
        Seed or generator; overrides ``config.seed`` when provided.

    Returns
    -------
    repro.data.record.Dataset
        A dataset whose records carry ``entity_id`` values; duplicated
        entities appear exactly twice.  The dataset-level ``dirty_ids`` are
        empty because for entity resolution "errors" live at the *pair*
        level (see :func:`repro.er.pairing.build_pair_dataset`).
    """
    config = config or RestaurantDatasetConfig()
    rng = ensure_rng(seed if seed is not None else derive_rng(config.seed, 1))

    num_unique = config.num_records - config.num_duplicated_entities
    records: List[Record] = []
    seen_names = set()
    for entity_id in range(num_unique):
        # Reject name collisions so unique entities do not accidentally
        # become near-duplicates of each other.
        for _ in range(50):
            name = _make_name(rng)
            if name not in seen_names:
                break
        seen_names.add(name)
        city, state, _zip_prefix = vocab.US_CITIES[int(rng.integers(0, len(vocab.US_CITIES)))]
        records.append(
            Record(
                record_id=len(records),
                fields={
                    "name": name,
                    "address": _make_address(rng),
                    "city": city,
                    "category": vocab.RESTAURANT_CATEGORIES[
                        int(rng.integers(0, len(vocab.RESTAURANT_CATEGORIES)))
                    ],
                },
                source="restaurant",
                entity_id=entity_id,
            )
        )

    duplicated = rng.choice(num_unique, size=config.num_duplicated_entities, replace=False)
    for entity_index in sorted(int(i) for i in duplicated):
        original = records[entity_index]
        records.append(_duplicate_copy(original, rng, config, record_id=len(records)))

    return Dataset(
        records=records,
        dirty_ids=frozenset(),
        name="restaurant",
        metadata={
            "generator": "restaurant",
            "num_records": config.num_records,
            "num_duplicated_entities": config.num_duplicated_entities,
            "paper_reference": {
                "records": 858,
                "duplicate_pairs": 106,
                "candidate_pairs": 1264,
                "candidate_duplicates": 12,
            },
        },
    )
