"""Pair-level datasets for entity resolution.

For entity resolution the paper defines ``R = Q x Q``: the records to be
cleaned are *pairs* of base records, a pair is "dirty" when the two base
records refer to the same real-world entity, and commutative / transitive
duplicates are removed so each duplicate relationship is counted once.

:class:`PairDataset` captures exactly that view while keeping a pointer to
the base :class:`~repro.data.record.Dataset` so similarity heuristics can
look at the underlying field values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.exceptions import ValidationError
from repro.data.record import Dataset, Record


@dataclass(frozen=True)
class CandidatePair:
    """A single candidate pair of base records.

    Parameters
    ----------
    pair_id:
        Stable integer identifier of the pair within its
        :class:`PairDataset`.
    left_id / right_id:
        Record ids of the two base records, stored with ``left_id <
        right_id`` so that the pair is orientation-free.
    similarity:
        Optional similarity score attached by the heuristic that produced
        the pair (``H(r)`` in the paper).
    """

    pair_id: int
    left_id: int
    right_id: int
    similarity: Optional[float] = None

    def __post_init__(self) -> None:
        if self.left_id == self.right_id:
            raise ValidationError("a candidate pair must join two distinct records")
        if self.left_id > self.right_id:
            left, right = self.right_id, self.left_id
            object.__setattr__(self, "left_id", left)
            object.__setattr__(self, "right_id", right)

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical (left, right) tuple identifying the pair."""
        return (self.left_id, self.right_id)

    def with_similarity(self, similarity: float) -> "CandidatePair":
        """Return a copy of the pair carrying ``similarity``."""
        return CandidatePair(self.pair_id, self.left_id, self.right_id, float(similarity))


def canonical_pair_key(a: int, b: int) -> Tuple[int, int]:
    """Return the canonical ordering of a pair of record ids."""
    return (a, b) if a < b else (b, a)


@dataclass
class PairDataset:
    """A set of candidate pairs with duplicate gold labels.

    This plays the role of ``R`` (or the prioritised subset ``R_H``) for
    entity-resolution experiments: the "records" the crowd votes on are the
    pairs, and a pair is *dirty* when its two base records are duplicates.

    Parameters
    ----------
    base:
        The base record dataset the pairs are drawn from.
    pairs:
        The candidate pairs, in stable order.
    duplicate_keys:
        Canonical ``(left_id, right_id)`` keys of the truly duplicate pairs
        **within this candidate set** (the gold standard).
    name:
        Human-readable name used in reports.
    total_duplicates:
        The number of duplicate pairs in the *full* cross product, which may
        exceed the number within this candidate set when the heuristic that
        produced the candidates has false negatives.  Defaults to
        ``len(duplicate_keys)``.
    """

    base: Dataset
    pairs: List[CandidatePair]
    duplicate_keys: FrozenSet[Tuple[int, int]] = frozenset()
    name: str = "pairs"
    total_duplicates: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.pairs = list(self.pairs)
        self.duplicate_keys = frozenset(canonical_pair_key(*k) for k in self.duplicate_keys)
        pair_ids = [p.pair_id for p in self.pairs]
        if len(set(pair_ids)) != len(pair_ids):
            raise ValidationError(f"pair dataset {self.name!r} contains duplicate pair ids")
        keys = [p.key for p in self.pairs]
        if len(set(keys)) != len(keys):
            raise ValidationError(f"pair dataset {self.name!r} contains repeated record pairs")
        self._by_id = {p.pair_id: p for p in self.pairs}
        self._key_set = set(keys)
        if self.total_duplicates is None:
            self.total_duplicates = len(self.duplicate_keys)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[CandidatePair]:
        return iter(self.pairs)

    def __getitem__(self, pair_id: int) -> CandidatePair:
        try:
            return self._by_id[pair_id]
        except KeyError:
            raise KeyError(f"no pair with id {pair_id} in {self.name!r}") from None

    @property
    def pair_ids(self) -> List[int]:
        """Pair ids in dataset order."""
        return [p.pair_id for p in self.pairs]

    @property
    def num_duplicates(self) -> int:
        """Number of truly duplicate pairs within the candidate set."""
        return sum(1 for p in self.pairs if p.key in self.duplicate_keys)

    @property
    def error_rate(self) -> float:
        """Fraction of candidate pairs that are true duplicates."""
        if not self.pairs:
            return 0.0
        return self.num_duplicates / len(self.pairs)

    def is_duplicate(self, pair_id: int) -> bool:
        """Return ``True`` if the gold standard marks the pair as a duplicate."""
        return self._by_id[pair_id].key in self.duplicate_keys

    def contains_key(self, a: int, b: int) -> bool:
        """Return ``True`` if the candidate set contains the pair ``(a, b)``."""
        return canonical_pair_key(a, b) in self._key_set

    def records_for(self, pair_id: int) -> Tuple[Record, Record]:
        """Return the two base records joined by ``pair_id``."""
        pair = self._by_id[pair_id]
        return self.base[pair.left_id], self.base[pair.right_id]

    def ground_truth_vector(self) -> List[int]:
        """Return the 0/1 duplicate labels aligned with :attr:`pairs`."""
        return [1 if p.key in self.duplicate_keys else 0 for p in self.pairs]

    def as_item_dataset(self) -> Dataset:
        """View the pairs as a flat :class:`~repro.data.record.Dataset`.

        Every pair becomes a record whose fields are the rendered text of
        its two sides; the gold standard marks duplicate pairs as dirty.
        The crowd simulator and the estimators operate on this flat view so
        the same code paths serve both record-level and pair-level errors.
        """
        records = []
        dirty: List[int] = []
        for pair in self.pairs:
            left, right = self.records_for(pair.pair_id)
            records.append(
                Record(
                    record_id=pair.pair_id,
                    fields={
                        "left": left.text(),
                        "right": right.text(),
                        "similarity": pair.similarity,
                    },
                )
            )
            if pair.key in self.duplicate_keys:
                dirty.append(pair.pair_id)
        return Dataset(
            records=records,
            dirty_ids=frozenset(dirty),
            name=f"{self.name}-items",
            metadata={"kind": "pairs", **self.metadata},
        )

    def subset(self, pair_ids: Iterable[int], *, name: Optional[str] = None) -> "PairDataset":
        """Return a new :class:`PairDataset` restricted to ``pair_ids``."""
        keep = set(pair_ids)
        pairs = [p for p in self.pairs if p.pair_id in keep]
        keys = {p.key for p in pairs}
        return PairDataset(
            base=self.base,
            pairs=pairs,
            duplicate_keys=self.duplicate_keys & keys,
            name=name or f"{self.name}-subset",
            total_duplicates=None,
            metadata=dict(self.metadata),
        )

    def summary(self) -> Dict[str, object]:
        """Return a small dictionary describing the pair dataset."""
        return {
            "name": self.name,
            "num_pairs": len(self.pairs),
            "num_duplicates": self.num_duplicates,
            "total_duplicates": self.total_duplicates,
            "error_rate": self.error_rate,
            "num_base_records": len(self.base),
        }


def enumerate_all_pairs(
    dataset: Dataset,
    *,
    cross_source: Optional[Tuple[str, str]] = None,
) -> Iterator[Tuple[int, int]]:
    """Yield every candidate pair key from ``dataset``.

    Parameters
    ----------
    dataset:
        Base record dataset.
    cross_source:
        When given, only pairs joining a record from the first source with a
        record from the second source are yielded (the product dataset pairs
        Amazon records with Google records only).  When ``None`` every
        unordered pair of distinct records is yielded
        (``N * (N - 1) / 2`` keys).
    """
    if cross_source is None:
        ids = dataset.record_ids
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                yield canonical_pair_key(a, b)
    else:
        left_source, right_source = cross_source
        left_ids = [r.record_id for r in dataset.records if r.source == left_source]
        right_ids = [r.record_id for r in dataset.records if r.source == right_source]
        for a in left_ids:
            for b in right_ids:
                yield canonical_pair_key(a, b)


def duplicate_keys_from_entities(dataset: Dataset) -> FrozenSet[Tuple[int, int]]:
    """Derive duplicate pair keys from shared ``entity_id`` values.

    Records sharing an ``entity_id`` are duplicates of each other.  Pairs
    are returned in canonical orientation with commutative duplicates
    removed; transitive closure within an entity cluster is expanded into
    all pairwise keys (a cluster of three records yields three keys), which
    matches the paper's definition of ``R_dirty`` for entity resolution.
    """
    clusters: Dict[int, List[int]] = {}
    for record in dataset.records:
        if record.entity_id is None:
            continue
        clusters.setdefault(record.entity_id, []).append(record.record_id)
    keys = set()
    for members in clusters.values():
        members = sorted(members)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                keys.add(canonical_pair_key(a, b))
    return frozenset(keys)
