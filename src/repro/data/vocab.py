"""Vocabularies used by the synthetic dataset generators.

The generators build record field values by composing tokens from these
lists.  The lists are intentionally plain data (no randomness) so that the
generators remain fully deterministic for a given seed.
"""

from __future__ import annotations

#: First components of restaurant names.
RESTAURANT_NAME_HEADS = [
    "golden", "silver", "blue", "red", "green", "royal", "grand", "little",
    "old", "new", "happy", "lucky", "sunny", "corner", "downtown", "uptown",
    "riverside", "lakeside", "harbor", "garden", "village", "union", "liberty",
    "central", "pacific", "atlantic", "metro", "urban", "rustic", "copper",
]

#: Second components of restaurant names.
RESTAURANT_NAME_CORES = [
    "dragon", "lotus", "olive", "basil", "pepper", "saffron", "truffle",
    "lantern", "anchor", "bistro", "grill", "kitchen", "table", "spoon",
    "fork", "plate", "oven", "hearth", "terrace", "courtyard", "tavern",
    "cantina", "trattoria", "brasserie", "diner", "deli", "noodle", "dumpling",
    "taqueria", "smokehouse",
]

#: Name suffixes for restaurants.
RESTAURANT_NAME_TAILS = [
    "cafe", "restaurant", "house", "bar", "room", "club", "express", "corner",
    "place", "spot", "joint", "lounge", "garden", "palace", "works", "company",
]

#: Cuisine categories.
RESTAURANT_CATEGORIES = [
    "american", "italian", "french", "chinese", "japanese", "thai", "mexican",
    "indian", "mediterranean", "seafood", "steakhouse", "bbq", "vegan",
    "fusion", "continental", "delicatessen", "bakery", "pizzeria",
]

#: US cities with their state and a zip-code prefix used for consistency.
US_CITIES = [
    ("portland", "or", "972"),
    ("seattle", "wa", "981"),
    ("san francisco", "ca", "941"),
    ("los angeles", "ca", "900"),
    ("new york", "ny", "100"),
    ("boston", "ma", "021"),
    ("chicago", "il", "606"),
    ("austin", "tx", "787"),
    ("denver", "co", "802"),
    ("atlanta", "ga", "303"),
    ("miami", "fl", "331"),
    ("philadelphia", "pa", "191"),
    ("phoenix", "az", "850"),
    ("minneapolis", "mn", "554"),
    ("nashville", "tn", "372"),
    ("providence", "ri", "029"),
]

#: Street names used by the address generator.
STREET_NAMES = [
    "oak", "maple", "pine", "cedar", "elm", "birch", "walnut", "chestnut",
    "spruce", "willow", "magnolia", "juniper", "aspen", "laurel", "hawthorne",
    "division", "burnside", "belmont", "alberta", "mississippi", "fremont",
    "killingsworth", "stark", "morrison", "salmon", "taylor", "yamhill",
    "couch", "davis", "everett", "flanders", "glisan", "hoyt", "irving",
    "johnson", "kearney", "lovejoy", "marshall", "northrup", "overton",
    "pettygrove", "quimby", "raleigh", "savier", "thurman", "upshur",
    "vaughn", "wilson", "york",
]

#: Street type suffixes.
STREET_TYPES = ["street", "avenue", "boulevard", "road", "drive", "lane", "court", "place"]

#: Compass prefixes used in Portland-style addresses.
STREET_PREFIXES = ["n", "ne", "nw", "se", "sw", ""]

#: Product brand names.
PRODUCT_BRANDS = [
    "acme", "globex", "initech", "umbrella", "stark", "wayne", "wonka",
    "tyrell", "cyberdyne", "aperture", "blackmesa", "hooli", "pied piper",
    "massive dynamic", "vandelay", "oceanic", "soylent", "virtucon",
    "monarch", "zorg", "weyland", "nakatomi", "gringotts", "duff",
]

#: Product category nouns.
PRODUCT_NOUNS = [
    "office suite", "photo editor", "antivirus", "firewall", "backup utility",
    "video converter", "audio workstation", "pdf toolkit", "disk manager",
    "password vault", "screen recorder", "file sync", "media player",
    "spreadsheet", "database studio", "web builder", "email client",
    "project planner", "accounting suite", "tax preparer", "font pack",
    "clipart library", "language tutor", "typing trainer", "encyclopedia",
    "atlas", "recipe organizer", "genealogy kit", "astronomy atlas",
    "chess trainer",
]

#: Product edition qualifiers.
PRODUCT_EDITIONS = [
    "standard", "professional", "deluxe", "premium", "home", "student",
    "enterprise", "ultimate", "basic", "plus", "gold", "platinum",
]

#: Product vendors (distinct from brand to mirror the paper's schema).
PRODUCT_VENDORS = [
    "softco", "digibyte", "megasoft", "appworks", "codehaus", "bitforge",
    "pixelpress", "cloudnine", "quantumsoft", "brightapps",
]
