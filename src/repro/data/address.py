"""Synthetic Portland home-address dataset with malformed entries.

The paper's third real-world dataset contains 1000 registered home
addresses in Portland, OR in the format::

    <number street unit, city, state, zip>

with the unit optional.  90 of the 1000 entries are malformed; the task is
to flag the malformed records (a record-level, non-pairwise error type).
Because the candidate count is small, the paper applies no prioritisation
for this dataset.

:func:`generate_address_dataset` synthesises addresses in the same format
and injects the same classes of errors the paper's motivating example
(Figure 1) describes:

* missing values (blank street, city, or zip),
* invalid city names and zip codes (misspellings / corrupted digits),
* functional-dependency violations (zip does not agree with city/state),
* non-home or fake addresses in a superficially valid format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import check_int
from repro.data import vocab
from repro.data.corruption import corrupt_zip, misspell_city
from repro.data.record import Dataset, Record

#: The error classes injected by the generator, mirroring Figure 1 of the paper.
ADDRESS_ERROR_KINDS = (
    "missing_value",
    "invalid_city",
    "invalid_zip",
    "fd_violation",
    "fake_address",
)


@dataclass(frozen=True)
class AddressDatasetConfig:
    """Configuration for :func:`generate_address_dataset`.

    Defaults reproduce the paper's cardinalities: 1000 addresses with 90
    malformed entries spread across the five error classes.

    Parameters
    ----------
    num_records:
        Total number of address records.
    num_errors:
        Number of malformed records.
    city / state / zip_prefix:
        The home city for well-formed records (Portland, OR, 972xx).
    unit_probability:
        Probability that a well-formed address includes an apartment unit.
    seed:
        Default seed used when the caller does not pass one explicitly.
    """

    num_records: int = 1000
    num_errors: int = 90
    city: str = "portland"
    state: str = "or"
    zip_prefix: str = "972"
    unit_probability: float = 0.3
    seed: Optional[int] = 13

    def __post_init__(self) -> None:
        check_int(self.num_records, "num_records", minimum=1)
        check_int(self.num_errors, "num_errors", minimum=0)
        if self.num_errors > self.num_records:
            raise ValueError(
                f"num_errors ({self.num_errors}) cannot exceed num_records ({self.num_records})"
            )


def _well_formed_fields(rng, config: AddressDatasetConfig) -> Dict[str, object]:
    number = int(rng.integers(1, 19999))
    prefix = vocab.STREET_PREFIXES[int(rng.integers(0, len(vocab.STREET_PREFIXES)))]
    street = vocab.STREET_NAMES[int(rng.integers(0, len(vocab.STREET_NAMES)))]
    street_type = vocab.STREET_TYPES[int(rng.integers(0, len(vocab.STREET_TYPES)))]
    street_full = " ".join(part for part in (prefix, street, street_type) if part)
    unit = ""
    if rng.random() < config.unit_probability:
        unit = f"apt {int(rng.integers(1, 99))}"
    zip_code = config.zip_prefix + f"{int(rng.integers(0, 100)):02d}"
    return {
        "number": str(number),
        "street": street_full,
        "unit": unit,
        "city": config.city,
        "state": config.state,
        "zip": zip_code,
    }


def _corrupt_fields(fields: Dict[str, object], kind: str, rng, config: AddressDatasetConfig) -> Dict[str, object]:
    """Apply one error class to a copy of ``fields``."""
    out = dict(fields)
    if kind == "missing_value":
        victim = ("street", "city", "zip")[int(rng.integers(0, 3))]
        out[victim] = ""
    elif kind == "invalid_city":
        out["city"] = misspell_city(str(out["city"]), rng)
        if rng.random() < 0.5:
            out["state"] = misspell_city(str(out["state"]), rng)
    elif kind == "invalid_zip":
        out["zip"] = corrupt_zip(str(out["zip"]), rng)
    elif kind == "fd_violation":
        # zip from a different city: violates zip -> (city, state).
        other_city = vocab.US_CITIES[int(rng.integers(0, len(vocab.US_CITIES)))]
        while other_city[0] == config.city:
            other_city = vocab.US_CITIES[int(rng.integers(0, len(vocab.US_CITIES)))]
        out["zip"] = other_city[2] + f"{int(rng.integers(0, 100)):02d}"
    elif kind == "fake_address":
        # Superficially valid but not a real home address (e.g. a PO box
        # rendered as a street, or an out-of-range house number).
        if rng.random() < 0.5:
            out["number"] = str(int(rng.integers(100000, 999999)))
        else:
            out["street"] = f"po box {int(rng.integers(1, 9999))}"
            out["unit"] = ""
    else:  # pragma: no cover - guarded by ADDRESS_ERROR_KINDS
        raise ValueError(f"unknown error kind {kind!r}")
    return out


def _render(fields: Dict[str, object]) -> str:
    street_part = " ".join(
        str(part) for part in (fields["number"], fields["street"], fields["unit"]) if str(part)
    )
    return f"{street_part}, {fields['city']}, {fields['state']}, {fields['zip']}"


def generate_address_dataset(
    config: Optional[AddressDatasetConfig] = None,
    seed: RandomState = None,
) -> Dataset:
    """Generate the synthetic address dataset.

    Returns
    -------
    repro.data.record.Dataset
        Records have the individual address components plus a rendered
        ``"text"`` field; ``dirty_ids`` marks the malformed records and each
        malformed record carries an ``"error_kind"`` field naming its error
        class.
    """
    config = config or AddressDatasetConfig()
    rng = ensure_rng(seed if seed is not None else derive_rng(config.seed, 1))

    records: List[Record] = []
    dirty_ids: List[int] = []

    error_positions = set(
        int(i) for i in rng.choice(config.num_records, size=config.num_errors, replace=False)
    )

    for i in range(config.num_records):
        fields = _well_formed_fields(rng, config)
        error_kind = ""
        if i in error_positions:
            error_kind = ADDRESS_ERROR_KINDS[int(rng.integers(0, len(ADDRESS_ERROR_KINDS)))]
            fields = _corrupt_fields(fields, error_kind, rng, config)
            dirty_ids.append(i)
        fields["text"] = _render(fields)
        fields["error_kind"] = error_kind
        records.append(
            Record(record_id=i, fields=fields, source="address", entity_id=None)
        )

    return Dataset(
        records=records,
        dirty_ids=frozenset(dirty_ids),
        name="address",
        metadata={
            "generator": "address",
            "num_records": config.num_records,
            "num_errors": config.num_errors,
            "paper_reference": {"records": 1000, "errors": 90},
        },
    )
