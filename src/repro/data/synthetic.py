"""Abstract synthetic pair populations for the simulation study.

The paper's simulation study (Section 6.2) does not use record text at all:
it works with "1000 candidate pairs, among which 100 pairs are true
duplicates" and directly simulates worker votes with configurable precision
and coverage.  :func:`generate_synthetic_pairs` builds that abstract
population as a :class:`~repro.data.record.Dataset` whose records carry no
meaningful fields — only gold labels — so the full crowd/estimator pipeline
can run on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import check_int
from repro.data.record import Dataset, Record


@dataclass(frozen=True)
class SyntheticPairConfig:
    """Configuration for :func:`generate_synthetic_pairs`.

    Defaults match the paper's simulation population: 1000 candidate items
    of which 100 are true errors.

    Parameters
    ----------
    num_items:
        Total number of candidate items (pairs).
    num_errors:
        Number of items that are truly erroneous.
    shuffle:
        When ``True`` the dirty items are scattered uniformly at random;
        when ``False`` the first ``num_errors`` items are the dirty ones
        (useful for deterministic unit tests).
    seed:
        Default seed used when the caller does not pass one explicitly.
    """

    num_items: int = 1000
    num_errors: int = 100
    shuffle: bool = True
    seed: Optional[int] = 17

    def __post_init__(self) -> None:
        check_int(self.num_items, "num_items", minimum=1)
        check_int(self.num_errors, "num_errors", minimum=0)
        if self.num_errors > self.num_items:
            raise ValueError(
                f"num_errors ({self.num_errors}) cannot exceed num_items ({self.num_items})"
            )


def generate_synthetic_pairs(
    config: Optional[SyntheticPairConfig] = None,
    seed: RandomState = None,
) -> Dataset:
    """Generate an abstract candidate-item population with gold labels.

    Returns
    -------
    repro.data.record.Dataset
        ``num_items`` records; ``dirty_ids`` holds the ``num_errors`` truly
        erroneous items.
    """
    config = config or SyntheticPairConfig()
    rng = ensure_rng(seed if seed is not None else derive_rng(config.seed, 1))

    if config.shuffle:
        dirty = rng.choice(config.num_items, size=config.num_errors, replace=False)
        dirty_ids = frozenset(int(i) for i in dirty)
    else:
        dirty_ids = frozenset(range(config.num_errors))

    records = [
        Record(record_id=i, fields={"index": i}, source="synthetic", entity_id=None)
        for i in range(config.num_items)
    ]
    return Dataset(
        records=records,
        dirty_ids=dirty_ids,
        name="synthetic-pairs",
        metadata={
            "generator": "synthetic",
            "num_items": config.num_items,
            "num_errors": config.num_errors,
        },
    )
