"""Synthetic Amazon/Google product-matching dataset.

The paper's second real-world dataset matches 2336 Amazon product records
against 1363 Google product records::

    Product(retailer, id, name1, name2, vendor, price)

Each product has at most one match on the other side.  After the similarity
prioritisation (normalised edit-distance similarity in (0.4, 0.7)) the
candidate set contains 13022 pairs of which 607 are true matches.  Matching
is harder than the restaurant task, so workers make more mistakes — in
particular more false negatives.

:func:`generate_product_dataset` synthesises a catalogue with the same
two-source structure and matching cardinalities.  Matched products share a
perturbed name (edition renamings, vendor prefixes, typos) and a perturbed
price so that matched pairs land in the ambiguous similarity band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.rng import RandomState, derive_rng, ensure_rng
from repro.common.validation import check_int, check_probability
from repro.data import vocab
from repro.data.corruption import abbreviate_tokens, introduce_typos, perturb_numeric, shuffle_tokens
from repro.data.record import Dataset, Record


@dataclass(frozen=True)
class ProductDatasetConfig:
    """Configuration for :func:`generate_product_dataset`.

    Defaults reproduce the paper's cardinalities: 2336 Amazon records, 1363
    Google records, and 607 matched products (each matched at most once).

    Parameters
    ----------
    num_amazon / num_google:
        Number of records contributed by each retailer.
    num_matches:
        Number of real-world products present in both catalogues.
    typo_rate:
        Character-level typo rate applied to the Google copy of a matched
        product (matching is harder than for restaurants, so the default is
        higher than the restaurant generator's).
    abbreviation_probability / token_shuffle_probability:
        Name perturbation intensities for matched copies.
    price_jitter:
        Relative price difference between the two copies of a match.
    seed:
        Default seed used when the caller does not pass one explicitly.
    """

    num_amazon: int = 2336
    num_google: int = 1363
    num_matches: int = 607
    typo_rate: float = 0.06
    abbreviation_probability: float = 0.5
    token_shuffle_probability: float = 0.6
    price_jitter: float = 0.15
    seed: Optional[int] = 11

    def __post_init__(self) -> None:
        check_int(self.num_amazon, "num_amazon", minimum=1)
        check_int(self.num_google, "num_google", minimum=1)
        check_int(self.num_matches, "num_matches", minimum=0)
        check_probability(self.typo_rate, "typo_rate")
        check_probability(self.abbreviation_probability, "abbreviation_probability")
        check_probability(self.token_shuffle_probability, "token_shuffle_probability")
        check_probability(self.price_jitter, "price_jitter")
        if self.num_matches > min(self.num_amazon, self.num_google):
            raise ValueError(
                "num_matches cannot exceed the smaller catalogue size "
                f"({self.num_matches} > {min(self.num_amazon, self.num_google)})"
            )


def _make_product_name(rng) -> str:
    brand = vocab.PRODUCT_BRANDS[int(rng.integers(0, len(vocab.PRODUCT_BRANDS)))]
    noun = vocab.PRODUCT_NOUNS[int(rng.integers(0, len(vocab.PRODUCT_NOUNS)))]
    edition = vocab.PRODUCT_EDITIONS[int(rng.integers(0, len(vocab.PRODUCT_EDITIONS)))]
    version = int(rng.integers(1, 12))
    return f"{brand} {noun} {edition} {version}"


def _google_copy_name(name: str, rng, config: ProductDatasetConfig) -> str:
    """Perturb an Amazon product name into its Google-catalogue form."""
    if rng.random() < config.token_shuffle_probability:
        name = shuffle_tokens(name, rng)
    name = abbreviate_tokens(name, rng, probability=config.abbreviation_probability)
    name = introduce_typos(name, rng, rate=config.typo_rate, max_typos=3)
    return name


def generate_product_dataset(
    config: Optional[ProductDatasetConfig] = None,
    seed: RandomState = None,
) -> Dataset:
    """Generate the synthetic Amazon/Google product dataset.

    Returns
    -------
    repro.data.record.Dataset
        Records carry ``source`` set to ``"amazon"`` or ``"google"`` and
        matched products share an ``entity_id``.
    """
    config = config or ProductDatasetConfig()
    rng = ensure_rng(seed if seed is not None else derive_rng(config.seed, 1))

    records: List[Record] = []
    next_entity = 0

    def _vendor() -> str:
        return vocab.PRODUCT_VENDORS[int(rng.integers(0, len(vocab.PRODUCT_VENDORS)))]

    # Matched products first: one Amazon copy and one Google copy per entity.
    matched_names: List[str] = []
    for _ in range(config.num_matches):
        name = _make_product_name(rng)
        matched_names.append(name)
        price = float(rng.uniform(9.99, 499.99))
        entity_id = next_entity
        next_entity += 1
        records.append(
            Record(
                record_id=len(records),
                fields={
                    "retailer": "amazon",
                    "name1": name,
                    "name2": "",
                    "vendor": _vendor(),
                    "price": round(price, 2),
                },
                source="amazon",
                entity_id=entity_id,
            )
        )
        records.append(
            Record(
                record_id=len(records),
                fields={
                    "retailer": "google",
                    "name1": _google_copy_name(name, rng, config),
                    "name2": "",
                    "vendor": _vendor(),
                    "price": round(perturb_numeric(price, rng, relative=config.price_jitter), 2),
                },
                source="google",
                entity_id=entity_id,
            )
        )

    # Unmatched products fill out the two catalogues.
    for source, total in (("amazon", config.num_amazon), ("google", config.num_google)):
        already = sum(1 for r in records if r.source == source)
        for _ in range(total - already):
            records.append(
                Record(
                    record_id=len(records),
                    fields={
                        "retailer": source,
                        "name1": _make_product_name(rng),
                        "name2": "",
                        "vendor": _vendor(),
                        "price": round(float(rng.uniform(9.99, 499.99)), 2),
                    },
                    source=source,
                    entity_id=next_entity,
                )
            )
            next_entity += 1

    return Dataset(
        records=records,
        dirty_ids=frozenset(),
        name="product",
        metadata={
            "generator": "product",
            "num_amazon": config.num_amazon,
            "num_google": config.num_google,
            "num_matches": config.num_matches,
            "paper_reference": {
                "amazon_records": 2336,
                "google_records": 1363,
                "candidate_pairs": 13022,
                "candidate_duplicates": 607,
            },
        },
    )
