"""Record and dataset abstractions with gold-standard bookkeeping.

A :class:`Record` is an immutable bag of named fields plus a stable integer
identifier.  A :class:`Dataset` is an ordered collection of records with an
optional *gold standard*: the set of record ids that are truly erroneous
(``R_dirty`` in the paper).  The gold standard is only used by experiment
harnesses to score estimators — the estimators themselves never see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.common.exceptions import ValidationError


@dataclass(frozen=True)
class Record:
    """A single data record.

    Parameters
    ----------
    record_id:
        Stable, dataset-unique integer identifier.
    fields:
        Mapping from field name to value.  Values are typically strings but
        any hashable value is accepted.
    source:
        Optional provenance tag (e.g. ``"amazon"`` or ``"google"`` for the
        product dataset).
    entity_id:
        Optional identifier of the real-world entity the record describes.
        Two records with the same ``entity_id`` are duplicates of each
        other; ``None`` means the entity is unknown/unique.
    """

    record_id: int
    fields: Mapping[str, object]
    source: Optional[str] = None
    entity_id: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", dict(self.fields))

    def get(self, name: str, default: object = None) -> object:
        """Return the value of field ``name`` or ``default`` if absent."""
        return self.fields.get(name, default)

    def __getitem__(self, name: str) -> object:
        return self.fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def text(self, field_names: Optional[Sequence[str]] = None, *, separator: str = " ") -> str:
        """Render the record as a single normalised text string.

        Used by the similarity functions in :mod:`repro.er.similarity`.

        Parameters
        ----------
        field_names:
            Fields to include, in order.  Defaults to every field in
            insertion order.
        separator:
            String inserted between field values.
        """
        names = list(field_names) if field_names is not None else list(self.fields)
        parts = []
        for name in names:
            value = self.fields.get(name)
            if value is None:
                continue
            parts.append(str(value))
        return separator.join(parts).strip().lower()

    def replace(self, **updates: object) -> "Record":
        """Return a copy of this record with the given fields replaced."""
        new_fields = dict(self.fields)
        new_fields.update(updates)
        return Record(
            record_id=self.record_id,
            fields=new_fields,
            source=self.source,
            entity_id=self.entity_id,
        )


@dataclass
class Dataset:
    """An ordered collection of :class:`Record` objects with a gold standard.

    Parameters
    ----------
    records:
        The records, in a stable order.
    dirty_ids:
        Record ids that are truly erroneous (the gold standard ``R_dirty``).
        May be empty for datasets without ground truth.
    name:
        Human-readable dataset name used in reports.
    metadata:
        Free-form extra information (generator configuration, counts, ...).
    """

    records: List[Record]
    dirty_ids: FrozenSet[int] = frozenset()
    name: str = "dataset"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.records = list(self.records)
        self.dirty_ids = frozenset(self.dirty_ids)
        ids = [r.record_id for r in self.records]
        if len(set(ids)) != len(ids):
            raise ValidationError(f"dataset {self.name!r} contains duplicate record ids")
        known = set(ids)
        unknown = self.dirty_ids - known
        if unknown:
            raise ValidationError(
                f"dirty_ids reference unknown record ids: {sorted(unknown)[:5]}"
            )
        self._by_id = {r.record_id: r for r in self.records}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, record_id: int) -> Record:
        try:
            return self._by_id[record_id]
        except KeyError:
            raise KeyError(f"no record with id {record_id} in dataset {self.name!r}") from None

    @property
    def record_ids(self) -> List[int]:
        """The record ids, in dataset order."""
        return [r.record_id for r in self.records]

    @property
    def num_dirty(self) -> int:
        """``|R_dirty|`` — the true number of erroneous records."""
        return len(self.dirty_ids)

    @property
    def error_rate(self) -> float:
        """Fraction of records that are truly erroneous."""
        if not self.records:
            return 0.0
        return self.num_dirty / len(self.records)

    def is_dirty(self, record_id: int) -> bool:
        """Return ``True`` if the gold standard marks ``record_id`` as erroneous."""
        return record_id in self.dirty_ids

    def ground_truth_vector(self) -> List[int]:
        """Return the ground-truth vector ``E`` aligned with :attr:`records`.

        Entry ``i`` is 1 when record ``i`` is dirty and 0 otherwise.  This is
        the vector the switch-estimation problem (Problem 2 in the paper)
        measures consensus against.
        """
        return [1 if r.record_id in self.dirty_ids else 0 for r in self.records]

    def subset(self, record_ids: Iterable[int], *, name: Optional[str] = None) -> "Dataset":
        """Return a new :class:`Dataset` restricted to ``record_ids``.

        The relative order of records is preserved and the gold standard is
        filtered accordingly.
        """
        keep = set(record_ids)
        records = [r for r in self.records if r.record_id in keep]
        dirty = {rid for rid in self.dirty_ids if rid in keep}
        return Dataset(
            records=records,
            dirty_ids=dirty,
            name=name or f"{self.name}-subset",
            metadata=dict(self.metadata),
        )

    def by_source(self, source: str) -> "Dataset":
        """Return the subset of records whose provenance matches ``source``."""
        records = [r for r in self.records if r.source == source]
        keep = {r.record_id for r in records}
        return Dataset(
            records=records,
            dirty_ids=self.dirty_ids & keep,
            name=f"{self.name}-{source}",
            metadata=dict(self.metadata),
        )

    def summary(self) -> Dict[str, object]:
        """Return a small dictionary describing the dataset (for reports)."""
        return {
            "name": self.name,
            "num_records": len(self.records),
            "num_dirty": self.num_dirty,
            "error_rate": self.error_rate,
        }
