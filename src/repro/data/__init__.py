"""Dataset substrate: records, gold standards and synthetic generators.

The estimators in :mod:`repro.core` only ever see worker votes, but the
experiments need realistic datasets to vote *about*.  This package provides

* :class:`~repro.data.record.Record` / :class:`~repro.data.record.Dataset`
  — the record-level abstraction with gold-standard error labels,
* :class:`~repro.data.pairs.PairDataset` — the pair-level abstraction used
  for entity resolution (records are *pairs* of base records and "dirty"
  means "duplicate"),
* synthetic generators reproducing the three evaluation datasets of the
  paper at matching cardinalities:

  ==========  =========================================  =====================
  generator   paper dataset                              key cardinalities
  ==========  =========================================  =====================
  restaurant  Fodors/Zagat restaurant de-duplication     858 records, 106
                                                         duplicate pairs, 1264
                                                         candidate pairs / 12
                                                         true duplicates
  product     Amazon x Google product matching           2336 x 1363 records,
                                                         13022 candidate pairs
                                                         / 607 true duplicates
  address     Portland, OR registered home addresses     1000 records, 90
                                                         malformed entries
  ==========  =========================================  =====================

* :mod:`~repro.data.corruption` — reusable string/record perturbation
  primitives used by the generators to create realistic duplicates and
  malformed entries.
"""

from repro.data.address import AddressDatasetConfig, generate_address_dataset
from repro.data.corruption import (
    drop_field,
    introduce_typos,
    perturb_numeric,
    swap_fields,
    abbreviate_tokens,
    shuffle_tokens,
)
from repro.data.pairs import CandidatePair, PairDataset
from repro.data.product import ProductDatasetConfig, generate_product_dataset
from repro.data.record import Dataset, Record
from repro.data.restaurant import RestaurantDatasetConfig, generate_restaurant_dataset
from repro.data.synthetic import SyntheticPairConfig, generate_synthetic_pairs

__all__ = [
    "Record",
    "Dataset",
    "CandidatePair",
    "PairDataset",
    "RestaurantDatasetConfig",
    "generate_restaurant_dataset",
    "ProductDatasetConfig",
    "generate_product_dataset",
    "AddressDatasetConfig",
    "generate_address_dataset",
    "SyntheticPairConfig",
    "generate_synthetic_pairs",
    "introduce_typos",
    "abbreviate_tokens",
    "shuffle_tokens",
    "drop_field",
    "swap_fields",
    "perturb_numeric",
]
