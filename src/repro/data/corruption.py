"""String and record perturbation primitives used by the dataset generators.

The synthetic datasets need realistic *near*-duplicates (for the restaurant
and product generators) and realistic format errors (for the address
generator).  The functions here implement the individual perturbations; the
generators compose them.

All functions take the random generator explicitly so the generators stay
deterministic for a given seed.
"""

from __future__ import annotations

import string
from typing import Dict, Optional, Sequence

import numpy as np

from repro.common.rng import RandomState, ensure_rng
from repro.common.validation import check_probability

_ALPHABET = string.ascii_lowercase

#: Common token abbreviations applied by :func:`abbreviate_tokens`.
DEFAULT_ABBREVIATIONS: Dict[str, str] = {
    "street": "st",
    "avenue": "ave",
    "boulevard": "blvd",
    "road": "rd",
    "drive": "dr",
    "suite": "ste",
    "apartment": "apt",
    "north": "n",
    "south": "s",
    "east": "e",
    "west": "w",
    "restaurant": "rest",
    "cafe": "cafe",
    "and": "&",
    "corporation": "corp",
    "incorporated": "inc",
    "company": "co",
    "edition": "ed",
    "professional": "pro",
    "deluxe": "dlx",
    "version": "v",
}


def introduce_typos(
    text: str,
    rng: RandomState = None,
    *,
    rate: float = 0.05,
    max_typos: Optional[int] = None,
) -> str:
    """Introduce character-level typos into ``text``.

    Each typo is one of: substitution, deletion, insertion, or adjacent
    transposition, chosen uniformly.  The expected number of typos is
    ``rate * len(text)`` capped at ``max_typos``.

    Parameters
    ----------
    text:
        Input string.
    rng:
        Seed or generator.
    rate:
        Per-character probability of being the site of a typo.
    max_typos:
        Optional hard cap on the number of typos applied.
    """
    rng = ensure_rng(rng)
    check_probability(rate, "rate")
    if not text:
        return text
    chars = list(text)
    n_typos = int(rng.binomial(len(chars), rate))
    if max_typos is not None:
        n_typos = min(n_typos, int(max_typos))
    for _ in range(n_typos):
        if not chars:
            break
        pos = int(rng.integers(0, len(chars)))
        kind = int(rng.integers(0, 4))
        if kind == 0:  # substitution
            chars[pos] = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
        elif kind == 1:  # deletion
            del chars[pos]
        elif kind == 2:  # insertion
            chars.insert(pos, _ALPHABET[int(rng.integers(0, len(_ALPHABET)))])
        else:  # transposition with the next character
            if pos + 1 < len(chars):
                chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
    return "".join(chars)


def abbreviate_tokens(
    text: str,
    rng: RandomState = None,
    *,
    probability: float = 0.5,
    abbreviations: Optional[Dict[str, str]] = None,
) -> str:
    """Replace well-known tokens with their abbreviations.

    ``"ritz carlton cafe buckhead street"`` may become
    ``"ritz carlton cafe buckhead st"``.  Each abbreviable token is replaced
    independently with ``probability``.
    """
    rng = ensure_rng(rng)
    check_probability(probability, "probability")
    table = DEFAULT_ABBREVIATIONS if abbreviations is None else abbreviations
    tokens = text.split()
    out = []
    for token in tokens:
        key = token.lower().strip(",.")
        if key in table and rng.random() < probability:
            out.append(table[key])
        else:
            out.append(token)
    return " ".join(out)


def shuffle_tokens(text: str, rng: RandomState = None, *, max_moves: int = 2) -> str:
    """Reorder tokens, e.g. ``"cafe ritz-carlton buckhead"`` for
    ``"ritz-carlton cafe buckhead"``.

    Performs up to ``max_moves`` random adjacent-block rotations, which keeps
    the result recognisably similar to the original (the generators rely on
    the perturbed string still clearing the candidate-similarity band).
    """
    rng = ensure_rng(rng)
    tokens = text.split()
    if len(tokens) < 2:
        return text
    moves = int(rng.integers(1, max_moves + 1))
    for _ in range(moves):
        i = int(rng.integers(0, len(tokens) - 1))
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
    return " ".join(tokens)


def drop_field(
    fields: Dict[str, object],
    rng: RandomState = None,
    *,
    candidates: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Return a copy of ``fields`` with one field blanked out (missing value).

    Parameters
    ----------
    fields:
        Record fields.
    rng:
        Seed or generator.
    candidates:
        Field names eligible for dropping; defaults to every field.
    """
    rng = ensure_rng(rng)
    names = list(candidates) if candidates else list(fields)
    if not names:
        return dict(fields)
    victim = names[int(rng.integers(0, len(names)))]
    out = dict(fields)
    out[victim] = ""
    return out


def swap_fields(
    fields: Dict[str, object],
    first: str,
    second: str,
) -> Dict[str, object]:
    """Return a copy of ``fields`` with the values of two fields swapped."""
    out = dict(fields)
    out[first], out[second] = out.get(second), out.get(first)
    return out


def perturb_numeric(
    value: float,
    rng: RandomState = None,
    *,
    relative: float = 0.1,
    minimum: float = 0.0,
) -> float:
    """Perturb a numeric value multiplicatively by up to ``relative``.

    Used to vary product prices between the Amazon and Google copies of the
    same product.
    """
    rng = ensure_rng(rng)
    factor = 1.0 + float(rng.uniform(-relative, relative))
    return max(minimum, float(value) * factor)


def corrupt_zip(zip_code: str, rng: RandomState = None) -> str:
    """Corrupt a 5-digit zip code (wrong digit, truncated, or letters)."""
    rng = ensure_rng(rng)
    kind = int(rng.integers(0, 3))
    if kind == 0 and len(zip_code) >= 1:  # wrong digit
        pos = int(rng.integers(0, len(zip_code)))
        digit = str(int(rng.integers(0, 10)))
        return zip_code[:pos] + digit + zip_code[pos + 1 :]
    if kind == 1:  # truncated
        return zip_code[: max(1, len(zip_code) - int(rng.integers(1, 3)))]
    # letters smuggled in
    pos = int(rng.integers(0, max(1, len(zip_code))))
    letter = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
    return zip_code[:pos] + letter + zip_code[pos + 1 :]


def misspell_city(city: str, rng: RandomState = None) -> str:
    """Misspell a city/state name with one or two character typos."""
    rng = ensure_rng(rng)
    return introduce_typos(city, rng, rate=0.25, max_typos=2) or city
