"""``repro.serving`` — the multi-tenant serving layer, by its public name.

This module is the stable import surface for the serving stack; the
implementation lives next to the session machinery it builds on
(:mod:`repro.streaming.serving` and :mod:`repro.streaming.store`).

Quick use::

    from repro.serving import DirectorySessionStore, EstimationService

    service = EstimationService(DirectorySessionStore("sessions"), max_active=32)
    service.create_session("tenant-a", item_ids=range(100), estimators=["chao92"])
    service.ingest("tenant-a", [{0: 1, 3: 0}], source="loader", sequence=1)
    print(service.estimates("tenant-a")["chao92"].remaining)

See ``docs/serving.md`` for the full tour (idempotent ingestion, cached
estimates, LRU eviction, bit-identical snapshot/restore) and
``docs/persistence.md`` for the log-structured store underneath it: the
per-session write-ahead log, size-triggered compaction, and the
hash-sharded :class:`ShardedEstimationService` front.
"""

from repro.streaming.serving import (
    DEFAULT_COMPACT_BYTES,
    EstimationService,
    IngestResult,
    ShardedEstimationService,
    replay_batch_record,
    shard_index,
)
from repro.streaming.session import (
    SNAPSHOT_FORMAT_VERSION,
    SessionSnapshot,
    read_snapshot,
    write_snapshot,
)
from repro.streaming.store import (
    DirectorySessionStore,
    MemorySessionStore,
    SessionStore,
    UnknownSessionError,
    check_session_name,
)
from repro.streaming.wal import (
    WAL_FORMAT_VERSION,
    BatchRecord,
    CreateRecord,
    SessionLog,
)

__all__ = [
    "EstimationService",
    "ShardedEstimationService",
    "IngestResult",
    "SessionSnapshot",
    "SNAPSHOT_FORMAT_VERSION",
    "read_snapshot",
    "write_snapshot",
    "SessionStore",
    "MemorySessionStore",
    "DirectorySessionStore",
    "UnknownSessionError",
    "check_session_name",
    "SessionLog",
    "CreateRecord",
    "BatchRecord",
    "WAL_FORMAT_VERSION",
    "DEFAULT_COMPACT_BYTES",
    "replay_batch_record",
    "shard_index",
]
