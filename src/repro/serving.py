"""``repro.serving`` — the multi-tenant serving layer, by its public name.

This module is the stable import surface for the serving stack; the
implementation lives next to the session machinery it builds on
(:mod:`repro.streaming.serving` and :mod:`repro.streaming.store`).

Quick use::

    from repro.serving import DirectorySessionStore, EstimationService

    service = EstimationService(DirectorySessionStore("sessions"), max_active=32)
    service.create_session("tenant-a", item_ids=range(100), estimators=["chao92"])
    service.ingest("tenant-a", [{0: 1, 3: 0}], source="loader", sequence=1)
    print(service.estimates("tenant-a")["chao92"].remaining)

See ``docs/serving.md`` for the full tour: idempotent ingestion, cached
estimates, LRU eviction and bit-identical snapshot/restore.
"""

from repro.streaming.serving import EstimationService, IngestResult
from repro.streaming.session import (
    SNAPSHOT_FORMAT_VERSION,
    SessionSnapshot,
    read_snapshot,
    write_snapshot,
)
from repro.streaming.store import (
    DirectorySessionStore,
    MemorySessionStore,
    SessionStore,
    check_session_name,
)

__all__ = [
    "EstimationService",
    "IngestResult",
    "SessionSnapshot",
    "SNAPSHOT_FORMAT_VERSION",
    "read_snapshot",
    "write_snapshot",
    "SessionStore",
    "MemorySessionStore",
    "DirectorySessionStore",
    "check_session_name",
]
