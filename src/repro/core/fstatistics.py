"""f-statistics (the "data fingerprint") used by the species estimators.

In species estimation, ``f_j`` is the number of distinct observed items
that occur exactly ``j`` times in the sample.  ``f_1`` (singletons) is the
key quantity: the Good–Turing estimate of the unseen probability mass is
``f_1 / n``, and Chao92 uses it to estimate the sample coverage.

For the data-quality problem (Section 3.2 of the paper) the "occurrences"
of an error are its positive (dirty) votes, so the fingerprint is built
from the per-item positive-vote counts ``n_i^+`` and ``n`` is the total
number of positive votes ``n^+``.  The switch estimator builds a different
fingerprint (over switch rediscoveries); both are represented by the same
:class:`Fingerprint` container.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.common.exceptions import ValidationError
from repro.crowd.response_matrix import ResponseMatrix


@dataclass(frozen=True)
class Fingerprint:
    """The frequency-of-frequencies summary of a sample.

    Attributes
    ----------
    frequencies:
        Mapping ``j -> f_j`` for ``j >= 1``; absent keys mean ``f_j = 0``.
    num_observations:
        ``n`` — the total number of observations the fingerprint summarises.
        For the vote fingerprint this is the number of positive votes; for
        the switch fingerprint it is the adjusted vote count ``n_switch``.
    """

    frequencies: Mapping[int, int] = field(default_factory=dict)
    num_observations: int = 0

    def __post_init__(self) -> None:
        cleaned: Dict[int, int] = {}
        for j, count in dict(self.frequencies).items():
            j = int(j)
            count = int(count)
            if j < 1:
                raise ValidationError(f"fingerprint keys must be >= 1, got {j}")
            if count < 0:
                raise ValidationError(f"fingerprint counts must be >= 0, got f_{j} = {count}")
            if count:
                cleaned[j] = count
        object.__setattr__(self, "frequencies", cleaned)
        if self.num_observations < 0:
            raise ValidationError("num_observations must be >= 0")

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def f(self, j: int) -> int:
        """Return ``f_j`` (0 when no item was observed exactly ``j`` times)."""
        return int(self.frequencies.get(int(j), 0))

    @property
    def singletons(self) -> int:
        """``f_1`` — items observed exactly once."""
        return self.f(1)

    @property
    def doubletons(self) -> int:
        """``f_2`` — items observed exactly twice."""
        return self.f(2)

    @property
    def distinct(self) -> int:
        """``c`` — the number of distinct observed items (``sum_j f_j``)."""
        return int(sum(self.frequencies.values()))

    @property
    def total_occurrences(self) -> int:
        """``sum_j j * f_j`` — occurrences accounted for by the fingerprint.

        For the plain vote fingerprint this equals :attr:`num_observations`;
        the switch fingerprint deliberately breaks that equality (see
        Section 4.2 of the paper), which is why the two are stored
        separately.
        """
        return int(sum(j * count for j, count in self.frequencies.items()))

    @property
    def max_frequency(self) -> int:
        """The largest observed occurrence count."""
        return max(self.frequencies) if self.frequencies else 0

    def shifted(self, shift: int) -> "Fingerprint":
        """Return the fingerprint shifted by ``shift`` (vChao92, Section 3.3).

        Shifting by ``s`` treats ``f_{1+s}`` as the new ``f_1`` (etc.) and
        removes the first ``s`` frequency classes from the observation
        count: ``n^{+,s} = n^+ - sum_{i<=s} f_i``.

        Parameters
        ----------
        shift:
            Non-negative integer shift ``s``; 0 returns ``self`` unchanged.
        """
        shift = int(shift)
        if shift < 0:
            raise ValidationError(f"shift must be >= 0, got {shift}")
        if shift == 0:
            return self
        removed = sum(self.f(i) for i in range(1, shift + 1))
        new_frequencies = {
            j - shift: count for j, count in self.frequencies.items() if j > shift
        }
        new_n = max(0, self.num_observations - removed)
        return Fingerprint(frequencies=new_frequencies, num_observations=new_n)

    def as_dict(self) -> Dict[int, int]:
        """Return a plain ``{j: f_j}`` dictionary copy."""
        return dict(self.frequencies)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        head = {j: self.f(j) for j in sorted(self.frequencies)[:4]}
        return (
            f"Fingerprint(distinct={self.distinct}, n={self.num_observations}, head={head})"
        )


class IncrementalFingerprint:
    """Mutable frequency-of-frequencies with O(1) per-observation updates.

    The streaming estimation session cannot afford to rebuild a
    :class:`Fingerprint` from the full per-item count vector after every
    vote.  This tracker maintains the ``j -> f_j`` table directly: when an
    item moves from occurrence class ``old`` to class ``new`` one counter
    is decremented and one incremented, so an update costs O(1) regardless
    of ``N``.  :meth:`snapshot` materialises an immutable
    :class:`Fingerprint` holding exactly the integers a batch rebuild
    would produce — and caches it until the next mutation, so repeated
    estimate reads between updates (a dashboard polling a
    :class:`~repro.streaming.StreamingSession`) stop re-copying and
    re-validating the frequency table: they are O(1) and return the same
    object.
    """

    __slots__ = ("_frequencies", "num_observations", "_snapshot_cache", "version")

    def __init__(self) -> None:
        self._frequencies: Dict[int, int] = {}
        self.num_observations = 0
        self._snapshot_cache: Optional[Fingerprint] = None
        #: Monotonic mutation counter.  Consumers that cache derived values
        #: (the serving layer's estimate cache) compare versions instead of
        #: frequency tables.
        self.version = 0

    def reclassify(self, old_count: int, new_count: int) -> None:
        """Move one item from occurrence class ``old_count`` to ``new_count``.

        Class 0 is "unobserved" and is not stored; moving from or to it
        adds or removes the item from the fingerprint.
        """
        if old_count == new_count:
            return
        self._snapshot_cache = None
        self.version += 1
        if old_count > 0:
            remaining = self._frequencies[old_count] - 1
            if remaining:
                self._frequencies[old_count] = remaining
            else:
                del self._frequencies[old_count]
        if new_count > 0:
            self._frequencies[new_count] = self._frequencies.get(new_count, 0) + 1

    def add_observations(self, count: int = 1) -> None:
        """Grow the observation count ``n`` by ``count``."""
        count = int(count)
        if count:
            self._snapshot_cache = None
            self.version += 1
            self.num_observations += count

    def snapshot(self, num_observations: Optional[int] = None) -> Fingerprint:
        """An immutable :class:`Fingerprint` of the current table.

        Cached until the next :meth:`reclassify` / :meth:`add_observations`
        mutation (per requested observation count), so repeated reads
        between updates cost O(1) and return the identical object.

        Parameters
        ----------
        num_observations:
            Override for ``n``.  The switch tracker maintains three
            fingerprints (all / positive / negative switches) that share
            the single adjusted count ``n_switch`` and passes it here.
        """
        resolved = (
            self.num_observations if num_observations is None else int(num_observations)
        )
        cached = self._snapshot_cache
        if cached is not None and cached.num_observations == resolved:
            return cached
        snapshot = Fingerprint(
            frequencies=dict(self._frequencies),
            num_observations=resolved,
        )
        self._snapshot_cache = snapshot
        return snapshot

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe serialisation of the tracker (snapshot codec).

        Frequency-class keys become strings because JSON objects cannot
        carry integer keys; every value is an exact Python integer, so a
        round trip through :meth:`from_state_dict` is bit-identical.
        """
        return {
            "frequencies": {str(j): int(count) for j, count in self._frequencies.items()},
            "num_observations": int(self.num_observations),
        }

    @classmethod
    def from_state_dict(cls, payload: Mapping[str, object]) -> "IncrementalFingerprint":
        """Rebuild a tracker from :meth:`state_dict` output."""
        tracker = cls()
        frequencies = payload.get("frequencies", {})
        if not isinstance(frequencies, Mapping):
            raise ValidationError("fingerprint state 'frequencies' must be a mapping")
        for j, count in frequencies.items():
            j, count = int(j), int(count)
            if j < 1 or count < 0:
                raise ValidationError(
                    f"invalid fingerprint state entry f_{j} = {count}"
                )
            if count:
                tracker._frequencies[j] = count
        tracker.num_observations = int(payload.get("num_observations", 0))
        if tracker.num_observations < 0:
            raise ValidationError("num_observations must be >= 0")
        return tracker

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"IncrementalFingerprint({self.snapshot()!r})"


def fingerprint_from_counts(
    counts: Iterable[int],
    num_observations: Optional[int] = None,
) -> Fingerprint:
    """Build a fingerprint from per-item occurrence counts.

    Parameters
    ----------
    counts:
        Occurrence count of every item; zeros are ignored (unseen items do
        not contribute to the fingerprint).
    num_observations:
        ``n``; defaults to ``sum(counts)``.

    Returns
    -------
    Fingerprint
    """
    counts = [int(c) for c in counts]
    if any(c < 0 for c in counts):
        raise ValidationError("occurrence counts must be non-negative")
    frequency_of = Counter(c for c in counts if c > 0)
    total = sum(counts)
    return Fingerprint(
        frequencies=dict(frequency_of),
        num_observations=int(total if num_observations is None else num_observations),
    )


def positive_vote_fingerprint(
    matrix: ResponseMatrix,
    upto: Optional[int] = None,
) -> Fingerprint:
    """The fingerprint the Chao92-style estimators use (Section 3.2).

    Items are "species", occurrences are positive (dirty) votes, and ``n``
    is the total number of positive votes ``n^+`` — negative votes are
    no-ops under the paper's no-false-positive framing.

    Parameters
    ----------
    matrix:
        The worker-response matrix.
    upto:
        Use only the first ``upto`` columns.
    """
    positives = matrix.positive_counts(upto)
    return fingerprint_from_counts(positives.tolist())


def fingerprints_from_count_table(counts_table: np.ndarray) -> "list[Fingerprint]":
    """One fingerprint per row of an ``(m, N)`` per-item count table.

    Sweep implementations that also need the raw counts (nominal or
    majority tallies share the same table) use this to avoid recomputing
    the table per consumer.
    """
    return [fingerprint_from_counts(row.tolist()) for row in counts_table]


def positive_vote_fingerprints(
    matrix: ResponseMatrix,
    checkpoints: Iterable[int],
) -> "list[Fingerprint]":
    """Positive-vote fingerprints at every checkpoint prefix.

    Equivalent to ``[positive_vote_fingerprint(matrix, cp) for cp in
    checkpoints]`` but built from the matrix's incremental per-item
    positive-count deltas, so the vote matrix is scanned once for the whole
    sweep.
    """
    return fingerprints_from_count_table(matrix.positive_counts_at(list(checkpoints)))


def fingerprint_entropy(fingerprint: Fingerprint) -> float:
    """Shannon entropy (nats) of the occurrence-count distribution.

    Not used by the paper's estimators; provided as a diagnostic for the
    ablation benchmarks (highly skewed fingerprints are where Chao92's
    coefficient-of-variation correction matters most).
    """
    counts = np.array(
        [count for count in fingerprint.frequencies.values()], dtype=float
    )
    if counts.size == 0:
        return 0.0
    p = counts / counts.sum()
    return float(-(p * np.log(p)).sum())
