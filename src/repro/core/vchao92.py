"""The vChao92 estimator (V-CHAO, Section 3.3 of the paper).

Chao92 is highly sensitive to false positives because both the observed
distinct count ``c`` and, worse, the singleton count ``f_1`` are inflated
by them (the *singleton-error entanglement*).  vChao92 mitigates this in
two ways:

1. it starts from the **majority** count ``c_majority`` instead of the
   nominal count, so a single stray positive vote does not immediately add
   a "found error", and
2. it **shifts** the frequency statistics by ``s``: ``f_{1+s}`` plays the
   role of ``f_1``, ``f_{2+s}`` of ``f_2`` and so on, with the observation
   count adjusted to ``n^{+,s} = n^+ - sum_{i<=s} f_i``.  Statistics that
   require ``1+s`` workers to agree are far less likely to be products of
   false positives.

The cost is slower convergence, a shift parameter ``s`` that is hard to
tune a priori, and the loss of the guarantee that the estimator converges
to the ground truth (the paper's motivation for the SWITCH estimator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.common.validation import check_int
from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.chao92 import (
    _coverage_from_stats,
    _pair_sum,
    _skew_from_stats,
)
from repro.core.fstatistics import Fingerprint


def _vchao92_from_stats(
    majority_count: int,
    shifted_observations: int,
    shifted_singletons: int,
    shifted_pair_sum: int,
    use_skew_correction: bool,
) -> Tuple[float, float]:
    """``(estimate, coverage)`` from the shifted sufficient statistics.

    The single arithmetic core shared by the fingerprint path and the
    cross-permutation batch fast path (identical scalar float operations,
    hence bit-identical estimates).
    """
    c = int(majority_count)
    coverage = _coverage_from_stats(shifted_singletons, shifted_observations)
    if coverage <= 0.0:
        return float(c), coverage
    estimate = c / coverage
    if use_skew_correction:
        gamma_squared = _skew_from_stats(
            c, shifted_observations, coverage, shifted_pair_sum
        )
        estimate += shifted_singletons * gamma_squared / coverage
    return float(estimate), coverage


def vchao92_components(
    fingerprint: Fingerprint,
    majority_count: int,
    *,
    shift: int = 1,
    use_skew_correction: bool = True,
) -> Tuple[float, Fingerprint, float]:
    """vChao92 estimate plus the shifted fingerprint and coverage behind it.

    Returns ``(estimate, shifted_fingerprint, coverage)`` so callers that
    also report the shifted statistics (the estimator's ``details`` dict)
    shift the fingerprint exactly once.
    """
    check_int(shift, "shift", minimum=0)
    shifted = fingerprint.shifted(shift)
    estimate, coverage = _vchao92_from_stats(
        majority_count,
        shifted.num_observations,
        shifted.singletons,
        _pair_sum(shifted) if use_skew_correction else 0,
        use_skew_correction,
    )
    return estimate, shifted, coverage


def vchao92_estimate(
    fingerprint: Fingerprint,
    majority_count: int,
    *,
    shift: int = 1,
    use_skew_correction: bool = True,
) -> float:
    """vChao92 estimate of the total number of distinct errors (Equation 6).

    Parameters
    ----------
    fingerprint:
        The positive-vote f-statistics **before** shifting.
    majority_count:
        ``c_majority`` — the number of items the majority consensus
        currently labels dirty.
    shift:
        The shift ``s`` (the paper's experiments use ``s = 1``).
    use_skew_correction:
        Include the skew correction term computed on the shifted
        fingerprint.

    Returns
    -------
    float
        The estimated total number of errors; falls back to
        ``majority_count`` when the shifted sample has zero coverage.
    """
    estimate, _, _ = vchao92_components(
        fingerprint,
        majority_count,
        shift=shift,
        use_skew_correction=use_skew_correction,
    )
    return estimate


@dataclass
class VChao92Estimator(StateEstimatorMixin):
    """Matrix-level vChao92 estimator (the paper's V-CHAO method).

    Parameters
    ----------
    shift:
        The frequency-statistic shift ``s`` (default 1, as in the paper's
        experiments).
    use_skew_correction:
        Include the coefficient-of-variation correction.
    name:
        Registry / report name.
    """

    shift: int = 1
    use_skew_correction: bool = True
    name: str = "vchao92"

    def __post_init__(self) -> None:
        check_int(self.shift, "shift", minimum=0)

    def _result_from_stats(
        self, majority: int, shifted_n: int, shifted_f1: int, shifted_pair_sum: int
    ) -> EstimateResult:
        estimate, coverage = _vchao92_from_stats(
            majority,
            shifted_n,
            shifted_f1,
            shifted_pair_sum,
            self.use_skew_correction,
        )
        return EstimateResult(
            estimate=estimate,
            observed=float(majority),
            details={
                "shift": float(self.shift),
                "coverage": coverage,
                "shifted_singletons": float(shifted_f1),
                "shifted_observations": float(shifted_n),
            },
        )

    def _result(self, fingerprint: Fingerprint, majority: int) -> EstimateResult:
        shifted = fingerprint.shifted(self.shift)
        return self._result_from_stats(
            majority,
            shifted.num_observations,
            shifted.singletons,
            _pair_sum(shifted) if self.use_skew_correction else 0,
        )

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total error count from the shifted vote fingerprint."""
        return self._result(state.positive_fingerprint(), state.majority_count())

    def estimate_sweep_batch(self, batch) -> list:
        """Vectorised cross-permutation sweep over a :class:`PermutationBatch`.

        The shifted fingerprint's sufficient statistics come straight from
        the batched positive-count table: ``f'_1`` is the number of items
        with exactly ``1 + s`` positive votes, the shifted observation
        count removes the first ``s`` frequency classes, and the skew pair
        sum is ``sum_{n_i > s} (n_i - s)(n_i - s - 1)``.  The per-cell
        arithmetic reuses the exact scalar code path (bit-identical).
        """
        s = self.shift
        positives = batch.positive_table  # (R, m, N)
        n = positives.sum(axis=2, dtype=np.int64)
        shifted_f1 = np.count_nonzero(positives == 1 + s, axis=2)
        removed = np.count_nonzero((positives >= 1) & (positives <= s), axis=2)
        shifted_n = np.maximum(0, n - removed)
        # The int64 shift promotes the products before they can overflow
        # the table's compact dtype.
        shifted_values = positives - np.int64(s)
        shifted_pair_sum = (
            shifted_values * (shifted_values - 1) * (positives > s)
        ).sum(axis=2)
        observed = batch.majority_counts
        return [
            [
                self._result_from_stats(
                    int(observed[p, j]),
                    int(shifted_n[p, j]),
                    int(shifted_f1[p, j]),
                    int(shifted_pair_sum[p, j]),
                )
                for j in range(batch.num_checkpoints)
            ]
            for p in range(batch.num_permutations)
        ]
