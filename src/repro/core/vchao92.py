"""The vChao92 estimator (V-CHAO, Section 3.3 of the paper).

Chao92 is highly sensitive to false positives because both the observed
distinct count ``c`` and, worse, the singleton count ``f_1`` are inflated
by them (the *singleton-error entanglement*).  vChao92 mitigates this in
two ways:

1. it starts from the **majority** count ``c_majority`` instead of the
   nominal count, so a single stray positive vote does not immediately add
   a "found error", and
2. it **shifts** the frequency statistics by ``s``: ``f_{1+s}`` plays the
   role of ``f_1``, ``f_{2+s}`` of ``f_2`` and so on, with the observation
   count adjusted to ``n^{+,s} = n^+ - sum_{i<=s} f_i``.  Statistics that
   require ``1+s`` workers to agree are far less likely to be products of
   false positives.

The cost is slower convergence, a shift parameter ``s`` that is hard to
tune a priori, and the loss of the guarantee that the estimator converges
to the ground truth (the paper's motivation for the SWITCH estimator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.validation import check_int
from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.chao92 import good_turing_coverage, skew_coefficient
from repro.core.fstatistics import Fingerprint


def vchao92_components(
    fingerprint: Fingerprint,
    majority_count: int,
    *,
    shift: int = 1,
    use_skew_correction: bool = True,
) -> Tuple[float, Fingerprint, float]:
    """vChao92 estimate plus the shifted fingerprint and coverage behind it.

    Returns ``(estimate, shifted_fingerprint, coverage)`` so callers that
    also report the shifted statistics (the estimator's ``details`` dict)
    shift the fingerprint exactly once.
    """
    check_int(shift, "shift", minimum=0)
    shifted = fingerprint.shifted(shift)
    coverage = good_turing_coverage(shifted)
    c = int(majority_count)
    if coverage <= 0.0:
        return float(c), shifted, coverage
    estimate = c / coverage
    if use_skew_correction:
        gamma_squared = skew_coefficient(shifted, distinct=c, coverage=coverage)
        estimate += shifted.singletons * gamma_squared / coverage
    return float(estimate), shifted, coverage


def vchao92_estimate(
    fingerprint: Fingerprint,
    majority_count: int,
    *,
    shift: int = 1,
    use_skew_correction: bool = True,
) -> float:
    """vChao92 estimate of the total number of distinct errors (Equation 6).

    Parameters
    ----------
    fingerprint:
        The positive-vote f-statistics **before** shifting.
    majority_count:
        ``c_majority`` — the number of items the majority consensus
        currently labels dirty.
    shift:
        The shift ``s`` (the paper's experiments use ``s = 1``).
    use_skew_correction:
        Include the skew correction term computed on the shifted
        fingerprint.

    Returns
    -------
    float
        The estimated total number of errors; falls back to
        ``majority_count`` when the shifted sample has zero coverage.
    """
    estimate, _, _ = vchao92_components(
        fingerprint,
        majority_count,
        shift=shift,
        use_skew_correction=use_skew_correction,
    )
    return estimate


@dataclass
class VChao92Estimator(StateEstimatorMixin):
    """Matrix-level vChao92 estimator (the paper's V-CHAO method).

    Parameters
    ----------
    shift:
        The frequency-statistic shift ``s`` (default 1, as in the paper's
        experiments).
    use_skew_correction:
        Include the coefficient-of-variation correction.
    name:
        Registry / report name.
    """

    shift: int = 1
    use_skew_correction: bool = True
    name: str = "vchao92"

    def __post_init__(self) -> None:
        check_int(self.shift, "shift", minimum=0)

    def _result(self, fingerprint: Fingerprint, majority: int) -> EstimateResult:
        estimate, shifted, coverage = vchao92_components(
            fingerprint,
            majority,
            shift=self.shift,
            use_skew_correction=self.use_skew_correction,
        )
        return EstimateResult(
            estimate=estimate,
            observed=float(majority),
            details={
                "shift": float(self.shift),
                "coverage": coverage,
                "shifted_singletons": float(shifted.singletons),
                "shifted_observations": float(shifted.num_observations),
            },
        )

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total error count from the shifted vote fingerprint."""
        return self._result(state.positive_fingerprint(), state.majority_count())
