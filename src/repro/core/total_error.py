"""Switch-based total-error estimation (Section 4.3 of the paper).

The remaining-switch estimate answers Problem 2, but the original question
(Problem 1: how many errors does the dataset contain?) can be recovered by
correcting the current majority count with the estimated remaining
switches:

* remaining **positive** switches (clean→dirty) will add errors to the
  majority count, and
* remaining **negative** switches (dirty→clean) will remove false positives
  from it.

Estimating both directions separately can be unreliable when one direction
has very few observed switches, so the paper exploits the monotone trend of
the majority count: if the majority count has been *increasing* the dataset
is dominated by false negatives and only the positive-switch correction is
applied (``majority + xi+``); if it has been *decreasing* the dataset is
dominated by false positives and only the negative-switch correction is
applied (``majority - xi-``).  :class:`SwitchTotalErrorEstimator` makes
that decision dynamically from the recent history of the majority count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.exceptions import ValidationError
from repro.common.validation import check_int
from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.chao92 import chao92_components_from_stats
from repro.core.switch import (
    NEGATIVE,
    POSITIVE,
    estimate_remaining_switches,
)

#: Valid trend-selection modes.
TREND_MODES = ("auto", "positive", "negative", "both")


@dataclass
class SwitchTotalErrorEstimator(StateEstimatorMixin):
    """The paper's SWITCH / DQM total-error estimator.

    Parameters
    ----------
    trend_mode:
        ``"auto"`` (default) selects the correction direction from the
        recent trend of the majority count, as in the paper.  ``"positive"``
        and ``"negative"`` force one direction; ``"both"`` applies
        ``majority + xi+ - xi-`` unconditionally (useful for ablations).
    trend_window:
        How many of the most recent columns to look back when measuring the
        majority trend in ``"auto"`` mode.  The window is clipped to the
        number of available columns.
    use_skew_correction:
        Include the coefficient-of-variation correction in the underlying
        switch estimates.
    name:
        Registry / report name.
    """

    trend_mode: str = "auto"
    trend_window: int = 10
    use_skew_correction: bool = True
    name: str = "switch_total"

    def __post_init__(self) -> None:
        if self.trend_mode not in TREND_MODES:
            raise ValidationError(
                f"trend_mode must be one of {TREND_MODES}, got {self.trend_mode!r}"
            )
        check_int(self.trend_window, "trend_window", minimum=1)

    # ------------------------------------------------------------------ #
    def _trend_lookback(self, num_columns: int) -> int:
        """Columns to look back when measuring the majority trend (0 = none)."""
        if num_columns <= 1:
            return 0
        return min(self.trend_window, num_columns - 1)

    @staticmethod
    def _classify_trend(current: int, earlier: int) -> str:
        if current > earlier:
            return "increasing"
        if current < earlier:
            return "decreasing"
        return "flat"

    def _detect_trend(self, state) -> str:
        """Return ``"increasing"``, ``"decreasing"`` or ``"flat"``.

        Compares the current majority count against the count
        ``trend_window`` columns earlier (clipped to the columns
        available), both read from the estimation state.
        """
        lookback = self._trend_lookback(state.num_columns)
        if lookback == 0:
            return "flat"
        return self._classify_trend(
            state.majority_count(), state.majority_count_back(lookback)
        )

    def _result_from_stats(
        self,
        majority: float,
        xi_positive: float,
        xi_negative: float,
        trend: str,
        *,
        observed_switches: int,
        observed_positive: int,
        observed_negative: int,
        n_switch: int,
    ) -> EstimateResult:
        if self.trend_mode in ("positive", "negative", "both"):
            chosen = self.trend_mode
        elif trend == "increasing":
            chosen = "positive"
        elif trend == "decreasing":
            chosen = "negative"
        else:
            # No trend information yet: fall back to the symmetric
            # correction, which reduces to the majority count when both
            # directions lack observed switches.
            chosen = "both"

        if chosen == "positive":
            estimate = majority + xi_positive
        elif chosen == "negative":
            estimate = majority - xi_negative
        else:
            estimate = majority + xi_positive - xi_negative
        estimate = max(0.0, estimate)

        return EstimateResult(
            estimate=float(estimate),
            observed=majority,
            details={
                "xi_positive": float(xi_positive),
                "xi_negative": float(xi_negative),
                "correction": 1.0 if chosen == "positive" else (-1.0 if chosen == "negative" else 0.0),
                "observed_switches": float(observed_switches),
                "observed_positive_switches": float(observed_positive),
                "observed_negative_switches": float(observed_negative),
                "n_switch": float(n_switch),
            },
        )

    def _result(self, majority: float, stats, trend: str) -> EstimateResult:
        # ``stats`` is a SwitchStatistics, its array-backed sweep stand-in,
        # or the live IncrementalSwitchState of a streaming session.
        xi_positive = estimate_remaining_switches(
            stats, direction=POSITIVE, use_skew_correction=self.use_skew_correction
        )
        xi_negative = estimate_remaining_switches(
            stats, direction=NEGATIVE, use_skew_correction=self.use_skew_correction
        )
        return self._result_from_stats(
            majority,
            xi_positive,
            xi_negative,
            trend,
            observed_switches=stats.num_switches,
            observed_positive=stats.num_switches_by_direction(POSITIVE),
            observed_negative=stats.num_switches_by_direction(NEGATIVE),
            n_switch=stats.n_switch,
        )

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total number of errors in the dataset.

        The result's ``observed`` field is the current majority count; the
        ``estimate`` field is the trend-corrected total.
        """
        majority = float(state.majority_count())
        stats = state.switch_stats()
        trend = self._detect_trend(state) if self.trend_mode == "auto" else "flat"
        return self._result(majority, stats, trend)

    def _remaining_from_cells(self, cells, direction: str, index: int) -> float:
        """``xi`` of one direction at one checkpoint from the batched cells.

        Mirrors :func:`~repro.core.switch.estimate_remaining_switches` on
        the vectorised sufficient statistics (identical scalar arithmetic).
        """
        total, _, _ = chao92_components_from_stats(
            distinct=int(cells.items[direction][index]),
            num_observations=int(cells.n_switch[index]),
            singletons=int(cells.singletons[direction][index]),
            pair_sum=int(cells.pair_sums[direction][index]),
            use_skew_correction=self.use_skew_correction,
        )
        return max(0.0, float(total) - float(int(cells.counts[direction][index])))

    def estimate_sweep_batch(self, batch) -> list:
        """Cross-permutation sweep over the batch's shared statistics.

        The majority counts and trend lookbacks come from the batched
        count tables and majority history; both directional switch
        estimates come from the vectorised per-permutation sweep cells.
        Every cell's arithmetic reuses the exact scalar code path, so the
        estimates are bit-identical to the serial sweep.
        """
        results = []
        for p in range(batch.num_permutations):
            cells = batch.switch_sweep_cells(p)
            majority_row = batch.majority_counts[p]
            history = batch.majority_history[p]
            row = []
            for j in range(batch.num_checkpoints):
                upto = batch.resolved[j]
                majority = int(majority_row[j])
                if self.trend_mode == "auto":
                    lookback = self._trend_lookback(upto)
                    trend = (
                        "flat"
                        if lookback == 0
                        else self._classify_trend(
                            majority, int(history[upto - lookback])
                        )
                    )
                else:
                    trend = "flat"
                row.append(
                    self._result_from_stats(
                        float(majority),
                        self._remaining_from_cells(cells, POSITIVE, j),
                        self._remaining_from_cells(cells, NEGATIVE, j),
                        trend,
                        observed_switches=int(cells.counts[None][j]),
                        observed_positive=int(cells.counts[POSITIVE][j]),
                        observed_negative=int(cells.counts[NEGATIVE][j]),
                        n_switch=int(cells.n_switch[j]),
                    )
                )
            results.append(row)
        return results
