"""Switch-based total-error estimation (Section 4.3 of the paper).

The remaining-switch estimate answers Problem 2, but the original question
(Problem 1: how many errors does the dataset contain?) can be recovered by
correcting the current majority count with the estimated remaining
switches:

* remaining **positive** switches (clean→dirty) will add errors to the
  majority count, and
* remaining **negative** switches (dirty→clean) will remove false positives
  from it.

Estimating both directions separately can be unreliable when one direction
has very few observed switches, so the paper exploits the monotone trend of
the majority count: if the majority count has been *increasing* the dataset
is dominated by false negatives and only the positive-switch correction is
applied (``majority + xi+``); if it has been *decreasing* the dataset is
dominated by false positives and only the negative-switch correction is
applied (``majority - xi-``).  :class:`SwitchTotalErrorEstimator` makes
that decision dynamically from the recent history of the majority count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.exceptions import ValidationError
from repro.common.validation import check_int
from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.switch import (
    NEGATIVE,
    POSITIVE,
    estimate_remaining_switches,
)

#: Valid trend-selection modes.
TREND_MODES = ("auto", "positive", "negative", "both")


@dataclass
class SwitchTotalErrorEstimator(StateEstimatorMixin):
    """The paper's SWITCH / DQM total-error estimator.

    Parameters
    ----------
    trend_mode:
        ``"auto"`` (default) selects the correction direction from the
        recent trend of the majority count, as in the paper.  ``"positive"``
        and ``"negative"`` force one direction; ``"both"`` applies
        ``majority + xi+ - xi-`` unconditionally (useful for ablations).
    trend_window:
        How many of the most recent columns to look back when measuring the
        majority trend in ``"auto"`` mode.  The window is clipped to the
        number of available columns.
    use_skew_correction:
        Include the coefficient-of-variation correction in the underlying
        switch estimates.
    name:
        Registry / report name.
    """

    trend_mode: str = "auto"
    trend_window: int = 10
    use_skew_correction: bool = True
    name: str = "switch_total"

    def __post_init__(self) -> None:
        if self.trend_mode not in TREND_MODES:
            raise ValidationError(
                f"trend_mode must be one of {TREND_MODES}, got {self.trend_mode!r}"
            )
        check_int(self.trend_window, "trend_window", minimum=1)

    # ------------------------------------------------------------------ #
    def _trend_lookback(self, num_columns: int) -> int:
        """Columns to look back when measuring the majority trend (0 = none)."""
        if num_columns <= 1:
            return 0
        return min(self.trend_window, num_columns - 1)

    @staticmethod
    def _classify_trend(current: int, earlier: int) -> str:
        if current > earlier:
            return "increasing"
        if current < earlier:
            return "decreasing"
        return "flat"

    def _detect_trend(self, state) -> str:
        """Return ``"increasing"``, ``"decreasing"`` or ``"flat"``.

        Compares the current majority count against the count
        ``trend_window`` columns earlier (clipped to the columns
        available), both read from the estimation state.
        """
        lookback = self._trend_lookback(state.num_columns)
        if lookback == 0:
            return "flat"
        return self._classify_trend(
            state.majority_count(), state.majority_count_back(lookback)
        )

    def _result(self, majority: float, stats, trend: str) -> EstimateResult:
        # ``stats`` is a SwitchStatistics, its array-backed sweep stand-in,
        # or the live IncrementalSwitchState of a streaming session.
        xi_positive = estimate_remaining_switches(
            stats, direction=POSITIVE, use_skew_correction=self.use_skew_correction
        )
        xi_negative = estimate_remaining_switches(
            stats, direction=NEGATIVE, use_skew_correction=self.use_skew_correction
        )

        if self.trend_mode in ("positive", "negative", "both"):
            chosen = self.trend_mode
        elif trend == "increasing":
            chosen = "positive"
        elif trend == "decreasing":
            chosen = "negative"
        else:
            # No trend information yet: fall back to the symmetric
            # correction, which reduces to the majority count when both
            # directions lack observed switches.
            chosen = "both"

        if chosen == "positive":
            estimate = majority + xi_positive
        elif chosen == "negative":
            estimate = majority - xi_negative
        else:
            estimate = majority + xi_positive - xi_negative
        estimate = max(0.0, estimate)

        return EstimateResult(
            estimate=float(estimate),
            observed=majority,
            details={
                "xi_positive": float(xi_positive),
                "xi_negative": float(xi_negative),
                "correction": 1.0 if chosen == "positive" else (-1.0 if chosen == "negative" else 0.0),
                "observed_switches": float(stats.num_switches),
                "observed_positive_switches": float(stats.num_switches_by_direction(POSITIVE)),
                "observed_negative_switches": float(stats.num_switches_by_direction(NEGATIVE)),
                "n_switch": float(stats.n_switch),
            },
        )

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total number of errors in the dataset.

        The result's ``observed`` field is the current majority count; the
        ``estimate`` field is the trend-corrected total.
        """
        majority = float(state.majority_count())
        stats = state.switch_stats()
        trend = self._detect_trend(state) if self.trend_mode == "auto" else "flat"
        return self._result(majority, stats, trend)
