"""Common estimator interface and result container.

Every estimator in :mod:`repro.core` implements the same tiny protocol —
``estimate(matrix, upto=None) -> EstimateResult`` — so the experiment
harness can sweep a heterogeneous set of estimators over a task stream
without special cases.  Two further methods layer on top of it:

* ``estimate_sweep(matrix, checkpoints)`` evaluates many prefixes in one
  incremental pass (PR 1's sweep engine),
* ``estimate_state(state)`` evaluates one
  :class:`~repro.core.state.EstimationState` — the shared incremental
  statistics layer that the single-prefix path, the sweep engine and the
  streaming session all feed, and
* ``estimate_sweep_batch(batch)`` evaluates a whole
  :class:`~repro.core.state.PermutationBatch` — every checkpoint of every
  column permutation in one call over stacked tables (the engine behind
  the permutation-averaged experiment runner).

Built-in estimators implement only ``estimate_state`` and inherit the
others from :class:`StateEstimatorMixin`; third-party estimators can
still provide just ``estimate`` and are handled by the fallback loops in
:func:`sweep_estimates` and :func:`batch_estimates`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

from repro.crowd.response_matrix import ResponseMatrix


@dataclass(frozen=True)
class EstimateResult:
    """The output of one estimator evaluation.

    Attributes
    ----------
    estimate:
        The estimated **total** number of errors (or switches) the dataset
        contains — i.e. what the descriptive count would converge to with
        infinite workers.
    observed:
        The descriptive count the estimator starts from (``c_nominal``,
        ``c_majority`` or ``c_switch`` depending on the estimator).
    remaining:
        The estimated number of errors (switches) still undetected:
        ``estimate - observed`` clipped at zero.
    details:
        Estimator-specific diagnostics (sample coverage, f-statistics,
        skew coefficient, which switch direction was used, ...).
    """

    estimate: float
    observed: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def remaining(self) -> float:
        """Estimated number of still-undetected errors (never negative)."""
        return max(0.0, float(self.estimate) - float(self.observed))


@runtime_checkable
class EstimatorProtocol(Protocol):
    """Structural interface every estimator satisfies.

    Implementations must be stateless with respect to the matrix (all
    evaluation inputs come from the matrix or state passed per call) so
    the harness can evaluate them on arbitrary prefixes in any order —
    and so one instance can be shared between the batch runner and a
    streaming session.
    """

    #: Short, stable name used by the registry and in result tables.
    name: str

    def estimate(
        self, matrix: ResponseMatrix, upto: Optional[int] = None
    ) -> EstimateResult:
        """Estimate the total error count from the first ``upto`` columns.

        ``upto`` follows the contract of
        :meth:`~repro.crowd.response_matrix.ResponseMatrix.resolve_upto`:
        ``None`` means all columns, negative values raise
        ``ValidationError``, oversized values clamp.
        """
        ...

    def estimate_sweep(
        self, matrix: ResponseMatrix, checkpoints: Sequence[int]
    ) -> List[EstimateResult]:
        """Evaluate the estimator at every checkpoint prefix in one sweep.

        Must be equivalent (bit-identical results) to calling
        :meth:`estimate` once per checkpoint; implementations are free to
        share work across checkpoints.  Inherit :class:`SweepEstimatorMixin`
        to get the fallback loop for free.  Note that ``isinstance`` checks
        against this protocol require both methods; the harness itself is
        more lenient — :func:`sweep_estimates` accepts estimate-only
        objects and falls back to the per-checkpoint loop for them.
        """
        ...


class SweepEstimatorMixin:
    """Default ``estimate_sweep`` falling back to the per-checkpoint loop.

    Estimators inherit this to satisfy the sweep half of
    :class:`EstimatorProtocol` and override :meth:`estimate_sweep` when a
    single-pass incremental implementation exists.  The contract either way:
    ``estimate_sweep(m, cps)[j]`` equals ``estimate(m, cps[j])`` exactly.
    """

    def estimate_sweep(
        self, matrix: ResponseMatrix, checkpoints: Sequence[int]
    ) -> List[EstimateResult]:
        """Evaluate :meth:`estimate` at every checkpoint prefix."""
        return [self.estimate(matrix, checkpoint) for checkpoint in checkpoints]

    def estimate_sweep_batch(self, batch) -> List[List[EstimateResult]]:
        """Evaluate every permutation's sweep of a cross-permutation batch.

        ``batch`` is a :class:`~repro.core.state.PermutationBatch`; the
        result is indexed ``[permutation][checkpoint]`` and must be
        bit-identical to sweeping each permuted matrix separately.  This
        fallback does exactly that (materialising one permuted matrix at a
        time); estimators with a batched implementation override it.
        """
        return [
            self.estimate_sweep(batch.permuted_matrix(p), batch.checkpoints)
            for p in range(batch.num_permutations)
        ]


class StateEstimatorMixin(SweepEstimatorMixin):
    """Derive ``estimate`` and ``estimate_sweep`` from ``estimate_state``.

    Subclasses implement a single method, ``estimate_state(state)``,
    computing the result from an
    :class:`~repro.core.state.EstimationState`.  The two matrix-facing
    entry points then reduce to building the right state:

    * :meth:`estimate` wraps the prefix in a lazily-computed
      :class:`~repro.core.state.MatrixPrefixState`;
    * :meth:`estimate_sweep` evaluates over
      :func:`~repro.core.state.matrix_sweep_states`, whose checkpoint
      tables and switch scan are shared across the whole sweep.

    Because a :class:`~repro.core.state.StreamingState` satisfies the same
    interface, the identical ``estimate_state`` code path also serves the
    streaming session — one implementation, three access patterns, and the
    bit-identical guarantee between them comes for free.
    """

    def estimate_state(self, state) -> EstimateResult:
        """Compute the estimate from an :class:`EstimationState`."""
        raise NotImplementedError

    def estimate(
        self, matrix: ResponseMatrix, upto: Optional[int] = None
    ) -> EstimateResult:
        """Estimate from the first ``upto`` columns of ``matrix``."""
        from repro.core.state import MatrixPrefixState

        return self.estimate_state(MatrixPrefixState(matrix, upto))

    def estimate_sweep(
        self, matrix: ResponseMatrix, checkpoints: Sequence[int]
    ) -> List[EstimateResult]:
        """Evaluate every checkpoint prefix over shared sweep tables."""
        from repro.core.state import matrix_sweep_states

        return [
            self.estimate_state(state)
            for state in matrix_sweep_states(matrix, checkpoints)
        ]

    def estimate_sweep_batch(self, batch) -> List[List[EstimateResult]]:
        """Evaluate every (permutation, checkpoint) cell of a batch.

        The default evaluates :meth:`estimate_state` over the batch's
        shared per-cell states, so even estimators without a dedicated
        batched implementation reuse the one stacked set of count tables
        and the single cross-permutation switch scan.
        """
        return [
            [self.estimate_state(state) for state in batch.states(p)]
            for p in range(batch.num_permutations)
        ]


def sweep_estimates(
    estimator: EstimatorProtocol,
    matrix: ResponseMatrix,
    checkpoints: Sequence[int],
    *,
    states: Optional[Sequence] = None,
) -> List[EstimateResult]:
    """Evaluate ``estimator`` at every checkpoint, using its fast sweep if any.

    Parameters
    ----------
    estimator:
        The estimator to evaluate.
    matrix:
        The collected vote matrix.
    checkpoints:
        Prefix lengths to evaluate at.
    states:
        Pre-built estimation states for the checkpoints (from
        :func:`~repro.core.state.matrix_sweep_states`).  Callers that
        evaluate several estimators over the same sweep pass the same
        list to each call so the checkpoint tables and switch scan are
        computed once, not once per estimator.

    Third-party estimators that only implement ``estimate`` are supported
    through the per-checkpoint fallback loop.
    """
    estimate_state = getattr(estimator, "estimate_state", None)
    if states is not None and estimate_state is not None:
        return [estimate_state(state) for state in states]
    sweep = getattr(estimator, "estimate_sweep", None)
    if sweep is not None:
        return sweep(matrix, checkpoints)
    return [estimator.estimate(matrix, checkpoint) for checkpoint in checkpoints]


def batch_estimates(estimator: EstimatorProtocol, batch) -> List[List[EstimateResult]]:
    """Evaluate ``estimator`` over every cell of a cross-permutation batch.

    ``batch`` is a :class:`~repro.core.state.PermutationBatch`; the result
    is indexed ``[permutation][checkpoint]``.  Estimators exposing
    ``estimate_sweep_batch`` (every built-in, via the mixins) evaluate over
    the batch's shared tables; estimate-only third-party estimators fall
    back to one serial sweep per materialised permuted matrix — identical
    results, only the wall-clock differs.
    """
    fast = getattr(estimator, "estimate_sweep_batch", None)
    if fast is not None:
        return fast(batch)
    return [
        sweep_estimates(estimator, batch.permuted_matrix(p), batch.checkpoints)
        for p in range(batch.num_permutations)
    ]
