"""Common estimator interface and result container.

Every estimator in :mod:`repro.core` implements the same tiny protocol —
``estimate(matrix, upto=None) -> EstimateResult`` — so the experiment
harness can sweep a heterogeneous set of estimators over a task stream
without special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.crowd.response_matrix import ResponseMatrix


@dataclass(frozen=True)
class EstimateResult:
    """The output of one estimator evaluation.

    Attributes
    ----------
    estimate:
        The estimated **total** number of errors (or switches) the dataset
        contains — i.e. what the descriptive count would converge to with
        infinite workers.
    observed:
        The descriptive count the estimator starts from (``c_nominal``,
        ``c_majority`` or ``c_switch`` depending on the estimator).
    remaining:
        The estimated number of errors (switches) still undetected:
        ``estimate - observed`` clipped at zero.
    details:
        Estimator-specific diagnostics (sample coverage, f-statistics,
        skew coefficient, which switch direction was used, ...).
    """

    estimate: float
    observed: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def remaining(self) -> float:
        """Estimated number of still-undetected errors (never negative)."""
        return max(0.0, float(self.estimate) - float(self.observed))


@runtime_checkable
class EstimatorProtocol(Protocol):
    """Structural interface every estimator satisfies.

    Implementations must be stateless with respect to the matrix (all state
    is recomputed per call) so the harness can evaluate them on arbitrary
    prefixes in any order.
    """

    #: Short, stable name used by the registry and in result tables.
    name: str

    def estimate(
        self, matrix: ResponseMatrix, upto: Optional[int] = None
    ) -> EstimateResult:
        """Estimate the total error count from the first ``upto`` columns."""
        ...
