"""Common estimator interface and result container.

Every estimator in :mod:`repro.core` implements the same tiny protocol —
``estimate(matrix, upto=None) -> EstimateResult`` — so the experiment
harness can sweep a heterogeneous set of estimators over a task stream
without special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

from repro.crowd.response_matrix import ResponseMatrix


@dataclass(frozen=True)
class EstimateResult:
    """The output of one estimator evaluation.

    Attributes
    ----------
    estimate:
        The estimated **total** number of errors (or switches) the dataset
        contains — i.e. what the descriptive count would converge to with
        infinite workers.
    observed:
        The descriptive count the estimator starts from (``c_nominal``,
        ``c_majority`` or ``c_switch`` depending on the estimator).
    remaining:
        The estimated number of errors (switches) still undetected:
        ``estimate - observed`` clipped at zero.
    details:
        Estimator-specific diagnostics (sample coverage, f-statistics,
        skew coefficient, which switch direction was used, ...).
    """

    estimate: float
    observed: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def remaining(self) -> float:
        """Estimated number of still-undetected errors (never negative)."""
        return max(0.0, float(self.estimate) - float(self.observed))


@runtime_checkable
class EstimatorProtocol(Protocol):
    """Structural interface every estimator satisfies.

    Implementations must be stateless with respect to the matrix (all state
    is recomputed per call) so the harness can evaluate them on arbitrary
    prefixes in any order.
    """

    #: Short, stable name used by the registry and in result tables.
    name: str

    def estimate(
        self, matrix: ResponseMatrix, upto: Optional[int] = None
    ) -> EstimateResult:
        """Estimate the total error count from the first ``upto`` columns."""
        ...

    def estimate_sweep(
        self, matrix: ResponseMatrix, checkpoints: Sequence[int]
    ) -> List[EstimateResult]:
        """Evaluate the estimator at every checkpoint prefix in one sweep.

        Must be equivalent (bit-identical results) to calling
        :meth:`estimate` once per checkpoint; implementations are free to
        share work across checkpoints.  Inherit :class:`SweepEstimatorMixin`
        to get the fallback loop for free.  Note that ``isinstance`` checks
        against this protocol require both methods; the harness itself is
        more lenient — :func:`sweep_estimates` accepts estimate-only
        objects and falls back to the per-checkpoint loop for them.
        """
        ...


class SweepEstimatorMixin:
    """Default ``estimate_sweep`` falling back to the per-checkpoint loop.

    Estimators inherit this to satisfy the sweep half of
    :class:`EstimatorProtocol` and override :meth:`estimate_sweep` when a
    single-pass incremental implementation exists.  The contract either way:
    ``estimate_sweep(m, cps)[j]`` equals ``estimate(m, cps[j])`` exactly.
    """

    def estimate_sweep(
        self, matrix: ResponseMatrix, checkpoints: Sequence[int]
    ) -> List[EstimateResult]:
        """Evaluate :meth:`estimate` at every checkpoint prefix."""
        return [self.estimate(matrix, checkpoint) for checkpoint in checkpoints]


def sweep_estimates(
    estimator: EstimatorProtocol,
    matrix: ResponseMatrix,
    checkpoints: Sequence[int],
) -> List[EstimateResult]:
    """Evaluate ``estimator`` at every checkpoint, using its fast sweep if any.

    Third-party estimators that only implement ``estimate`` are supported
    through the per-checkpoint fallback loop.
    """
    sweep = getattr(estimator, "estimate_sweep", None)
    if sweep is not None:
        return sweep(matrix, checkpoints)
    return [estimator.estimate(matrix, checkpoint) for checkpoint in checkpoints]
