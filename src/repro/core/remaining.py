"""Convenience wrappers for "how many errors are still undetected?".

The estimators return total-error estimates; callers usually want the
*remaining* count (total minus what the crowd already found) and a simple
quality grade.  These helpers wrap that arithmetic so application code and
the examples stay short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import EstimateResult, EstimatorProtocol
from repro.core.descriptive import majority_estimate
from repro.core.total_error import SwitchTotalErrorEstimator
from repro.crowd.response_matrix import ResponseMatrix


@dataclass(frozen=True)
class DataQualityReport:
    """A user-facing summary of the estimated data quality.

    Attributes
    ----------
    detected_errors:
        Errors the current majority consensus already marks (``c_majority``).
    estimated_total_errors:
        The estimator's total-error estimate.
    estimated_remaining_errors:
        ``max(0, total - detected)``.
    quality_score:
        ``detected / total`` clipped to [0, 1]: the estimated fraction of
        (eventually detectable) errors already found.  1.0 when the
        estimate says nothing remains.
    num_tasks:
        Number of worker-task columns the estimate is based on.
    estimator_name:
        Name of the estimator that produced the numbers.
    """

    detected_errors: float
    estimated_total_errors: float
    estimated_remaining_errors: float
    quality_score: float
    num_tasks: int
    estimator_name: str


def remaining_errors(
    matrix: ResponseMatrix,
    estimator: Optional[EstimatorProtocol] = None,
    upto: Optional[int] = None,
) -> float:
    """Estimated number of errors not yet reflected in the majority consensus."""
    estimator = estimator or SwitchTotalErrorEstimator()
    result = estimator.estimate(matrix, upto)
    detected = float(majority_estimate(matrix, upto))
    return max(0.0, result.estimate - detected)


def data_quality_report(
    matrix: ResponseMatrix,
    estimator: Optional[EstimatorProtocol] = None,
    upto: Optional[int] = None,
) -> DataQualityReport:
    """Produce a :class:`DataQualityReport` from a vote matrix.

    Parameters
    ----------
    matrix:
        The worker-response matrix.
    estimator:
        Estimator to use; defaults to the paper's SWITCH total-error
        estimator.
    upto:
        Column prefix to evaluate.
    """
    estimator = estimator or SwitchTotalErrorEstimator()
    result: EstimateResult = estimator.estimate(matrix, upto)
    detected = float(majority_estimate(matrix, upto))
    total = float(result.estimate)
    remaining = max(0.0, total - detected)
    if total <= 0.0:
        quality = 1.0
    else:
        quality = min(1.0, max(0.0, detected / total))
    # Report the number of tasks actually evaluated: an oversized ``upto``
    # clamps to the columns received so far instead of echoing the argument.
    num_tasks = matrix.resolve_upto(upto)
    return DataQualityReport(
        detected_errors=detected,
        estimated_total_errors=total,
        estimated_remaining_errors=remaining,
        quality_score=quality,
        num_tasks=num_tasks,
        estimator_name=getattr(estimator, "name", type(estimator).__name__),
    )
