"""Estimator registry.

Experiment configurations refer to estimators by short string names
(``"chao92"``, ``"switch"``, ...) so that figure definitions can be plain
data.  The registry maps each name to a zero-argument factory producing a
fresh estimator instance; user code can register additional estimators.
The mechanics (case-insensitive keys, overwrite escape hatch, errors that
list every registered name) come from
:class:`repro.common.registry.Registry`.
"""

from __future__ import annotations

from typing import Callable, List

from repro.common.registry import Registry
from repro.core.base import EstimatorProtocol

_FACTORIES: Registry[Callable[[], EstimatorProtocol]] = Registry("estimator")


def register_estimator(name: str, factory: Callable[[], EstimatorProtocol], *, overwrite: bool = False) -> None:
    """Register an estimator factory under ``name``.

    Parameters
    ----------
    name:
        Registry key (lower-case by convention).
    factory:
        Zero-argument callable returning a new estimator instance.
    overwrite:
        Allow replacing an existing registration.

    Raises
    ------
    repro.common.exceptions.ConfigurationError
        If the name is already registered and ``overwrite`` is false; the
        message names the remedy and lists the available estimators.
    """
    _FACTORIES.register(name, factory, overwrite=overwrite)


def unregister_estimator(name: str) -> None:
    """Remove a registration if present (mainly for tests and plugins)."""
    _FACTORIES.unregister(name)


def get_estimator(name: str) -> EstimatorProtocol:
    """Instantiate the estimator registered under ``name``.

    Raises
    ------
    repro.common.exceptions.ConfigurationError
        If no estimator is registered under that name; the message lists
        the available estimators.
    """
    return _FACTORIES.get(name)()


def available_estimators() -> List[str]:
    """Names of all registered estimators, sorted."""
    return _FACTORIES.names()


def _register_builtins() -> None:
    """Register the estimators shipped with the library."""
    # Imports are local to avoid import cycles at package-load time.
    from repro.core.chao92 import Chao92Estimator
    from repro.core.descriptive import NominalEstimator, VotingEstimator
    from repro.core.extrapolation import ExtrapolationEstimator
    from repro.core.species import Chao84Estimator, GoodTuringEstimator, JackknifeEstimator
    from repro.core.switch import SwitchEstimator
    from repro.core.total_error import SwitchTotalErrorEstimator
    from repro.core.vchao92 import VChao92Estimator

    builtins = {
        "nominal": NominalEstimator,
        "voting": VotingEstimator,
        "chao92": Chao92Estimator,
        "vchao92": VChao92Estimator,
        "extrapolation": ExtrapolationEstimator,
        "switch": SwitchEstimator,
        "switch_total": SwitchTotalErrorEstimator,
        "good_turing": GoodTuringEstimator,
        "chao84": Chao84Estimator,
        "jackknife": JackknifeEstimator,
    }
    for name, factory in builtins.items():
        if name not in _FACTORIES:
            register_estimator(name, factory)


_register_builtins()
