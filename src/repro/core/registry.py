"""Estimator registry.

Experiment configurations refer to estimators by short string names
(``"chao92"``, ``"switch"``, ...) so that figure definitions can be plain
data.  The registry maps each name to a zero-argument factory producing a
fresh estimator instance; user code can register additional estimators.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.exceptions import ConfigurationError
from repro.core.base import EstimatorProtocol

_FACTORIES: Dict[str, Callable[[], EstimatorProtocol]] = {}


def register_estimator(name: str, factory: Callable[[], EstimatorProtocol], *, overwrite: bool = False) -> None:
    """Register an estimator factory under ``name``.

    Parameters
    ----------
    name:
        Registry key (lower-case by convention).
    factory:
        Zero-argument callable returning a new estimator instance.
    overwrite:
        Allow replacing an existing registration.

    Raises
    ------
    repro.common.exceptions.ConfigurationError
        If the name is already registered and ``overwrite`` is false.
    """
    key = str(name).lower()
    if key in _FACTORIES and not overwrite:
        raise ConfigurationError(f"estimator {key!r} is already registered")
    _FACTORIES[key] = factory


def get_estimator(name: str) -> EstimatorProtocol:
    """Instantiate the estimator registered under ``name``.

    Raises
    ------
    repro.common.exceptions.ConfigurationError
        If no estimator is registered under that name.
    """
    key = str(name).lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown estimator {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def available_estimators() -> List[str]:
    """Names of all registered estimators, sorted."""
    return sorted(_FACTORIES)


def _register_builtins() -> None:
    """Register the estimators shipped with the library."""
    # Imports are local to avoid import cycles at package-load time.
    from repro.core.chao92 import Chao92Estimator
    from repro.core.descriptive import NominalEstimator, VotingEstimator
    from repro.core.extrapolation import ExtrapolationEstimator
    from repro.core.species import Chao84Estimator, GoodTuringEstimator, JackknifeEstimator
    from repro.core.switch import SwitchEstimator
    from repro.core.total_error import SwitchTotalErrorEstimator
    from repro.core.vchao92 import VChao92Estimator

    builtins: Dict[str, Callable[[], EstimatorProtocol]] = {
        "nominal": NominalEstimator,
        "voting": VotingEstimator,
        "chao92": Chao92Estimator,
        "vchao92": VChao92Estimator,
        "extrapolation": ExtrapolationEstimator,
        "switch": SwitchEstimator,
        "switch_total": SwitchTotalErrorEstimator,
        "good_turing": GoodTuringEstimator,
        "chao84": Chao84Estimator,
        "jackknife": JackknifeEstimator,
    }
    for name, factory in builtins.items():
        if name not in _FACTORIES:
            register_estimator(name, factory)


_register_builtins()
