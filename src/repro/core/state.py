"""The shared incremental-state layer behind every estimation path.

Every estimator in :mod:`repro.core` is, at heart, a pure function of a
handful of prefix statistics: the positive-vote fingerprint, the nominal
and majority counts, the coverage tallies and the switch statistics.
Before this module existed each evaluation path re-derived those inputs
itself — the single-prefix ``estimate``, each estimator's
``estimate_sweep``, and any future online consumer all walked the vote
matrix independently.

This module gives the statistics one home.  An *estimation state* is any
object satisfying :class:`EstimationState`; estimators implement
``estimate_state(state)`` (see
:class:`~repro.core.base.StateEstimatorMixin`) and never touch a matrix
directly.  Three implementations cover every access pattern:

* :class:`MatrixPrefixState` — one prefix of a collected matrix (the
  classic ``estimate(matrix, upto)`` path), computed lazily so an
  estimator only pays for the statistics it reads;
* :func:`matrix_sweep_states` — all checkpoint prefixes of a matrix at
  once, backed by a single set of incremental checkpoint tables and one
  switch scan **shared across checkpoints and across estimators**;
* :class:`PermutationBatch` — all checkpoint prefixes of **all column
  permutations** at once: the permuted matrices are stacked into one
  ``(R, N, K)`` tensor, the count tables become one ``(R, m, N)`` pass
  and the ``R`` switch scans collapse into a single scan of the
  ``(R * N, K)`` reshaped stack (the engine of the permutation-averaged
  experiment runner);
* :class:`StreamingState` — a live state fed one worker response at a
  time, maintained with O(items touched) work per update (the engine of
  :class:`repro.streaming.StreamingSession`).

All of them produce bit-identical integers, which is what makes the
streaming/batch/sweep/cross-permutation equivalence guarantee of the
estimators hold.
"""

from __future__ import annotations

from functools import cached_property
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.common.exceptions import ValidationError
from repro.common.labels import CLEAN, DIRTY
from repro.common.validation import check_int
from repro.core.backend import ArrayBackend, NumpyBackend, resolve_backend
from repro.core.fstatistics import (
    Fingerprint,
    IncrementalFingerprint,
    fingerprint_from_counts,
    fingerprints_from_count_table,
)
from repro.core.switch import (
    IncrementalSwitchState,
    _estimation_sweep,
    _EstimationSwitchStats,
    _SwitchScan,
    _SwitchSweepCells,
    switch_statistics,
)
from repro.crowd.consensus import majority_count_history
from repro.crowd.response_matrix import ResponseMatrix


@runtime_checkable
class EstimationState(Protocol):
    """The statistics interface every estimator evaluation consumes.

    ``num_items`` and ``num_columns`` describe the prefix; the methods
    return the derived statistics.  Implementations may compute lazily
    (batch states) or maintain incrementally (streaming state), but the
    integers they return must be identical for the same vote prefix.
    """

    #: ``N`` — the number of candidate items.
    num_items: int
    #: Number of worker-task columns in the evaluated prefix.
    num_columns: int

    def positive_fingerprint(self) -> Fingerprint:
        """f-statistics over per-item positive-vote counts (Section 3.2)."""
        ...

    def nominal_count(self) -> int:
        """``c_nominal`` — items marked dirty by at least one worker."""
        ...

    def majority_count(self) -> int:
        """``c_majority`` — items whose majority consensus is dirty."""
        ...

    def coverage_counts(self, min_votes: int) -> Tuple[int, int]:
        """``(covered, sample_errors)`` for the extrapolation baseline.

        ``covered`` counts items with at least ``min_votes`` votes;
        ``sample_errors`` counts the covered items whose majority
        consensus is dirty.
        """
        ...

    def switch_stats(self):
        """Switch statistics of the prefix (the Section 4 machinery).

        Returns an object with the :class:`~repro.core.switch.SwitchStatistics`
        interface: ``num_switches``, ``items_with_switches``, ``n_switch``,
        ``total_votes``, ``num_switches_by_direction``,
        ``items_with_direction`` and ``fingerprint``.
        """
        ...

    def majority_count_back(self, lookback: int) -> int:
        """``c_majority`` at ``num_columns - lookback`` (trend detection).

        ``lookback`` must be in ``[0, num_columns]``; anything else raises
        ``ValidationError`` in every implementation.
        """
        ...


def _resolve_lookback(lookback: int, num_columns: int) -> int:
    """Validate a trend lookback: it must stay within the prefix."""
    lookback = check_int(lookback, "lookback", minimum=0)
    if lookback > num_columns:
        raise ValidationError(
            f"lookback must be in [0, {num_columns}], got {lookback}"
        )
    return lookback


class MatrixPrefixState:
    """Estimation state of one column prefix of a collected matrix.

    Everything is computed lazily and cached, so an estimator that never
    reads the switch statistics never pays for the switch scan.
    """

    def __init__(self, matrix: ResponseMatrix, upto: Optional[int] = None):
        self._matrix = matrix
        self.num_items = matrix.num_items
        self.num_columns = matrix.resolve_upto(upto)

    @cached_property
    def _positive_counts(self) -> np.ndarray:
        return self._matrix.positive_counts(self.num_columns)

    @cached_property
    def _negative_counts(self) -> np.ndarray:
        return self._matrix.negative_counts(self.num_columns)

    def positive_fingerprint(self) -> Fingerprint:
        """f-statistics over per-item positive-vote counts."""
        return fingerprint_from_counts(self._positive_counts.tolist())

    def nominal_count(self) -> int:
        """``c_nominal`` of the prefix."""
        return int((self._positive_counts > 0).sum())

    def majority_count(self) -> int:
        """``c_majority`` of the prefix."""
        return int((self._positive_counts > self._negative_counts).sum())

    def coverage_counts(self, min_votes: int) -> Tuple[int, int]:
        """``(covered, sample_errors)`` for the extrapolation baseline."""
        positives, negatives = self._positive_counts, self._negative_counts
        covered_mask = (positives + negatives) >= min_votes
        sample_errors = int((covered_mask & (positives > negatives)).sum())
        return int(covered_mask.sum()), sample_errors

    @cached_property
    def _switch_stats(self):
        return switch_statistics(self._matrix, self.num_columns)

    def switch_stats(self):
        """Switch statistics of the prefix (scanned on first access)."""
        return self._switch_stats

    def majority_count_back(self, lookback: int) -> int:
        """``c_majority`` at ``num_columns - lookback`` columns."""
        position = self.num_columns - _resolve_lookback(lookback, self.num_columns)
        positives = self._matrix.positive_counts(position)
        negatives = self._matrix.negative_counts(position)
        return int((positives > negatives).sum())


class _SweepTables:
    """Lazily-computed checkpoint tables shared by a whole sweep.

    One instance serves every checkpoint state of a sweep *and* every
    estimator evaluated over it: the positive/negative count tables, the
    fingerprints, the switch scan and the majority history are each
    computed at most once per (matrix, checkpoints) pair, no matter how
    many estimators consume them.
    """

    def __init__(self, matrix: ResponseMatrix, resolved: Sequence[int]):
        self.matrix = matrix
        self.resolved = list(resolved)

    @cached_property
    def positive_table(self) -> np.ndarray:
        return self.matrix.positive_counts_at(self.resolved)

    @cached_property
    def negative_table(self) -> np.ndarray:
        return self.matrix.negative_counts_at(self.resolved)

    @cached_property
    def positive_fingerprints(self) -> List[Fingerprint]:
        return fingerprints_from_count_table(self.positive_table)

    @cached_property
    def nominal_counts(self) -> np.ndarray:
        return (self.positive_table > 0).sum(axis=1)

    @cached_property
    def majority_counts(self) -> np.ndarray:
        return (self.positive_table > self.negative_table).sum(axis=1)

    @cached_property
    def switch_stats(self) -> list:
        return _estimation_sweep(self.matrix, self.resolved)

    @cached_property
    def majority_history(self) -> np.ndarray:
        return majority_count_history(self.matrix)


class MatrixSweepState:
    """One checkpoint's estimation state, backed by shared sweep tables."""

    def __init__(self, tables: _SweepTables, index: int):
        self._tables = tables
        self._index = index
        self.num_items = tables.matrix.num_items
        self.num_columns = tables.resolved[index]

    def positive_fingerprint(self) -> Fingerprint:
        """f-statistics over per-item positive-vote counts."""
        return self._tables.positive_fingerprints[self._index]

    def nominal_count(self) -> int:
        """``c_nominal`` of the checkpoint prefix."""
        return int(self._tables.nominal_counts[self._index])

    def majority_count(self) -> int:
        """``c_majority`` of the checkpoint prefix."""
        return int(self._tables.majority_counts[self._index])

    def coverage_counts(self, min_votes: int) -> Tuple[int, int]:
        """``(covered, sample_errors)`` for the extrapolation baseline."""
        positives = self._tables.positive_table[self._index]
        negatives = self._tables.negative_table[self._index]
        covered_mask = (positives + negatives) >= min_votes
        sample_errors = int((covered_mask & (positives > negatives)).sum())
        return int(covered_mask.sum()), sample_errors

    def switch_stats(self):
        """Switch statistics of the checkpoint prefix (shared scan)."""
        return self._tables.switch_stats[self._index]

    def majority_count_back(self, lookback: int) -> int:
        """``c_majority`` at ``num_columns - lookback`` columns."""
        position = self.num_columns - _resolve_lookback(lookback, self.num_columns)
        return int(self._tables.majority_history[position])


def matrix_sweep_states(
    matrix: ResponseMatrix, checkpoints: Sequence[int]
) -> List[MatrixSweepState]:
    """One estimation state per checkpoint, all backed by shared tables.

    Passing the returned list to several estimators (as
    :func:`repro.core.base.sweep_estimates` and the experiment runner do)
    shares the underlying count tables and switch scan across all of
    them — the matrix is walked once per sweep, not once per estimator.
    """
    resolved = [matrix.resolve_upto(checkpoint) for checkpoint in checkpoints]
    tables = _SweepTables(matrix, resolved)
    return [MatrixSweepState(tables, index) for index in range(len(resolved))]


class PermutationBatch:
    """Batched estimation states for ``R`` column permutations of one matrix.

    The experiment runner averages every trajectory over random column
    permutations of the *same* collected matrix.  Evaluating them one at a
    time repeats identical work ``R`` times: each permutation re-derives
    its checkpoint count tables, re-scans the matrix for switches and
    re-builds Python fingerprints.  This class restructures the data
    layout instead: the permuted matrices are stacked into one
    ``(R, N, K)`` tensor, the checkpoint count tables become one
    ``(R, m, N)`` pass, and — because the switch scan treats rows
    independently — all ``R`` switch scans collapse into a **single**
    :class:`~repro.core.switch._SwitchScan` over the ``(R * N, K)``
    reshaped stack.

    Consumers come in two flavours:

    * estimators with a batched fast path
      (``estimate_sweep_batch``) reduce their sufficient statistics
      straight from :attr:`positive_table` / :attr:`negative_table` /
      :meth:`switch_stats`;
    * everything else evaluates ``estimate_state`` over :meth:`states`,
      whose per-cell states satisfy the :class:`EstimationState` protocol
      and are backed by the same shared tables.

    Every quantity either path reads is integer-exact and identical to
    what ``matrix.permute_columns(order)`` + :func:`matrix_sweep_states`
    would produce, which is what makes the batched estimates bit-identical
    to the serial per-permutation sweep (pinned by the golden scenarios
    and a hypothesis property test).

    Parameters
    ----------
    matrix:
        The fully collected worker-response matrix.
    orders:
        One column order per permutation; ``None`` entries mean the
        original column order.  Each order must be a permutation of
        ``range(matrix.num_columns)``.
    checkpoints:
        Prefix lengths to evaluate at (resolved with
        :meth:`~repro.crowd.response_matrix.ResponseMatrix.resolve_upto`,
        shared by every permutation).
    backend:
        The :class:`~repro.core.backend.ArrayBackend` (instance or name)
        the tensor kernels run on; ``None`` resolves via ``REPRO_BACKEND``
        and defaults to the numpy reference.  Every backend yields
        bit-identical estimates (pinned by the backend-parity suite).
    """

    def __init__(
        self,
        matrix: ResponseMatrix,
        orders: Sequence[Optional[Sequence[int]]],
        checkpoints: Sequence[int],
        backend: Union[ArrayBackend, str, None] = None,
    ):
        self.backend = resolve_backend(backend)
        self.matrix = matrix
        self.num_items = matrix.num_items
        num_columns = matrix.num_columns
        identity = np.arange(num_columns, dtype=np.intp)
        rows = []
        self._is_identity: List[bool] = []
        for order in orders:
            if order is None:
                rows.append(identity)
                self._is_identity.append(True)
                continue
            candidate = np.asarray([int(i) for i in order], dtype=np.intp)
            if candidate.shape != identity.shape or not np.array_equal(
                np.sort(candidate), identity
            ):
                raise ValidationError(
                    "every order must be a permutation of the column indices "
                    f"0..{num_columns - 1}, got {list(order)!r}"
                )
            rows.append(candidate)
            self._is_identity.append(False)
        if not rows:
            raise ValidationError("at least one permutation order is required")
        self._orders = np.vstack(rows)  # (R, K)
        self.num_permutations = len(rows)
        self.checkpoints = list(checkpoints)
        self.resolved = [matrix.resolve_upto(cp) for cp in self.checkpoints]
        self.num_checkpoints = len(self.resolved)
        self._switch_cells: Dict[Tuple[int, int], _EstimationSwitchStats] = {}
        self._sweep_cells: Dict[int, _SwitchSweepCells] = {}
        self._state_lists: Dict[int, List["PermutationSweepState"]] = {}

    # ------------------------------------------------------------------ #
    # shared tables (all lazy: a batch of voting-only estimators never
    # pays for the switch scan, and vice versa)
    # ------------------------------------------------------------------ #
    @cached_property
    def _stacked(self) -> np.ndarray:
        """(R, N, K) int8 — every permuted matrix, stacked (host copy)."""
        gathered = self.matrix.values[:, self._orders]  # (N, R, K)
        return np.ascontiguousarray(gathered.transpose(1, 0, 2))

    @cached_property
    def _stacked_device(self):
        """The stacked tensor on the batch's backend (host array = itself)."""
        if isinstance(self.backend, NumpyBackend):
            return self._stacked
        return self.backend.asarray(self._stacked)

    def _label_table(self, label: int) -> np.ndarray:
        """(R, m, N) per-item counts of ``label`` votes at each checkpoint.

        The same incremental segment-sum scheme as
        :meth:`ResponseMatrix._label_counts_at`, run once over the whole
        stack: one pass over ``R x N x K`` covers every permutation and
        every checkpoint.  The pass runs on the batch's backend; the
        finished tables come back to host NumPy (integer counts — exact
        on every backend).
        """
        resolved = self.resolved
        if not resolved:
            return np.zeros((self.num_permutations, 0, self.num_items), dtype=np.int32)
        xp = self.backend
        mask = self._stacked_device == label
        # int32 halves the table's memory traffic; counts are bounded by
        # the column count, far below the int32 range.
        running = xp.zeros((self.num_permutations, self.num_items), np.int32)
        table: Dict[int, np.ndarray] = {}
        previous = 0
        for checkpoint in sorted(set(resolved)):
            if checkpoint > previous:
                running = running + xp.sum(
                    mask[:, :, previous:checkpoint], axis=2, dtype=np.int32
                )
            table[checkpoint] = running
            previous = checkpoint
        return np.stack(
            [xp.asnumpy(table[checkpoint]) for checkpoint in resolved], axis=1
        )

    @cached_property
    def positive_table(self) -> np.ndarray:
        """``n_i^+`` as an ``(R, m, N)`` table (permutation x checkpoint x item)."""
        return self._label_table(DIRTY)

    @cached_property
    def negative_table(self) -> np.ndarray:
        """``n_i^-`` as an ``(R, m, N)`` table."""
        return self._label_table(CLEAN)

    @cached_property
    def nominal_counts(self) -> np.ndarray:
        """``c_nominal`` per (permutation, checkpoint) cell, ``(R, m)``."""
        return (self.positive_table > 0).sum(axis=2)

    @cached_property
    def majority_counts(self) -> np.ndarray:
        """``c_majority`` per (permutation, checkpoint) cell, ``(R, m)``."""
        return (self.positive_table > self.negative_table).sum(axis=2)

    @cached_property
    def _scan(self) -> _SwitchScan:
        """One switch scan over all permutations (rows are independent)."""
        flat = self._stacked.reshape(
            self.num_permutations * self.num_items, self.matrix.num_columns
        )
        return _SwitchScan(flat, backend=self.backend)

    @cached_property
    def _event_offsets(self) -> np.ndarray:
        """Event-array slice boundaries per permutation (events are row-sorted)."""
        bounds = np.arange(self.num_permutations + 1) * self.num_items
        return np.searchsorted(self._scan.event_rows, bounds)

    @cached_property
    def _events_by_column(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per permutation: global event indices sorted by column, plus the
        sorted columns themselves.

        Checkpoints are prefixes of the column-sorted order, so one
        ``searchsorted`` + slice per cell replaces a full comparison scan
        of the permutation's events.
        """
        scan, offsets = self._scan, self._event_offsets
        ordered = []
        for permutation in range(self.num_permutations):
            low, high = offsets[permutation : permutation + 2]
            columns = scan.event_cols[low:high]
            order = np.argsort(columns, kind="stable")
            ordered.append((low + order, columns[order]))
        return ordered

    @cached_property
    def _cell_vote_totals(self) -> np.ndarray:
        """Total votes per (permutation, checkpoint) cell, ``(R, m)``.

        One gather of the scan's cumulative seen counts at the checkpoint
        columns covers every cell at once.
        """
        resolved = np.asarray(self.resolved, dtype=np.int64)
        totals = np.zeros((self.num_permutations, resolved.size), dtype=np.int64)
        nonzero = resolved > 0
        if nonzero.any():
            gathered = self._scan.seen_cum[:, resolved[nonzero] - 1]
            totals[:, nonzero] = gathered.reshape(
                self.num_permutations, self.num_items, -1
            ).sum(axis=1, dtype=np.int64)
        return totals

    def switch_sweep_cells(self, permutation: int) -> _SwitchSweepCells:
        """Vectorised per-checkpoint switch statistics of one permutation.

        The batched SWITCH estimators consume these; cached so the
        remaining-switch and total-error estimators of one batch share the
        single ``(events x checkpoints)`` pass.
        """
        cells = self._sweep_cells.get(permutation)
        if cells is None:
            low, high = self._event_offsets[permutation : permutation + 2]
            cells = _SwitchSweepCells(
                self._scan,
                int(low),
                int(high),
                self.resolved,
                self._cell_vote_totals[permutation],
            )
            self._sweep_cells[permutation] = cells
        return cells

    def switch_stats(self, permutation: int, index: int) -> _EstimationSwitchStats:
        """Array-backed switch statistics of one (permutation, checkpoint) cell.

        Cells are cached so the SWITCH and SWITCH-total estimators of one
        batch share them; all quantities are integers identical to
        ``switch_statistics(permuted_matrix, checkpoint)``.
        """
        key = (permutation, index)
        cell = self._switch_cells.get(key)
        if cell is None:
            scan = self._scan
            upto = self.resolved[index]
            sorted_index, sorted_columns = self._events_by_column[permutation]
            cut = int(np.searchsorted(sorted_columns, upto, side="left"))
            # Ascending global indices restore the row-major scan order the
            # statistics require.
            active = np.sort(sorted_index[:cut])
            cell = _EstimationSwitchStats(
                rediscoveries=scan.rediscoveries(upto, active),
                states=scan.event_states[active],
                rows=scan.event_rows[active],
                total_votes=int(self._cell_vote_totals[permutation, index]),
            )
            self._switch_cells[key] = cell
        return cell

    @cached_property
    def majority_history(self) -> np.ndarray:
        """``c_majority`` after every prefix of every permutation, ``(R, K+1)``.

        Folded from the scan's per-vote majority deltas (one ``bincount``
        per permutation over its seen votes), so trend lookbacks at
        arbitrary positions — what the SWITCH total-error estimator needs —
        cost O(votes) for the whole batch, not O(N x K) per permutation.
        """
        num_columns = self.matrix.num_columns
        history = np.zeros((self.num_permutations, num_columns + 1), dtype=np.int64)
        if num_columns:
            xp = self.backend
            scan = self._scan
            bounds = np.searchsorted(
                scan.vote_rows, np.arange(self.num_permutations + 1) * self.num_items
            )
            for permutation in range(self.num_permutations):
                low, high = bounds[permutation : permutation + 2]
                # Integer deltas summed in the bincount's float64
                # accumulator stay exact (|sum| <= K << 2**53), so the
                # fold is bit-identical on every backend.
                net_per_column = xp.asnumpy(
                    xp.bincount(
                        xp.asarray(scan.vote_cols[low:high]),
                        weights=xp.asarray(scan.vote_majority_delta[low:high]),
                        minlength=num_columns,
                    )
                ).astype(np.int64)
                np.cumsum(net_per_column, out=history[permutation, 1:])
        return history

    # ------------------------------------------------------------------ #
    # per-permutation access
    # ------------------------------------------------------------------ #
    def permuted_matrix(self, permutation: int) -> ResponseMatrix:
        """Materialise one permutation as a :class:`ResponseMatrix`.

        Only the fallback path for estimate-only third-party estimators
        needs this; the identity order returns the original matrix.
        """
        if self._is_identity[permutation]:
            return self.matrix
        return self.matrix.permute_columns(
            [int(i) for i in self._orders[permutation]]
        )

    def states(self, permutation: int) -> List["PermutationSweepState"]:
        """One :class:`EstimationState` per checkpoint of one permutation.

        The list (and the lazy fingerprints of its states) is cached, so
        several estimators evaluating the same batch share every derived
        statistic — mirroring what :func:`matrix_sweep_states` does for a
        single sweep.
        """
        states = self._state_lists.get(permutation)
        if states is None:
            states = [
                PermutationSweepState(self, permutation, index)
                for index in range(self.num_checkpoints)
            ]
            self._state_lists[permutation] = states
        return states


class PermutationSweepState:
    """One (permutation, checkpoint) estimation state of a batch.

    The batch analogue of :class:`MatrixSweepState`: every accessor reads
    the shared stacked tables of its :class:`PermutationBatch`, returning
    integers bit-identical to the state of the materialised permuted
    matrix.
    """

    def __init__(self, batch: PermutationBatch, permutation: int, index: int):
        self._batch = batch
        self._permutation = permutation
        self._index = index
        self._fingerprint: Optional[Fingerprint] = None
        self.num_items = batch.num_items
        self.num_columns = batch.resolved[index]

    def positive_fingerprint(self) -> Fingerprint:
        """f-statistics over per-item positive-vote counts (lazy, cached)."""
        if self._fingerprint is None:
            counts = self._batch.positive_table[self._permutation, self._index]
            self._fingerprint = fingerprint_from_counts(counts.tolist())
        return self._fingerprint

    def nominal_count(self) -> int:
        """``c_nominal`` of the cell's prefix."""
        return int(self._batch.nominal_counts[self._permutation, self._index])

    def majority_count(self) -> int:
        """``c_majority`` of the cell's prefix."""
        return int(self._batch.majority_counts[self._permutation, self._index])

    def coverage_counts(self, min_votes: int) -> Tuple[int, int]:
        """``(covered, sample_errors)`` for the extrapolation baseline."""
        positives = self._batch.positive_table[self._permutation, self._index]
        negatives = self._batch.negative_table[self._permutation, self._index]
        covered_mask = (positives + negatives) >= min_votes
        sample_errors = int((covered_mask & (positives > negatives)).sum())
        return int(covered_mask.sum()), sample_errors

    def switch_stats(self) -> _EstimationSwitchStats:
        """Switch statistics of the cell (shared cross-permutation scan)."""
        return self._batch.switch_stats(self._permutation, self._index)

    def majority_count_back(self, lookback: int) -> int:
        """``c_majority`` at ``num_columns - lookback`` columns."""
        position = self.num_columns - _resolve_lookback(lookback, self.num_columns)
        return int(self._batch.majority_history[self._permutation, position])


class StreamingState:
    """Live estimation state maintained one worker response at a time.

    The streaming counterpart of :class:`MatrixPrefixState`: rather than
    deriving statistics from a stored matrix, it keeps every statistic an
    estimator reads — per-item count deltas, consensus margins, the
    positive-vote fingerprint, coverage histograms, the cumulative-margin
    switch fingerprint and the majority-count history — permanently up to
    date.  Ingesting a column that touches ``t`` items costs O(``t``),
    independent of how many columns came before; reading an estimate is
    then O(statistics), not O(matrix).

    After ingesting the first ``j`` columns of a matrix, every accessor
    returns integers bit-identical to ``MatrixPrefixState(matrix, j)``.
    This class is the state engine; use
    :class:`repro.streaming.StreamingSession` for the user-facing API
    (vote validation, estimator dispatch, matrix materialisation).
    """

    def __init__(self, item_ids: Sequence[int]):
        item_ids = list(item_ids)
        if len(set(item_ids)) != len(item_ids):
            raise ValidationError("item_ids must be unique")
        if not item_ids:
            raise ValidationError("a streaming state needs at least one item")
        self._item_ids = item_ids
        self._row_of: Dict[int, int] = {item: row for row, item in enumerate(item_ids)}
        self.num_items = len(item_ids)
        self.num_columns = 0
        self._positive = np.zeros(self.num_items, dtype=np.int64)
        self._negative = np.zeros(self.num_items, dtype=np.int64)
        self._positive_fingerprint = IncrementalFingerprint()
        self._nominal = 0
        self._majority = 0
        #: histogram of per-item total vote counts (key 0 included).
        self._votes_histogram: Dict[int, int] = {0: self.num_items}
        #: same histogram restricted to majority-dirty items.
        self._dirty_votes_histogram: Dict[int, int] = {}
        self._switch = IncrementalSwitchState(self.num_items)
        self._majority_history: List[int] = [0]

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    @property
    def item_ids(self) -> List[int]:
        """Item ids in row order."""
        return list(self._item_ids)

    def row_index(self, item_id: int) -> int:
        """Return the row index of ``item_id``."""
        try:
            return self._row_of[item_id]
        except KeyError:
            raise ValidationError(f"unknown item id {item_id}") from None

    def _bump_histogram(self, histogram: Dict[int, int], key: int, delta: int) -> None:
        updated = histogram.get(key, 0) + delta
        if updated:
            histogram[key] = updated
        else:
            histogram.pop(key, None)

    def _apply_vote(self, row: int, vote: int) -> None:
        """Fold one vote into every maintained statistic (O(1))."""
        old_positive = int(self._positive[row])
        old_negative = int(self._negative[row])
        old_total = old_positive + old_negative
        was_dirty = old_positive > old_negative
        if vote == DIRTY:
            self._positive[row] = old_positive + 1
            self._positive_fingerprint.reclassify(old_positive, old_positive + 1)
            self._positive_fingerprint.add_observations(1)
            if old_positive == 0:
                self._nominal += 1
        elif vote == CLEAN:
            self._negative[row] = old_negative + 1
        else:
            raise ValidationError(f"votes must be DIRTY or CLEAN, got {vote!r}")
        is_dirty = int(self._positive[row]) > int(self._negative[row])
        self._bump_histogram(self._votes_histogram, old_total, -1)
        self._bump_histogram(self._votes_histogram, old_total + 1, +1)
        if was_dirty:
            self._bump_histogram(self._dirty_votes_histogram, old_total, -1)
        if is_dirty:
            self._bump_histogram(self._dirty_votes_histogram, old_total + 1, +1)
        self._majority += int(is_dirty) - int(was_dirty)
        self._switch.observe(row, vote)

    def apply_column(self, rows: Sequence[int], votes: Sequence[int]) -> None:
        """Ingest one worker-task column touching the given item rows.

        ``rows`` and ``votes`` are aligned; items not listed are UNSEEN for
        this column.  The column boundary is what advances
        ``num_columns`` and extends the majority-count history.
        """
        for row, vote in zip(rows, votes):
            self._apply_vote(row, vote)
        self.num_columns += 1
        self._majority_history.append(self._majority)

    # ------------------------------------------------------------------ #
    # the EstimationState interface
    # ------------------------------------------------------------------ #
    def positive_fingerprint(self) -> Fingerprint:
        """f-statistics over per-item positive-vote counts."""
        return self._positive_fingerprint.snapshot()

    def nominal_count(self) -> int:
        """``c_nominal`` of everything ingested so far."""
        return self._nominal

    def majority_count(self) -> int:
        """``c_majority`` of everything ingested so far."""
        return self._majority

    def coverage_counts(self, min_votes: int) -> Tuple[int, int]:
        """``(covered, sample_errors)`` from the maintained histograms."""
        min_votes = int(min_votes)
        uncovered = sum(self._votes_histogram.get(n, 0) for n in range(min_votes))
        uncovered_dirty = sum(
            self._dirty_votes_histogram.get(n, 0) for n in range(min_votes)
        )
        return self.num_items - uncovered, self._majority - uncovered_dirty

    def switch_stats(self) -> IncrementalSwitchState:
        """The live switch statistics (same interface as the batch scan)."""
        return self._switch

    def majority_count_back(self, lookback: int) -> int:
        """``c_majority`` as it was ``lookback`` columns ago."""
        return self._majority_history[
            self.num_columns - _resolve_lookback(lookback, self.num_columns)
        ]

    # ------------------------------------------------------------------ #
    # snapshot codec
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Serialise the full live state into arrays plus JSON-safe metadata.

        The arrays dictionary is ``np.savez``-able; the metadata dictionary
        is ``json.dumps``-able.  Together they capture every maintained
        statistic — counts, fingerprints, histograms, the switch tracker
        and the majority history — so :meth:`from_arrays` rebuilds a state
        that is bit-identical to this one *and stays bit-identical* under
        any further ingestion (the snapshot/restore guarantee of
        :mod:`repro.streaming`).
        """
        arrays: Dict[str, np.ndarray] = {
            "item_ids": np.asarray(self._item_ids, dtype=np.int64),
            "positive": self._positive.copy(),
            "negative": self._negative.copy(),
            "majority_history": np.asarray(self._majority_history, dtype=np.int64),
        }
        switch_arrays, switch_meta = self._switch.to_arrays()
        for key, value in switch_arrays.items():
            arrays[f"switch_{key}"] = value
        meta: Dict[str, object] = {
            "num_columns": int(self.num_columns),
            "nominal": int(self._nominal),
            "majority": int(self._majority),
            "votes_histogram": {
                str(k): int(v) for k, v in self._votes_histogram.items()
            },
            "dirty_votes_histogram": {
                str(k): int(v) for k, v in self._dirty_votes_histogram.items()
            },
            "positive_fingerprint": self._positive_fingerprint.state_dict(),
            "switch": switch_meta,
        }
        return arrays, meta

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "StreamingState":
        """Rebuild a live state from :meth:`to_arrays` output."""
        item_ids = [int(item) for item in np.asarray(arrays["item_ids"])]
        state = cls(item_ids)
        positive = np.asarray(arrays["positive"], dtype=np.int64)
        negative = np.asarray(arrays["negative"], dtype=np.int64)
        if positive.shape != (state.num_items,) or negative.shape != (state.num_items,):
            raise ValidationError("count arrays must match the item dimension")
        state._positive = positive.copy()
        state._negative = negative.copy()
        state.num_columns = int(meta["num_columns"])
        state._nominal = int(meta["nominal"])
        state._majority = int(meta["majority"])
        state._votes_histogram = {
            int(k): int(v) for k, v in meta["votes_histogram"].items()
        }
        state._dirty_votes_histogram = {
            int(k): int(v) for k, v in meta["dirty_votes_histogram"].items()
        }
        state._positive_fingerprint = IncrementalFingerprint.from_state_dict(
            meta["positive_fingerprint"]
        )
        switch_arrays = {
            key[len("switch_"):]: value
            for key, value in arrays.items()
            if key.startswith("switch_")
        }
        state._switch = IncrementalSwitchState.from_arrays(switch_arrays, meta["switch"])
        if state._switch._margin.shape != (state.num_items,):
            raise ValidationError("switch arrays must match the item dimension")
        history = [int(v) for v in np.asarray(arrays["majority_history"])]
        if len(history) != state.num_columns + 1:
            raise ValidationError(
                "majority history must hold one entry per ingested column plus "
                f"the origin; got {len(history)} for {state.num_columns} column(s)"
            )
        state._majority_history = history
        return state

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> Tuple[int, int, int]:
        """Monotonic mutation version of the state.

        Changes whenever any maintained statistic can have changed: every
        vote advances ``total_votes``, every column boundary advances
        ``num_columns``, and the positive fingerprint carries its own
        mutation counter.  The serving layer keys its estimate cache on
        this tuple.
        """
        return (self.num_columns, self.total_votes, self._positive_fingerprint.version)

    @property
    def total_votes(self) -> int:
        """Total number of votes ingested."""
        return self._switch.total_votes

    def positive_counts(self) -> np.ndarray:
        """``n_i^+`` — a copy of the per-item dirty-vote counts."""
        return self._positive.copy()

    def negative_counts(self) -> np.ndarray:
        """``n_i^-`` — a copy of the per-item clean-vote counts."""
        return self._negative.copy()

    def consensus_labels(self) -> Dict[int, int]:
        """Per-item consensus labels under the switch scan's convention."""
        return self._switch.final_consensus(self._item_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"StreamingState(num_items={self.num_items}, "
            f"num_columns={self.num_columns}, votes={self.total_votes})"
        )
