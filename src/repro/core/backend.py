"""The array-namespace seam behind the ``(R, N, K)`` tensor kernels.

The cross-permutation sweep engine (:class:`~repro.core.state.PermutationBatch`
and the :class:`~repro.core.switch._SwitchScan` it drives) is, at heart, a
short list of bulk array operations: cumulative sums over the vote tensor,
segment sums into checkpoint count tables, compaction of the seen-vote
stream, ``bincount`` folds of per-vote majority deltas, sorted-run /
``searchsorted`` lookups over event arrays.  Welding those calls to
``np.*`` caps the engine at whatever NumPy achieves on one CPU.

This module puts the ~15 operations the hot path actually uses behind a
minimal :class:`ArrayBackend` seam so the same kernel code runs on:

* **numpy** — the always-available reference backend (bit-identity is
  defined against it);
* **numba** — NumPy arrays plus :mod:`numba`-compiled fused scan loops
  for the two remaining sequential passes (event compaction and the
  per-checkpoint sweep-cell walk, see
  :mod:`repro.core._scan_kernels`); registers only when Numba imports;
* **cupy** / **torch** — the same kernels over GPU (or accelerated CPU)
  arrays, registered only when the library imports; every result crosses
  back through :meth:`ArrayBackend.asnumpy`, so downstream scalar
  arithmetic — and therefore every estimate — is unchanged.

**Bit-identity is the contract**: every operation a backend implements is
integer-exact (cumulative counts, scatter adds, sorted lookups), so a
backend either reproduces the NumPy reference bit-for-bit or it is a bug.
The parity suite (``tests/test_backend_parity.py``) pins this per
registered backend, and ``repro bench`` refuses to record an entry for a
backend whose estimates differ from the reference.

Selection
---------
``get_backend(None)`` resolves, in order: the ``REPRO_BACKEND``
environment variable, then ``"numpy"``.  ``RunnerConfig(backend=...)``
and ``repro bench --backend ...`` pass names through the same resolver.
Unknown or unavailable names raise
:class:`~repro.common.exceptions.ConfigurationError` with the list of
backends usable on this machine.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.common.exceptions import ConfigurationError

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The name every bit-identity contract is defined against.
REFERENCE_BACKEND = "numpy"


class ArrayBackend:
    """The minimal array namespace the ``(R, N, K)`` hot path consumes.

    Subclasses provide one device/library binding each.  Operations take
    and return backend-native arrays (except :meth:`asnumpy`, the escape
    hatch back to host NumPy); dtypes are named with NumPy dtype objects,
    which each backend maps to its own dtype system.  Every operation is
    integer-exact — a backend must reproduce the NumPy reference
    bit-for-bit (pinned by ``tests/test_backend_parity.py``).

    Two capability flags steer the kernels:

    * :attr:`compiled_scans` — the backend wants the fused
      :mod:`repro.core._scan_kernels` loops instead of the vectorised
      NumPy formulation (the numba backend);
    * :attr:`device` — a short human-readable device label recorded in
      benchmark entries.
    """

    #: Registry name of the backend.
    name: str = "abstract"
    #: Device label recorded in benchmark entries.
    device: str = "cpu"
    #: Whether the compiled scan kernels should replace the vectorised
    #: NumPy scan formulation on this backend.
    compiled_scans: bool = False

    # -- array construction / movement --------------------------------- #
    def asarray(self, values, dtype=None):
        """Bring an array (host or native) onto this backend."""
        raise NotImplementedError

    def asnumpy(self, values) -> np.ndarray:
        """The escape hatch: a host ``np.ndarray`` view/copy of ``values``."""
        raise NotImplementedError

    def zeros(self, shape, dtype):
        raise NotImplementedError

    def full(self, shape, fill_value, dtype):
        raise NotImplementedError

    def arange(self, stop, dtype):
        raise NotImplementedError

    def astype(self, values, dtype):
        """Cast, copying only when the dtype actually changes."""
        raise NotImplementedError

    # -- the hot-path reductions and scans ------------------------------ #
    def cumsum(self, values, axis=None, dtype=None):
        """Cumulative sum (the segmented-margin / ``seen_cum`` workhorse)."""
        raise NotImplementedError

    def sum(self, values, axis=None, dtype=None):
        """Reduction behind the ``(R, m, N)`` checkpoint count tables."""
        raise NotImplementedError

    def maximum_accumulate(self, values):
        """Running maximum along the last axis (row-base propagation)."""
        raise NotImplementedError

    def where(self, condition, a, b):
        raise NotImplementedError

    def nonzero(self, values) -> Tuple:
        """Row-major coordinates of the nonzero entries (seen-vote compaction)."""
        raise NotImplementedError

    def bincount(self, values, weights=None, minlength=0):
        """The majority-history fold (scatter-add of per-vote deltas)."""
        raise NotImplementedError

    def segment_sum(self, values, segments, num_segments):
        """``add.at``-style scatter: sum ``values`` into ``num_segments`` bins.

        The generalised scatter op of the seam; ``bincount`` is its
        weights form, kept separate because libraries optimise them
        differently.
        """
        raise NotImplementedError

    def searchsorted(self, sorted_values, queries, side="left"):
        raise NotImplementedError

    def argsort_stable(self, values):
        """Stable ascending argsort (event reordering must preserve ties)."""
        raise NotImplementedError

    def sort(self, values):
        raise NotImplementedError

    def ascontiguous(self, values):
        """C-contiguous layout (the stacked tensor feeds axis-1 cumsums)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r} device={self.device!r}>"


class NumpyBackend(ArrayBackend):
    """The reference backend: plain NumPy on the host CPU."""

    name = "numpy"
    device = "cpu"
    compiled_scans = False

    def asarray(self, values, dtype=None):
        return np.asarray(values, dtype=dtype)

    def asnumpy(self, values) -> np.ndarray:
        return np.asarray(values)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def full(self, shape, fill_value, dtype):
        return np.full(shape, fill_value, dtype=dtype)

    def arange(self, stop, dtype):
        return np.arange(stop, dtype=dtype)

    def astype(self, values, dtype):
        return values.astype(dtype, copy=False)

    def cumsum(self, values, axis=None, dtype=None):
        return np.cumsum(values, axis=axis, dtype=dtype)

    def sum(self, values, axis=None, dtype=None):
        return values.sum(axis=axis, dtype=dtype)

    def maximum_accumulate(self, values):
        return np.maximum.accumulate(values)

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def nonzero(self, values):
        return np.nonzero(values)

    def bincount(self, values, weights=None, minlength=0):
        return np.bincount(values, weights=weights, minlength=minlength)

    def segment_sum(self, values, segments, num_segments):
        out = np.zeros(num_segments, dtype=values.dtype)
        np.add.at(out, segments, values)
        return out

    def searchsorted(self, sorted_values, queries, side="left"):
        return np.searchsorted(sorted_values, queries, side=side)

    def argsort_stable(self, values):
        return np.argsort(values, kind="stable")

    def sort(self, values):
        return np.sort(values)

    def ascontiguous(self, values):
        return np.ascontiguousarray(values)


class NumbaBackend(NumpyBackend):
    """NumPy arrays + Numba-compiled fused scan loops.

    Array storage and every bulk vectorised op are inherited unchanged
    from the reference backend; what changes is that the two remaining
    sequential scan passes — event compaction and the per-checkpoint
    sweep-cell walk — run as ``@njit`` loops
    (:mod:`repro.core._scan_kernels`) instead of chains of vectorised
    NumPy temporaries.  The loops compute the identical integers, so the
    backend is bit-identical to the reference by construction.
    """

    name = "numba"
    device = "cpu"
    compiled_scans = True

    def __init__(self) -> None:
        from repro.core import _scan_kernels

        if not _scan_kernels.numba_available():
            raise ConfigurationError(
                "backend 'numba' needs the numba package, which is not "
                "installed on this machine"
            )


class CupyBackend(ArrayBackend):
    """CuPy on the current CUDA device (registers only when importable)."""

    name = "cupy"
    device = "cuda"
    compiled_scans = False

    def __init__(self) -> None:
        try:
            import cupy  # noqa: F401 - availability probe

            cupy.zeros(1)  # fails fast on a toolkit without a usable device
        except Exception as error:
            raise ConfigurationError(
                "backend 'cupy' needs the cupy package and a usable CUDA "
                f"device ({error!r})"
            ) from None
        self._cp = cupy

    def asarray(self, values, dtype=None):
        return self._cp.asarray(values, dtype=dtype)

    def asnumpy(self, values) -> np.ndarray:
        return self._cp.asnumpy(values)

    def zeros(self, shape, dtype):
        return self._cp.zeros(shape, dtype=dtype)

    def full(self, shape, fill_value, dtype):
        return self._cp.full(shape, fill_value, dtype=dtype)

    def arange(self, stop, dtype):
        return self._cp.arange(stop, dtype=dtype)

    def astype(self, values, dtype):
        return values.astype(dtype, copy=False)

    def cumsum(self, values, axis=None, dtype=None):
        return self._cp.cumsum(values, axis=axis, dtype=dtype)

    def sum(self, values, axis=None, dtype=None):
        return values.sum(axis=axis, dtype=dtype)

    def maximum_accumulate(self, values):
        return self._cp.maximum.accumulate(values)

    def where(self, condition, a, b):
        return self._cp.where(condition, a, b)

    def nonzero(self, values):
        return self._cp.nonzero(values)

    def bincount(self, values, weights=None, minlength=0):
        return self._cp.bincount(values, weights=weights, minlength=minlength)

    def segment_sum(self, values, segments, num_segments):
        out = self._cp.zeros(num_segments, dtype=values.dtype)
        self._cp.add.at(out, segments, values)
        return out

    def searchsorted(self, sorted_values, queries, side="left"):
        return self._cp.searchsorted(sorted_values, queries, side=side)

    def argsort_stable(self, values):
        # cupy.argsort is not guaranteed stable; lexsort with the index as
        # the secondary key is (primary key last, per the lexsort contract).
        cp = self._cp
        index = cp.arange(values.shape[0], dtype=cp.int64)
        return cp.lexsort(cp.stack((index, values)))

    def sort(self, values):
        return self._cp.sort(values)

    def ascontiguous(self, values):
        return self._cp.ascontiguousarray(values)


class TorchBackend(ArrayBackend):
    """PyTorch tensors (registers only when importable; GPU when present)."""

    name = "torch"
    compiled_scans = False

    def __init__(self) -> None:
        try:
            import torch
        except Exception as error:
            raise ConfigurationError(
                f"backend 'torch' needs the torch package ({error!r})"
            ) from None
        self._torch = torch
        self._device = torch.device("cuda" if torch.cuda.is_available() else "cpu")
        self.device = str(self._device)

    def _dtype(self, dtype):
        """Map a NumPy dtype name onto the torch dtype system."""
        if dtype is None:
            return None
        table = {
            "bool": self._torch.bool,
            "int8": self._torch.int8,
            "int16": self._torch.int16,
            "int32": self._torch.int32,
            "int64": self._torch.int64,
            "float32": self._torch.float32,
            "float64": self._torch.float64,
        }
        return table[np.dtype(dtype).name]

    def asarray(self, values, dtype=None):
        torch = self._torch
        if isinstance(values, torch.Tensor):
            tensor = values.to(self._device)
        else:
            tensor = torch.from_numpy(np.ascontiguousarray(values)).to(self._device)
        wanted = self._dtype(dtype)
        return tensor if wanted is None else tensor.to(wanted)

    def asnumpy(self, values) -> np.ndarray:
        if isinstance(values, self._torch.Tensor):
            return values.cpu().numpy()
        return np.asarray(values)

    def zeros(self, shape, dtype):
        return self._torch.zeros(shape, dtype=self._dtype(dtype), device=self._device)

    def full(self, shape, fill_value, dtype):
        return self._torch.full(
            shape, fill_value, dtype=self._dtype(dtype), device=self._device
        )

    def arange(self, stop, dtype):
        return self._torch.arange(stop, dtype=self._dtype(dtype), device=self._device)

    def astype(self, values, dtype):
        return values.to(self._dtype(dtype))

    def cumsum(self, values, axis=None, dtype=None):
        dim = -1 if axis is None else axis
        flat = values.reshape(-1) if axis is None else values
        wanted = self._dtype(dtype)
        if wanted is None:
            return self._torch.cumsum(flat, dim=dim)
        return self._torch.cumsum(flat.to(wanted), dim=dim)

    def sum(self, values, axis=None, dtype=None):
        wanted = self._dtype(dtype)
        if axis is None:
            return values.sum(dtype=wanted)
        return values.sum(dim=axis, dtype=wanted)

    def maximum_accumulate(self, values):
        return self._torch.cummax(values, dim=-1).values

    def where(self, condition, a, b):
        torch = self._torch
        if not isinstance(a, torch.Tensor):
            a = torch.tensor(a, device=self._device)
        if not isinstance(b, torch.Tensor):
            b = torch.tensor(b, device=self._device)
        return torch.where(condition, a, b)

    def nonzero(self, values):
        return self._torch.nonzero(values, as_tuple=True)

    def bincount(self, values, weights=None, minlength=0):
        if weights is not None:
            weights = self.asarray(weights, dtype=np.float64)
        return self._torch.bincount(values, weights=weights, minlength=minlength)

    def segment_sum(self, values, segments, num_segments):
        out = self._torch.zeros(
            num_segments, dtype=values.dtype, device=self._device
        )
        return out.index_add_(0, segments.to(self._torch.int64), values)

    def searchsorted(self, sorted_values, queries, side="left"):
        return self._torch.searchsorted(
            sorted_values, queries, right=(side == "right")
        )

    def argsort_stable(self, values):
        return self._torch.argsort(values, stable=True)

    def sort(self, values):
        return self._torch.sort(values).values

    def ascontiguous(self, values):
        return values.contiguous()


#: name -> constructor; construction raises ``ConfigurationError`` when the
#: backing library is missing (that is what "registered but unavailable"
#: means for the optional backends).
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "cupy": CupyBackend,
    "torch": TorchBackend,
}

#: Constructed-backend cache (backends are stateless; one instance each).
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], *, overwrite: bool = False
) -> None:
    """Register a third-party :class:`ArrayBackend` factory under ``name``.

    The factory must raise :class:`ConfigurationError` when its backing
    library is unavailable — that is how :func:`available_backends`
    probes usability.
    """
    if name in _FACTORIES and not overwrite:
        raise ConfigurationError(
            f"backend {name!r} is already registered "
            f"(registered: {', '.join(registered_backends())}); "
            "pass overwrite=True to replace it"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    if name == REFERENCE_BACKEND:
        raise ConfigurationError("the numpy reference backend cannot be removed")
    _FACTORIES.pop(name, None)
    _INSTANCES.pop(name, None)


def registered_backends() -> List[str]:
    """Every registered backend name, available on this machine or not."""
    return sorted(_FACTORIES)


def available_backends() -> List[str]:
    """The registered backends that actually construct on this machine."""
    usable = []
    for name in registered_backends():
        try:
            _instance(name)
        except ConfigurationError:
            continue
        usable.append(name)
    return usable


def _instance(name: str) -> ArrayBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _FACTORIES[name]()
        _INSTANCES[name] = backend
    return backend


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Resolve a backend by name, env var or default.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and
    falls back to the numpy reference.  Unknown names and registered-but
    -unavailable backends both raise
    :class:`~repro.common.exceptions.ConfigurationError` whose one-line
    message lists the backends usable on this machine.
    """
    source = "requested"
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or REFERENCE_BACKEND
        source = f"{BACKEND_ENV_VAR} names" if name != REFERENCE_BACKEND else "default"
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown backend {name!r} ({source}); registered: "
            f"{', '.join(registered_backends())}; available here: "
            f"{', '.join(available_backends())}"
        )
    try:
        return _instance(name)
    except ConfigurationError as error:
        raise ConfigurationError(
            f"{error} (available here: {', '.join(available_backends())})"
        ) from None


def resolve_backend(
    backend: Union[ArrayBackend, str, None]
) -> ArrayBackend:
    """Accept an instance, a name or ``None`` and return an instance."""
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)
