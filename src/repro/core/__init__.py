"""Core estimators: the paper's primary contribution.

This package implements the data-quality estimators the paper proposes and
the baselines it compares against:

==========================  ==================================================
object                      role in the paper
==========================  ==================================================
``nominal_estimate``        descriptive baseline (Section 2.2.1)
``VotingEstimator``         descriptive majority consensus (Section 2.2.2)
``ExtrapolationEstimator``  predictive baseline: perfectly-cleaned sample
                            scaled up (Section 2.2.3)
``Chao92Estimator``         species estimation on positive votes
                            (Section 3.2, Equation 4)
``VChao92Estimator``        shift-robust variant, V-CHAO (Section 3.3,
                            Equation 6)
``SwitchEstimator``         remaining-switch estimation (Section 4.2,
                            Equation 8)
``SwitchTotalErrorEstimator``  switch-corrected total error, the paper's
                            SWITCH / DQM method (Section 4.3)
==========================  ==================================================

plus the shared machinery: f-statistics (``fingerprint``), sample-coverage
and skew estimation, extra species estimators used for ablations, the
scaled-error metric (SRMSE), and an estimator registry so experiment
configurations can refer to estimators by name.
"""

from repro.core.backend import (
    ArrayBackend,
    CupyBackend,
    NumbaBackend,
    NumpyBackend,
    TorchBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.core.base import (
    EstimatorProtocol,
    EstimateResult,
    StateEstimatorMixin,
    SweepEstimatorMixin,
    batch_estimates,
    sweep_estimates,
)
from repro.core.chao92 import (
    Chao92Estimator,
    chao92_components,
    chao92_estimate,
    good_turing_coverage,
)
from repro.core.descriptive import (
    CollusionReport,
    NominalEstimator,
    VotingEstimator,
    collusion_report,
    majority_estimate,
    nominal_estimate,
)
from repro.core.extrapolation import ExtrapolationEstimator, extrapolate_from_sample
from repro.core.fstatistics import (
    Fingerprint,
    IncrementalFingerprint,
    fingerprint_from_counts,
    fingerprints_from_count_table,
    positive_vote_fingerprint,
    positive_vote_fingerprints,
)
from repro.core.metrics import (
    absolute_error,
    relative_error,
    scaled_rmse,
    signed_error,
)
from repro.core.registry import available_estimators, get_estimator, register_estimator
from repro.core.state import (
    EstimationState,
    MatrixPrefixState,
    MatrixSweepState,
    PermutationBatch,
    PermutationSweepState,
    StreamingState,
    matrix_sweep_states,
)
from repro.core.species import (
    chao84_estimate,
    good_turing_estimate,
    jackknife_estimate,
)
from repro.core.switch import (
    SwitchEstimator,
    SwitchStatistics,
    count_switches,
    switch_statistics,
    switch_statistics_sweep,
)
from repro.core.total_error import SwitchTotalErrorEstimator
from repro.core.vchao92 import VChao92Estimator, vchao92_estimate

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NumbaBackend",
    "CupyBackend",
    "TorchBackend",
    "get_backend",
    "resolve_backend",
    "register_backend",
    "registered_backends",
    "available_backends",
    "EstimatorProtocol",
    "EstimateResult",
    "StateEstimatorMixin",
    "SweepEstimatorMixin",
    "sweep_estimates",
    "batch_estimates",
    "EstimationState",
    "MatrixPrefixState",
    "MatrixSweepState",
    "StreamingState",
    "matrix_sweep_states",
    "PermutationBatch",
    "PermutationSweepState",
    "Fingerprint",
    "IncrementalFingerprint",
    "fingerprint_from_counts",
    "fingerprints_from_count_table",
    "positive_vote_fingerprint",
    "positive_vote_fingerprints",
    "Chao92Estimator",
    "chao92_components",
    "chao92_estimate",
    "good_turing_coverage",
    "VChao92Estimator",
    "vchao92_estimate",
    "NominalEstimator",
    "VotingEstimator",
    "nominal_estimate",
    "majority_estimate",
    "CollusionReport",
    "collusion_report",
    "ExtrapolationEstimator",
    "extrapolate_from_sample",
    "SwitchEstimator",
    "SwitchStatistics",
    "count_switches",
    "switch_statistics",
    "switch_statistics_sweep",
    "SwitchTotalErrorEstimator",
    "chao84_estimate",
    "good_turing_estimate",
    "jackknife_estimate",
    "scaled_rmse",
    "absolute_error",
    "relative_error",
    "signed_error",
    "register_estimator",
    "get_estimator",
    "available_estimators",
]
