"""Error metrics used to score estimators against the ground truth.

The paper's simulation study reports a *scaled* root-mean-square error

.. math::

    SRMSE = \\frac{1}{D} \\sqrt{\\frac{1}{r} \\sum_r (\\hat{D} - D)^2}

over ``r`` repeated trials, because the raw estimates of different
techniques differ by orders of magnitude when Chao92 blows up on false
positives.  The plain absolute/relative/signed errors are provided for the
per-trace figures.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.common.exceptions import ValidationError


def absolute_error(estimate: float, truth: float) -> float:
    """``|estimate - truth|``."""
    return abs(float(estimate) - float(truth))


def signed_error(estimate: float, truth: float) -> float:
    """``estimate - truth`` (positive = overestimate)."""
    return float(estimate) - float(truth)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth``.

    Raises
    ------
    repro.common.exceptions.ValidationError
        If ``truth`` is zero (the relative error is undefined).
    """
    truth = float(truth)
    if truth == 0.0:
        raise ValidationError("relative_error is undefined for truth == 0")
    return abs(float(estimate) - truth) / abs(truth)


def scaled_rmse(estimates: Iterable[float], truth: float) -> float:
    """The paper's SRMSE: RMSE over trials, scaled by the true value.

    Parameters
    ----------
    estimates:
        The estimate produced in each of the ``r`` trials.
    truth:
        The true value ``D``.

    Raises
    ------
    repro.common.exceptions.ValidationError
        If no estimates are given or ``truth`` is zero.
    """
    values = np.asarray(list(estimates), dtype=float)
    truth = float(truth)
    if values.size == 0:
        raise ValidationError("scaled_rmse needs at least one estimate")
    if truth == 0.0:
        raise ValidationError("scaled_rmse is undefined for truth == 0")
    rmse = float(np.sqrt(np.mean((values - truth) ** 2)))
    return rmse / abs(truth)


def mean_and_std(values: Sequence[float]) -> tuple:
    """Convenience ``(mean, sample std)`` pair used by the report tables."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return (0.0, 0.0)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return (mean, std)
