"""The extrapolation baseline (Section 2.2.3 of the paper).

The simplest predictive technique: perfectly clean a small sample of the
data (with an oracle or with heavy crowd redundancy), compute the sample
error rate, and scale it to the whole dataset.  The paper uses it (as
EXTRAPOL) to illustrate two failure modes:

* the **chicken-and-egg problem** — you cannot know the sample is
  perfectly clean without already having a quality metric, and
* **unrepresentative samples** — when errors are rare, small samples have
  enormous variance (Figure 2a), and realistic crowd cleaning of the sample
  drifts with worker mistakes (Figure 2b).

The module provides the pure arithmetic (:func:`extrapolate_from_sample`),
an oracle-sample study helper used by the Figure 2(a) benchmark, and a
matrix-level estimator that extrapolates from the majority labels of the
items covered so far (the "realistic" variant in Figure 2b and in the
EXTRAPOL bands of Figures 3–5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.rng import RandomState, ensure_rng
from repro.common.validation import check_fraction, check_int
from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.data.record import Dataset


def extrapolate_from_sample(
    sample_size: int,
    sample_errors: int,
    population_size: int,
) -> Dict[str, float]:
    """Scale a sample error count up to the population (the paper's example).

    ``err_total = (population_size / sample_size) * sample_errors`` and
    ``err_remaining = err_total - sample_errors``.

    Parameters
    ----------
    sample_size:
        Number of items in the perfectly-cleaned sample.
    sample_errors:
        Number of errors found in the sample.
    population_size:
        Total number of items in the dataset.

    Returns
    -------
    dict
        ``{"total": ..., "remaining": ..., "rate": ...}``.
    """
    check_int(sample_size, "sample_size", minimum=1)
    check_int(sample_errors, "sample_errors", minimum=0)
    check_int(population_size, "population_size", minimum=1)
    rate = sample_errors / sample_size
    total = rate * population_size
    return {
        "total": float(total),
        "remaining": float(total - sample_errors),
        "rate": float(rate),
    }


def oracle_sample_extrapolations(
    dataset: Dataset,
    *,
    sample_fraction: float = 0.02,
    num_samples: int = 4,
    candidate_ids: Optional[Sequence[int]] = None,
    seed: RandomState = None,
) -> List[Dict[str, float]]:
    """Reproduce the Figure 2(a) study: oracle-cleaned random samples.

    Draws ``num_samples`` independent random samples of ``sample_fraction``
    of the candidate items, counts their true errors using the gold
    standard (the "oracle"), and extrapolates each to the full candidate
    set.

    Returns
    -------
    list of dict
        One extrapolation result per sample, each including the sample size
        and the number of errors the oracle found.
    """
    check_fraction(sample_fraction, "sample_fraction", allow_zero=False)
    check_int(num_samples, "num_samples", minimum=1)
    rng = ensure_rng(seed)
    items = list(candidate_ids) if candidate_ids is not None else list(dataset.record_ids)
    population = len(items)
    sample_size = max(1, int(round(sample_fraction * population)))
    results = []
    for _ in range(num_samples):
        chosen = rng.choice(population, size=sample_size, replace=False)
        sample_items = [items[int(i)] for i in chosen]
        errors = sum(1 for item in sample_items if dataset.is_dirty(item))
        extrapolation = extrapolate_from_sample(sample_size, errors, population)
        extrapolation["sample_size"] = float(sample_size)
        extrapolation["sample_errors"] = float(errors)
        results.append(extrapolation)
    return results


@dataclass
class ExtrapolationEstimator(StateEstimatorMixin):
    """Matrix-level extrapolation baseline (EXTRAPOL).

    Takes the items that have received at least ``min_votes`` votes as "the
    cleaned sample", labels them by majority consensus, and scales the
    sample error rate to the full candidate set.  This is the realistic
    (crowd-cleaned, not oracle-cleaned) variant of the baseline: the sample
    labels may themselves be wrong, which is exactly the drift Figure 2(b)
    demonstrates.

    Parameters
    ----------
    min_votes:
        Minimum number of votes for an item to count as part of the
        cleaned sample.
    name:
        Registry / report name.
    """

    min_votes: int = 1
    name: str = "extrapolation"

    def __post_init__(self) -> None:
        check_int(self.min_votes, "min_votes", minimum=1)

    def _result(self, covered: int, sample_errors: int, num_items: int) -> EstimateResult:
        if covered == 0:
            return EstimateResult(
                estimate=0.0,
                observed=0.0,
                details={"covered_items": 0.0, "sample_errors": 0.0},
            )
        extrapolation = extrapolate_from_sample(covered, sample_errors, num_items)
        return EstimateResult(
            estimate=extrapolation["total"],
            observed=float(sample_errors),
            details={
                "covered_items": float(covered),
                "sample_errors": float(sample_errors),
                "sample_rate": extrapolation["rate"],
            },
        )

    def estimate_state(self, state) -> EstimateResult:
        """Extrapolate the majority error rate of covered items to all items.

        An item is in the "cleaned sample" when it has at least
        ``min_votes`` votes; it counts as a sample error when its majority
        consensus is dirty (ties default to clean, matching
        :func:`~repro.crowd.consensus.majority_labels`).
        """
        covered, sample_errors = state.coverage_counts(self.min_votes)
        return self._result(covered, sample_errors, state.num_items)

    def estimate_sweep_batch(self, batch) -> list:
        """Vectorised cross-permutation sweep over a :class:`PermutationBatch`.

        The coverage masks reduce from the batched count tables in C; the
        per-cell scaling reuses the exact scalar code path, so every
        estimate is bit-identical to the serial sweep.
        """
        positives, negatives = batch.positive_table, batch.negative_table
        covered_mask = (positives + negatives) >= self.min_votes  # (R, m, N)
        covered = covered_mask.sum(axis=2)
        sample_errors = (covered_mask & (positives > negatives)).sum(axis=2)
        return [
            [
                self._result(
                    int(covered[p, j]), int(sample_errors[p, j]), batch.num_items
                )
                for j in range(batch.num_checkpoints)
            ]
            for p in range(batch.num_permutations)
        ]


def extrapolation_band(
    estimates: Sequence[float],
) -> Dict[str, float]:
    """Summarise repeated extrapolations as a mean +/- one-standard-deviation band.

    The paper plots EXTRAPOL as such a band; the benchmark harness uses this
    helper to produce the band edges.
    """
    values = np.asarray(list(estimates), dtype=float)
    if values.size == 0:
        return {"mean": 0.0, "std": 0.0, "low": 0.0, "high": 0.0}
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    return {"mean": mean, "std": std, "low": mean - std, "high": mean + std}
