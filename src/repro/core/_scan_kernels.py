"""Fused scan kernels for the switch hot path (Numba-compiled when available).

Two passes of the switch machinery resist full vectorisation:

* **event compaction** — the per-vote margin recurrence over the seen-vote
  stream.  The vectorised formulation (`core/switch.py`) simulates the
  per-row segmented cumsum with a *global* cumulative sum minus a row base,
  which costs five O(V) temporaries and forces the global accumulator to a
  wider dtype than any per-row margin needs.  The fused loop walks the
  stream once, keeps one scalar margin per row run, and never materialises
  an intermediate.
* **the sweep-cell walk** — truncating every event's rediscovery count
  against every checkpoint.  The vectorised formulation materialises ~10
  dense ``(events × checkpoints)`` temporaries; the fused loop visits only
  the *active* (event, checkpoint) pairs (each event starts at its first
  active checkpoint via ``searchsorted``) and accumulates the sufficient
  statistics in place.

Both kernels are plain-Python/NumPy functions wrapped with ``numba.njit``
when Numba is importable; without Numba the same functions remain callable
(slowly) so the kernel *logic* is testable on any machine — the parity
tests in ``tests/test_backend.py`` compare them against the vectorised
reference on small inputs regardless of Numba's presence.

Every kernel computes pure integer arithmetic identical to the vectorised
formulation, so results are bit-identical by construction; the numba
backend (:mod:`repro.core.backend`) activates them via its
``compiled_scans`` capability flag.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the sandbox default
    numba = None
    NUMBA_AVAILABLE = False


def numba_available() -> bool:
    """Whether the compiled (njit) kernel variants exist on this machine."""
    return NUMBA_AVAILABLE


def compact_events_py(
    seen_rows: np.ndarray, deltas: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-vote switch bookkeeping over the compacted seen-vote stream.

    Parameters
    ----------
    seen_rows:
        ``(V,)`` int64 row of every seen vote, in row-major scan order
        (ascending runs — all of a row's votes are contiguous).
    deltas:
        ``(V,)`` ±1 margin deltas (+1 for a dirty vote, -1 for clean).

    Returns
    -------
    ``(votes_state, is_event, majority_delta)`` — per vote: the consensus
    label after the vote (tie-flip convention), whether the vote switched
    the consensus, and the change of the majority count in {-1, 0, +1}.

    The per-row margin lives in a scalar, so no global accumulator exists
    to overflow — unlike the vectorised global-cumsum formulation, which
    must promote its accumulator dtype once the total vote count
    approaches the int32 range.
    """
    num_votes = deltas.shape[0]
    votes_state = np.empty(num_votes, dtype=np.bool_)
    is_event = np.empty(num_votes, dtype=np.bool_)
    majority_delta = np.empty(num_votes, dtype=np.int8)
    previous_row = np.int64(-1)
    margin = np.int64(0)
    previous_state = False
    for i in range(num_votes):
        row = seen_rows[i]
        if row != previous_row:
            previous_row = row
            margin = np.int64(0)
            previous_state = False  # every item starts clean
        previous_margin = margin
        margin = margin + deltas[i]
        if margin > 0:
            state = True
        elif margin < 0:
            state = False
        else:
            # A tie can only follow a margin of ±1; flip away from the
            # majority the previous margin implied.
            state = previous_margin < 0
        votes_state[i] = state
        majority_delta[i] = np.int8(margin > 0) - np.int8(previous_margin > 0)
        is_event[i] = state != previous_state
        previous_state = state
    return votes_state, is_event, majority_delta


def sweep_cells_py(
    rows: np.ndarray,
    cols: np.ndarray,
    vote_index: np.ndarray,
    next_col: np.ndarray,
    positive: np.ndarray,
    seen_cum: np.ndarray,
    checkpoints: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Switch sufficient statistics for every checkpoint of one permutation.

    Parameters mirror the event arrays of one permutation's slice of a
    ``_SwitchScan`` (all row-major ordered) plus the scan's ``(N, K)``
    cumulative seen-count table and the ascending resolved checkpoints.

    Returns
    -------
    ``(n_switch, counts, singletons, pair_sums, items)`` where ``n_switch``
    is ``(m,)`` and the rest are ``(3, m)`` int64 arrays indexed by
    direction — 0 = all switches, 1 = positive, 2 = negative — exactly the
    quantities ``_SwitchSweepCells`` exposes per direction key.

    An event only contributes to checkpoints after its column
    (``cols[e] < checkpoint``); since checkpoints ascend, each event walks
    ``checkpoints[searchsorted(…, cols[e], 'right'):]`` and nothing else,
    so the work is proportional to the number of *active* pairs and no
    ``(events × checkpoints)`` temporary is ever materialised.
    """
    num_events = rows.shape[0]
    num_checkpoints = checkpoints.shape[0]
    n_switch = np.zeros(num_checkpoints, dtype=np.int64)
    counts = np.zeros((3, num_checkpoints), dtype=np.int64)
    singletons = np.zeros((3, num_checkpoints), dtype=np.int64)
    pair_sums = np.zeros((3, num_checkpoints), dtype=np.int64)
    items = np.zeros((3, num_checkpoints), dtype=np.int64)
    previous_row = np.int64(-1)
    row_has_positive = False
    row_has_negative = False
    for e in range(num_events):
        row = rows[e]
        if row != previous_row:
            previous_row = row
            row_has_positive = False
            row_has_negative = False
            first_of_row = True
        else:
            first_of_row = False
        if positive[e]:
            direction = 1
            first_of_direction = not row_has_positive
            row_has_positive = True
        else:
            direction = 2
            first_of_direction = not row_has_negative
            row_has_negative = True
        start = np.searchsorted(checkpoints, cols[e], side="right")
        for j in range(start, num_checkpoints):
            last_col = checkpoints[j]
            if next_col[e] < last_col:
                last_col = next_col[e]
            rediscoveries = (
                np.int64(seen_cum[row, last_col - 1]) - vote_index[e] + 1
            )
            n_switch[j] += rediscoveries
            counts[0, j] += 1
            counts[direction, j] += 1
            if rediscoveries == 1:
                singletons[0, j] += 1
                singletons[direction, j] += 1
            pair_sums[0, j] += rediscoveries * (rediscoveries - 1)
            pair_sums[direction, j] += rediscoveries * (rediscoveries - 1)
            if first_of_row:
                items[0, j] += 1
            if first_of_direction:
                items[direction, j] += 1
    return n_switch, counts, singletons, pair_sums, items


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    compact_events = numba.njit(cache=True)(compact_events_py)
    sweep_cells = numba.njit(cache=True)(sweep_cells_py)
else:
    # The kernels stay callable (as interpreted Python) so their logic is
    # testable everywhere; the numba *backend* refuses to construct, so no
    # hot path ever runs them uncompiled.
    compact_events = compact_events_py
    sweep_cells = sweep_cells_py
