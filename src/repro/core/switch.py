"""Switch counting and the SWITCH remaining-switch estimator (Section 4).

The paper reformulates the quality-estimation problem: instead of asking
"how many errors does the dataset contain?" it asks "how many of the
current majority-consensus decisions will still *switch* before reaching
the ground truth?" (Problem 2).  Switches are far more robust to false
positives than raw positive votes, because a single stray vote rarely flips
a consensus that already has support.

Per item, the vote sequence is scanned with the paper's conventions:

* every item starts with the default label *clean*;
* after each vote the consensus label is recomputed: a strict positive
  majority means *dirty*, a strict negative majority means *clean*, and a
  **tie** flips the label away from its current value (the paper's
  "assume a switch happens every time there is a tie");
* every change of the consensus label is a switch — this covers both the
  first positive vote (Equation 7, part ii) and every tie (Equation 7,
  part i);
* a vote that does not change the consensus *rediscovers* the current
  switch (singleton → doubleton → ...), defining the f'-statistics;
* votes before an item's first switch are no-ops: they contribute neither
  to the f'-statistics nor to the adjusted observation count ``n_switch``.

The only place this deviates from a literal reading of Equation 7 is the
vote immediately after a tie: when that vote restores the pre-tie
majority, the consensus label changes again and we count a switch even
though no new tie occurred.  Tracking the consensus directly keeps the
final per-item labels consistent with the majority vote, which is what
both the rediscovery bookkeeping and the total-error correction of
Section 4.3 rely on.

The total number of remaining switches is then estimated with the same
sample-coverage machinery as Chao92 (Equation 8), and split into positive
(clean→dirty) and negative (dirty→clean) switches for the total-error
correction of Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.labels import CLEAN, DIRTY, UNSEEN
from repro.core.base import EstimateResult
from repro.core.chao92 import chao92_estimate, good_turing_coverage, skew_coefficient
from repro.core.fstatistics import Fingerprint, fingerprint_from_counts
from repro.crowd.response_matrix import ResponseMatrix

#: Direction labels for switches.
POSITIVE = "positive"  # consensus flips clean -> dirty
NEGATIVE = "negative"  # consensus flips dirty -> clean


@dataclass(frozen=True)
class SwitchEvent:
    """One observed consensus switch on one item.

    Attributes
    ----------
    item_id:
        The item whose consensus switched.
    direction:
        ``"positive"`` (clean→dirty) or ``"negative"`` (dirty→clean).
    vote_index:
        1-based position within the item's own vote sequence at which the
        switch occurred.
    rediscoveries:
        How many times the switch was observed: 1 for the switch-causing
        vote plus one per subsequent non-switching vote (this is the
        occurrence count that feeds the f'-statistics).
    """

    item_id: int
    direction: str
    vote_index: int
    rediscoveries: int


@dataclass
class SwitchStatistics:
    """All switch-derived statistics of a response-matrix prefix.

    Attributes
    ----------
    events:
        Every observed switch event, in scan order.
    num_switches:
        ``switch(I)`` — the total number of observed switches (Equation 7).
    items_with_switches:
        ``c_switch`` — the number of items with at least one switch.
    n_switch:
        The adjusted observation count: all votes minus the per-item no-op
        votes preceding the first switch.
    total_votes:
        The unadjusted total number of votes in the prefix.
    final_consensus:
        Mapping from item id to its consensus label after the scan
        (0 = clean, 1 = dirty), using the paper's default-clean /
        tie-switches convention.
    """

    events: List[SwitchEvent] = field(default_factory=list)
    num_switches: int = 0
    items_with_switches: int = 0
    n_switch: int = 0
    total_votes: int = 0
    final_consensus: Dict[int, int] = field(default_factory=dict)

    # -- convenience filters ------------------------------------------- #
    def events_by_direction(self, direction: str) -> List[SwitchEvent]:
        """Return the switch events of one direction."""
        return [event for event in self.events if event.direction == direction]

    def num_switches_by_direction(self, direction: str) -> int:
        """Observed switch count restricted to one direction."""
        return len(self.events_by_direction(direction))

    def items_with_direction(self, direction: str) -> int:
        """Number of items with at least one switch of the given direction."""
        return len({event.item_id for event in self.events if event.direction == direction})

    def fingerprint(self, direction: Optional[str] = None) -> Fingerprint:
        """Build the f'-statistics fingerprint over switch rediscovery counts.

        Parameters
        ----------
        direction:
            Restrict to ``"positive"`` or ``"negative"`` switches; ``None``
            uses every switch.  The observation count is always the full
            ``n_switch`` (the adjusted vote count), matching the paper's
            choice to "simply count all votes as n".
        """
        events = self.events if direction is None else self.events_by_direction(direction)
        counts = [event.rediscoveries for event in events]
        fingerprint = fingerprint_from_counts(counts, num_observations=self.n_switch)
        return fingerprint


def _scan_item_votes(item_id: int, votes: np.ndarray) -> Tuple[List[SwitchEvent], int, int, int]:
    """Scan one item's vote sequence and return its switch bookkeeping.

    Returns
    -------
    (events, n_contribution, votes_on_item, final_state)
        ``events`` are the item's switch events, ``n_contribution`` is the
        number of the item's votes that count toward ``n_switch`` (votes
        from the first switch onward), ``votes_on_item`` is the raw vote
        count, and ``final_state`` the consensus label after the scan.
    """
    seen_votes = votes[votes != UNSEEN]
    positives = 0
    negatives = 0
    state = 0  # default label: clean
    events: List[SwitchEvent] = []
    current: Optional[Dict[str, int]] = None
    n_contribution = 0
    for index, vote in enumerate(seen_votes, start=1):
        if vote == DIRTY:
            positives += 1
        else:
            negatives += 1
        if positives > negatives:
            new_state = 1
        elif negatives > positives:
            new_state = 0
        else:
            # A tie flips the consensus away from its current value.
            new_state = 1 - state
        is_switch = new_state != state
        if is_switch:
            if current is not None:
                events.append(
                    SwitchEvent(
                        item_id=item_id,
                        direction=current["direction_label"],
                        vote_index=current["vote_index"],
                        rediscoveries=current["rediscoveries"],
                    )
                )
            direction = POSITIVE if new_state == 1 else NEGATIVE
            state = new_state
            current = {
                "direction_label": direction,
                "vote_index": index,
                "rediscoveries": 1,
            }
            n_contribution += 1
        else:
            if current is not None:
                current["rediscoveries"] += 1
                n_contribution += 1
            # Votes before the first switch are no-ops and contribute nothing.
    if current is not None:
        events.append(
            SwitchEvent(
                item_id=item_id,
                direction=current["direction_label"],
                vote_index=current["vote_index"],
                rediscoveries=current["rediscoveries"],
            )
        )
    return events, n_contribution, int(seen_votes.size), state


def switch_statistics(matrix: ResponseMatrix, upto: Optional[int] = None) -> SwitchStatistics:
    """Compute all switch statistics of a response-matrix prefix.

    Parameters
    ----------
    matrix:
        The worker-response matrix.
    upto:
        Use only the first ``upto`` columns (``None`` = all).
    """
    values = matrix.values if upto is None else matrix.values[:, :upto]
    stats = SwitchStatistics()
    items_with_switches = 0
    for row, item_id in enumerate(matrix.item_ids):
        events, n_contribution, votes_on_item, final_state = _scan_item_votes(
            item_id, values[row, :]
        )
        stats.events.extend(events)
        stats.n_switch += n_contribution
        stats.total_votes += votes_on_item
        stats.final_consensus[item_id] = final_state
        if events:
            items_with_switches += 1
    stats.num_switches = len(stats.events)
    stats.items_with_switches = items_with_switches
    return stats


def count_switches(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``switch(I)`` — the total number of observed consensus switches (Equation 7)."""
    return switch_statistics(matrix, upto).num_switches


def estimate_total_switches(
    stats: SwitchStatistics,
    *,
    direction: Optional[str] = None,
    use_skew_correction: bool = True,
) -> float:
    """Estimate the total number of switches as ``K -> inf`` (Equation 8).

    Parameters
    ----------
    stats:
        Switch statistics of the observed prefix.
    direction:
        Estimate only ``"positive"`` or only ``"negative"`` switches, or
        every switch when ``None``.
    use_skew_correction:
        Include the coefficient-of-variation correction term.

    Returns
    -------
    float
        The estimated total number of switches of the requested direction.
        Falls back to the observed count when the sample coverage is zero.
    """
    fingerprint = stats.fingerprint(direction)
    if direction is None:
        distinct = stats.items_with_switches
    else:
        distinct = stats.items_with_direction(direction)
    return chao92_estimate(
        fingerprint,
        distinct=distinct,
        use_skew_correction=use_skew_correction,
    )


def estimate_remaining_switches(
    stats: SwitchStatistics,
    *,
    direction: Optional[str] = None,
    use_skew_correction: bool = True,
) -> float:
    """``xi`` — the estimated number of switches still to come.

    ``xi = D_switch - switch(I)`` restricted to the requested direction,
    clipped at zero.
    """
    total = estimate_total_switches(
        stats, direction=direction, use_skew_correction=use_skew_correction
    )
    if direction is None:
        observed = stats.num_switches
    else:
        observed = stats.num_switches_by_direction(direction)
    return max(0.0, float(total) - float(observed))


@dataclass
class SwitchEstimator:
    """Matrix-level remaining-switch estimator (Problem 2 / Equation 8).

    The ``estimate`` field of the result is the estimated **total** number
    of switches; ``observed`` is ``switch(I)``; ``remaining`` is the
    expected number of consensus decisions that will still change.

    Parameters
    ----------
    direction:
        Restrict the estimation to ``"positive"`` or ``"negative"``
        switches (``None`` estimates all switches).
    use_skew_correction:
        Include the coefficient-of-variation correction.
    name:
        Registry / report name.
    """

    direction: Optional[str] = None
    use_skew_correction: bool = True
    name: str = "switch"

    def estimate(self, matrix: ResponseMatrix, upto: Optional[int] = None) -> EstimateResult:
        """Estimate the total number of consensus switches."""
        stats = switch_statistics(matrix, upto)
        total = estimate_total_switches(
            stats, direction=self.direction, use_skew_correction=self.use_skew_correction
        )
        if self.direction is None:
            observed = stats.num_switches
        else:
            observed = stats.num_switches_by_direction(self.direction)
        fingerprint = stats.fingerprint(self.direction)
        return EstimateResult(
            estimate=float(total),
            observed=float(observed),
            details={
                "n_switch": float(stats.n_switch),
                "total_votes": float(stats.total_votes),
                "coverage": good_turing_coverage(fingerprint),
                "singletons": float(fingerprint.singletons),
                "items_with_switches": float(stats.items_with_switches),
                "gamma_squared": skew_coefficient(
                    fingerprint, distinct=stats.items_with_switches
                )
                if self.use_skew_correction
                else 0.0,
            },
        )
