"""Switch counting and the SWITCH remaining-switch estimator (Section 4).

The paper reformulates the quality-estimation problem: instead of asking
"how many errors does the dataset contain?" it asks "how many of the
current majority-consensus decisions will still *switch* before reaching
the ground truth?" (Problem 2).  Switches are far more robust to false
positives than raw positive votes, because a single stray vote rarely flips
a consensus that already has support.

Per item, the vote sequence is scanned with the paper's conventions:

* every item starts with the default label *clean*;
* after each vote the consensus label is recomputed: a strict positive
  majority means *dirty*, a strict negative majority means *clean*, and a
  **tie** flips the label away from its current value (the paper's
  "assume a switch happens every time there is a tie");
* every change of the consensus label is a switch — this covers both the
  first positive vote (Equation 7, part ii) and every tie (Equation 7,
  part i);
* a vote that does not change the consensus *rediscovers* the current
  switch (singleton → doubleton → ...), defining the f'-statistics;
* votes before an item's first switch are no-ops: they contribute neither
  to the f'-statistics nor to the adjusted observation count ``n_switch``.

The only place this deviates from a literal reading of Equation 7 is the
vote immediately after a tie: when that vote restores the pre-tie
majority, the consensus label changes again and we count a switch even
though no new tie occurred.  Tracking the consensus directly keeps the
final per-item labels consistent with the majority vote, which is what
both the rediscovery bookkeeping and the total-error correction of
Section 4.3 rely on.

The total number of remaining switches is then estimated with the same
sample-coverage machinery as Chao92 (Equation 8), and split into positive
(clean→dirty) and negative (dirty→clean) switches for the total-error
correction of Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.exceptions import ValidationError
from repro.common.labels import CLEAN, DIRTY, UNSEEN
from repro.core import _scan_kernels
from repro.core.backend import ArrayBackend, NumpyBackend, resolve_backend
from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.chao92 import (
    _pair_sum,
    _skew_from_stats,
    chao92_components_from_stats,
    chao92_estimate,
)
from repro.core.fstatistics import (
    Fingerprint,
    IncrementalFingerprint,
    fingerprint_from_counts,
)
from repro.crowd.response_matrix import ResponseMatrix

#: Direction labels for switches.
POSITIVE = "positive"  # consensus flips clean -> dirty
NEGATIVE = "negative"  # consensus flips dirty -> clean


def _seen_count_dtype(num_columns: int) -> type:
    """Dtype of the cumulative seen-vote table (bounded by the column count).

    int16 halves the memory traffic of the scan's largest table, but a
    row's cumulative count can reach ``num_columns`` — promote to int32
    once that no longer fits, instead of wrapping silently (pinned at the
    boundary by ``tests/test_backend.py``).
    """
    return np.int16 if num_columns < np.iinfo(np.int16).max else np.int32


def _margin_cumsum_dtype(num_votes: int) -> type:
    """Dtype of the *global* margin accumulator of the vectorised compaction.

    Per-row margins are bounded by the column count, but the vectorised
    formulation subtracts a row base from one global running sum whose
    magnitude is bounded only by the total vote count ``V = R * N * K`` —
    promote to int64 before ``V`` can exceed the int32 range (the fused
    numba kernel has no global accumulator and needs no promotion).
    """
    return np.int64 if num_votes > np.iinfo(np.int32).max else np.int32


@dataclass(frozen=True)
class SwitchEvent:
    """One observed consensus switch on one item.

    Attributes
    ----------
    item_id:
        The item whose consensus switched.
    direction:
        ``"positive"`` (clean→dirty) or ``"negative"`` (dirty→clean).
    vote_index:
        1-based position within the item's own vote sequence at which the
        switch occurred.
    rediscoveries:
        How many times the switch was observed: 1 for the switch-causing
        vote plus one per subsequent non-switching vote (this is the
        occurrence count that feeds the f'-statistics).
    """

    item_id: int
    direction: str
    vote_index: int
    rediscoveries: int


@dataclass
class SwitchStatistics:
    """All switch-derived statistics of a response-matrix prefix.

    Attributes
    ----------
    events:
        Every observed switch event, in scan order.
    num_switches:
        ``switch(I)`` — the total number of observed switches (Equation 7).
    items_with_switches:
        ``c_switch`` — the number of items with at least one switch.
    n_switch:
        The adjusted observation count: all votes minus the per-item no-op
        votes preceding the first switch.
    total_votes:
        The unadjusted total number of votes in the prefix.
    final_consensus:
        Mapping from item id to its consensus label after the scan
        (0 = clean, 1 = dirty), using the paper's default-clean /
        tie-switches convention.
    """

    events: List[SwitchEvent] = field(default_factory=list)
    num_switches: int = 0
    items_with_switches: int = 0
    n_switch: int = 0
    total_votes: int = 0
    final_consensus: Dict[int, int] = field(default_factory=dict)

    # -- convenience filters ------------------------------------------- #
    def events_by_direction(self, direction: str) -> List[SwitchEvent]:
        """Return the switch events of one direction."""
        return [event for event in self.events if event.direction == direction]

    def num_switches_by_direction(self, direction: str) -> int:
        """Observed switch count restricted to one direction."""
        return len(self.events_by_direction(direction))

    def items_with_direction(self, direction: str) -> int:
        """Number of items with at least one switch of the given direction."""
        return len({event.item_id for event in self.events if event.direction == direction})

    def fingerprint(self, direction: Optional[str] = None) -> Fingerprint:
        """Build the f'-statistics fingerprint over switch rediscovery counts.

        Parameters
        ----------
        direction:
            Restrict to ``"positive"`` or ``"negative"`` switches; ``None``
            uses every switch.  The observation count is always the full
            ``n_switch`` (the adjusted vote count), matching the paper's
            choice to "simply count all votes as n".
        """
        events = self.events if direction is None else self.events_by_direction(direction)
        counts = [event.rediscoveries for event in events]
        fingerprint = fingerprint_from_counts(counts, num_observations=self.n_switch)
        return fingerprint


class _SwitchScan:
    """Vectorised switch bookkeeping for every item and every prefix.

    The sequential recurrence of the per-item scan collapses into closed
    form on the cumulative margins ``m_t = n_t^+ - n_t^-``: a strict
    majority fixes the consensus to ``sign(m_t)`` regardless of history,
    and a tie (``m_t = 0``) can only follow a seen vote with ``m = ±1``,
    so the tie-flip target is ``1`` iff the previous column's margin was
    negative.  Events are detected on the compacted stream of *seen* votes
    (row-major order, matching the order the sequential scan emitted
    them), so the per-event work is O(votes); the only full ``N x K``
    products are the two cumulative tables, kept in int32 to halve the
    memory traffic (both are bounded by the column count).

    Rows are independent, which is what lets the cross-permutation batch
    engine scan ``R`` stacked permutations as one ``(R * N) x K`` array.

    All event arrays are aligned and sorted in row-major scan order (item
    row, then column) — the same order the sequential scan emitted events.

    The bulk array work routes through an
    :class:`~repro.core.backend.ArrayBackend` (default: the numpy
    reference, or whatever ``REPRO_BACKEND`` names).  Device backends run
    the O(N x K) and O(votes) passes on their own arrays and materialise
    the results back to host NumPy; the numba backend swaps the
    vectorised compaction for the fused loop of
    :mod:`repro.core._scan_kernels`.  Every backend produces bit-identical
    event arrays (all-integer arithmetic, pinned by the parity suite).
    """

    def __init__(
        self,
        values: np.ndarray,
        backend: Union[ArrayBackend, str, None] = None,
    ):
        backend = resolve_backend(backend)
        self.backend = backend
        num_items, num_columns = values.shape
        self.num_columns = int(num_columns)
        self._values = values
        self._seen = values != UNSEEN
        count_dtype = _seen_count_dtype(num_columns)
        on_device = not isinstance(backend, NumpyBackend)
        device_values = device_seen = None
        if on_device and num_columns:
            device_values = backend.asarray(values)
            device_seen = device_values != UNSEEN
            #: (N, K) cumulative count of seen (non-UNSEEN) votes per item.
            self.seen_cum = backend.asnumpy(
                backend.cumsum(device_seen, axis=1, dtype=count_dtype)
            )
        else:
            self.seen_cum = np.cumsum(self._seen, axis=1, dtype=count_dtype)
        empty = np.zeros(0, dtype=np.int64)
        #: (V,) row / column of every seen vote, in row-major scan order.
        self.vote_rows = empty
        self.vote_cols = empty
        #: (V,) per-vote change of the majority count (-1, 0 or +1); the
        #: batch engine folds these per column into majority histories.
        self.vote_majority_delta = np.zeros(0, dtype=np.int8)
        self.event_rows = empty
        self.event_cols = empty
        self.event_states = empty
        self.event_vote_index = empty
        self.event_next_col = empty
        if num_columns == 0:
            return
        if on_device:
            compacted = self._compact_device(backend, device_values, device_seen)
        else:
            compacted = self._compact_host(backend, values)
        if compacted is None:
            return
        seen_rows, seen_cols, votes_state, is_event, majority_delta = compacted
        self.vote_rows = seen_rows
        self.vote_cols = seen_cols
        self.vote_majority_delta = majority_delta
        self.event_rows = seen_rows[is_event].astype(np.int64)
        self.event_cols = seen_cols[is_event].astype(np.int64)
        self.event_states = votes_state[is_event].astype(np.int64)
        self.event_vote_index = self.seen_cum[
            self.event_rows, self.event_cols
        ].astype(np.int64)
        num_events = self.event_rows.size
        event_next_col = np.full(num_events, num_columns, dtype=np.int64)
        if num_events > 1:
            same_item = self.event_rows[:-1] == self.event_rows[1:]
            event_next_col[:-1][same_item] = self.event_cols[1:][same_item]
        self.event_next_col = event_next_col

    def _compact_host(self, backend: ArrayBackend, values: np.ndarray):
        """Per-vote states/events on the host (vectorised or numba-fused).

        Everything runs on the compacted stream of seen votes (O(votes),
        not O(N x K)).  The vectorised path derives the per-vote margin
        from a segmented cumulative sum: a global cumsum of the ±1 deltas
        minus each row's base offset (the cumulative value just before
        the row's first vote).  The fused kernel keeps one scalar margin
        per row run instead — no global accumulator, no temporaries.
        """
        seen_rows, seen_cols = np.nonzero(self._seen)
        if seen_rows.size == 0:
            return None
        deltas = np.where(values[seen_rows, seen_cols] == DIRTY, np.int32(1), np.int32(-1))
        if backend.compiled_scans:
            votes_state, is_event, majority_delta = _scan_kernels.compact_events(
                seen_rows.astype(np.int64, copy=False), deltas
            )
            return seen_rows, seen_cols, votes_state, is_event, majority_delta
        cumulative = np.cumsum(deltas, dtype=_margin_cumsum_dtype(deltas.size))
        positions = np.arange(deltas.size, dtype=np.int64)
        new_row = np.empty(deltas.shape, dtype=bool)
        new_row[0] = True
        new_row[1:] = seen_rows[1:] != seen_rows[:-1]
        row_base = (cumulative - deltas)[np.maximum.accumulate(np.where(new_row, positions, 0))]
        margin_at_vote = cumulative - row_base
        previous_margin = margin_at_vote - deltas
        # A tie can only follow a margin of ±1, so the flip target is dirty
        # iff the margin before this vote was negative.
        votes_state = (margin_at_vote > 0) | (
            (margin_at_vote == 0) & (previous_margin < 0)
        )
        is_dirty = margin_at_vote > 0
        majority_delta = is_dirty.astype(np.int8) - (previous_margin > 0)
        previous_state = np.zeros_like(votes_state)
        previous_state[1:] = votes_state[:-1]
        # The first seen vote of each row compares against the default
        # clean state, not against the previous row's last vote.
        previous_state[new_row] = False
        is_event = votes_state != previous_state
        return seen_rows, seen_cols, votes_state, is_event, majority_delta

    def _compact_device(self, backend: ArrayBackend, device_values, device_seen):
        """The vectorised compaction, on the backend's own arrays.

        Mirrors the host formulation op for op through the seam (plus the
        libraries' native elementwise operators), then materialises the
        five per-vote outputs back to host NumPy; the downstream event
        slicing and all scalar estimator arithmetic stay host-side and
        backend-agnostic.
        """
        device_rows, device_cols = backend.nonzero(device_seen)
        seen_rows = backend.asnumpy(device_rows).astype(np.int64, copy=False)
        if seen_rows.size == 0:
            return None
        num_votes = seen_rows.shape[0]
        cum_dtype = _margin_cumsum_dtype(num_votes)
        deltas = backend.astype(
            backend.where(device_values[device_rows, device_cols] == DIRTY, 1, -1),
            cum_dtype,
        )
        cumulative = backend.cumsum(deltas, axis=0, dtype=cum_dtype)
        positions = backend.arange(num_votes, dtype=np.int64)
        new_row = backend.zeros((num_votes,), np.bool_)
        new_row[0] = True
        new_row[1:] = device_rows[1:] != device_rows[:-1]
        row_base = (cumulative - deltas)[
            backend.maximum_accumulate(backend.where(new_row, positions, 0))
        ]
        margin_at_vote = cumulative - row_base
        previous_margin = margin_at_vote - deltas
        votes_state = (margin_at_vote > 0) | (
            (margin_at_vote == 0) & (previous_margin < 0)
        )
        majority_delta = backend.astype(margin_at_vote > 0, np.int8) - backend.astype(
            previous_margin > 0, np.int8
        )
        previous_state = backend.zeros((num_votes,), np.bool_)
        previous_state[1:] = votes_state[:-1]
        previous_state[new_row] = False
        is_event = votes_state != previous_state
        return (
            seen_rows,
            backend.asnumpy(device_cols).astype(np.int64, copy=False),
            backend.asnumpy(votes_state),
            backend.asnumpy(is_event),
            backend.asnumpy(majority_delta).astype(np.int8, copy=False),
        )

    @cached_property
    def state(self) -> np.ndarray:
        """(N, K) consensus label after each column (tie-flip convention).

        Unseen columns carry the last seen state forward (items start
        clean).  Only the materialised-statistics path reads this (for the
        per-prefix ``final_consensus``); the estimator hot paths never
        trigger the full-matrix reconstruction.
        """
        num_items = self._seen.shape[0]
        if self.num_columns == 0:
            return np.zeros((num_items, 0), dtype=np.int8)
        values = self._values
        margin = np.cumsum(
            (values == DIRTY).astype(np.int8) - (values == CLEAN),
            axis=1,
            dtype=np.int32,
        )
        tie_to_dirty = np.zeros(margin.shape, dtype=bool)
        tie_to_dirty[:, 1:] = margin[:, :-1] < 0
        state_at_vote = np.where(margin > 0, True, np.where(margin < 0, False, tie_to_dirty))
        columns = np.arange(self.num_columns, dtype=np.int32)
        last_seen = np.maximum.accumulate(
            np.where(self._seen, columns, np.int32(-1)), axis=1
        )
        return np.where(
            last_seen >= 0,
            np.take_along_axis(state_at_vote, np.maximum(last_seen, 0), axis=1),
            False,
        ).astype(np.int8)

    def rediscoveries(self, upto: int, active: np.ndarray) -> np.ndarray:
        """Occurrence counts of the ``active`` events within the first ``upto`` columns.

        An event is rediscovered by every seen vote from its switch vote up
        to (excluding) the item's next switch, truncated at the prefix end.
        ``active`` may be a boolean mask or an integer index array over the
        event arrays.
        """
        rows = self.event_rows[active]
        last_col = np.minimum(self.event_next_col[active], upto) - 1
        return (
            self.seen_cum[rows, last_col] - self.event_vote_index[active] + 1
        )


def _distinct_sorted(values: np.ndarray) -> int:
    """Distinct-value count of an ascending-sorted array (O(E), no hashing).

    The event-row arrays of a scan are emitted in row-major order, so the
    runs of equal values are contiguous — counting run boundaries replaces
    the hash-based ``np.unique`` the sweep hot path used to pay for.
    """
    if values.size == 0:
        return 0
    return int(np.count_nonzero(values[1:] != values[:-1])) + 1


def _statistics_at(
    matrix: ResponseMatrix, scan: _SwitchScan, upto: int
) -> SwitchStatistics:
    """Materialise the :class:`SwitchStatistics` of one prefix from a scan."""
    stats = SwitchStatistics()
    item_ids = matrix.item_ids
    if upto == 0:
        stats.final_consensus = {item: 0 for item in item_ids}
        return stats
    active = scan.event_cols < upto
    rediscoveries = scan.rediscoveries(upto, active)
    directions = np.where(scan.event_states[active] == 1, POSITIVE, NEGATIVE)
    stats.events = [
        SwitchEvent(
            item_id=item_ids[row],
            direction=direction,
            vote_index=int(vote_index),
            rediscoveries=int(count),
        )
        for row, direction, vote_index, count in zip(
            scan.event_rows[active],
            (str(d) for d in directions),
            scan.event_vote_index[active],
            rediscoveries,
        )
    ]
    stats.num_switches = len(stats.events)
    stats.items_with_switches = _distinct_sorted(scan.event_rows[active])
    stats.n_switch = int(rediscoveries.sum())
    stats.total_votes = int(scan.seen_cum[:, upto - 1].sum(dtype=np.int64))
    final_states = scan.state[:, upto - 1]
    stats.final_consensus = {
        item: int(label) for item, label in zip(item_ids, final_states)
    }
    return stats


def switch_statistics(matrix: ResponseMatrix, upto: Optional[int] = None) -> SwitchStatistics:
    """Compute all switch statistics of a response-matrix prefix.

    Parameters
    ----------
    matrix:
        The worker-response matrix.
    upto:
        Use only the first ``upto`` columns (``None`` = all).
    """
    upto = matrix.resolve_upto(upto)
    scan = _SwitchScan(matrix.values[:, :upto])
    return _statistics_at(matrix, scan, upto)


def switch_statistics_sweep(
    matrix: ResponseMatrix, checkpoints: Sequence[int]
) -> List[SwitchStatistics]:
    """Switch statistics at every checkpoint prefix from one matrix scan.

    Equivalent to ``[switch_statistics(matrix, cp) for cp in checkpoints]``
    but the matrix is scanned once; each checkpoint then only re-slices the
    precomputed event arrays (cost proportional to the number of switch
    events, not to ``N x K``).
    """
    resolved = [matrix.resolve_upto(checkpoint) for checkpoint in checkpoints]
    scan = _SwitchScan(matrix.values)
    return [_statistics_at(matrix, scan, upto) for upto in resolved]


def _fingerprint_from_rediscoveries(
    rediscoveries: np.ndarray, n_switch: int
) -> Fingerprint:
    """Fingerprint over event occurrence counts, straight from the array.

    Produces the same :class:`Fingerprint` as
    ``fingerprint_from_counts(rediscoveries.tolist(), num_observations=n_switch)``
    without materialising a Python list (rediscovery counts are >= 1 by
    construction, so no zero-filtering is needed).
    """
    if rediscoveries.size == 0:
        return Fingerprint(frequencies={}, num_observations=n_switch)
    bins = np.bincount(rediscoveries)
    frequencies = {
        int(j): int(count) for j, count in enumerate(bins) if j >= 1 and count
    }
    return Fingerprint(frequencies=frequencies, num_observations=n_switch)


class _EstimationSwitchStats:
    """Array-backed stand-in for :class:`SwitchStatistics` in the sweep hot path.

    Exposes exactly the interface the switch estimators consume
    (``fingerprint``, the direction filters and the scalar counts) while
    keeping events as NumPy arrays — no per-event objects, so a sweep over
    many checkpoints stays proportional to the event count in C, not in
    Python.  All quantities are integers identical to the materialised
    statistics, so every downstream estimate is bit-identical.
    """

    __slots__ = (
        "num_switches",
        "items_with_switches",
        "n_switch",
        "total_votes",
        "_rediscoveries",
        "_states",
        "_rows",
        "_positive_mask",
        "_negative_mask",
    )

    def __init__(
        self,
        rediscoveries: np.ndarray,
        states: np.ndarray,
        rows: np.ndarray,
        total_votes: int,
    ):
        self._rediscoveries = rediscoveries
        self._states = states
        self._rows = rows
        self._positive_mask: Optional[np.ndarray] = None
        self._negative_mask: Optional[np.ndarray] = None
        self.num_switches = int(rediscoveries.size)
        self.items_with_switches = _distinct_sorted(rows)
        self.n_switch = int(rediscoveries.sum())
        self.total_votes = total_votes

    def _direction_mask(self, direction: str) -> np.ndarray:
        # The SWITCH total-error estimator reads both directions several
        # times per evaluation; one cached comparison serves them all.
        if direction == POSITIVE:
            if self._positive_mask is None:
                self._positive_mask = self._states == 1
            return self._positive_mask
        if self._negative_mask is None:
            self._negative_mask = self._states == 0
        return self._negative_mask

    def num_switches_by_direction(self, direction: str) -> int:
        """Observed switch count restricted to one direction."""
        return int(self._direction_mask(direction).sum())

    def items_with_direction(self, direction: str) -> int:
        """Number of items with at least one switch of the given direction."""
        return _distinct_sorted(self._rows[self._direction_mask(direction)])

    def fingerprint(self, direction: Optional[str] = None) -> Fingerprint:
        """f'-statistics over rediscovery counts (see :class:`SwitchStatistics`)."""
        counts = (
            self._rediscoveries
            if direction is None
            else self._rediscoveries[self._direction_mask(direction)]
        )
        return _fingerprint_from_rediscoveries(counts, self.n_switch)


class _SwitchSweepCells:
    """Switch sufficient statistics for every checkpoint of one permutation.

    One vectorised ``(events x checkpoints)`` pass replaces the per-cell
    event slicing the batched switch estimators would otherwise pay
    ``m`` times: rediscovery counts are truncated against every checkpoint
    at once, and the distinct-item counts become ``searchsorted`` lookups
    over the per-item first-switch columns (an item has an active switch at
    checkpoint ``upto`` iff its first switch of that direction happened
    before column ``upto``).

    Every exposed array is indexed by checkpoint and holds exact integers
    identical to the per-cell :class:`_EstimationSwitchStats`; the direction
    keys are ``None`` (all switches), :data:`POSITIVE` and :data:`NEGATIVE`.
    """

    __slots__ = ("n_switch", "total_votes", "counts", "singletons", "pair_sums", "items")

    def __init__(
        self,
        scan: _SwitchScan,
        low: int,
        high: int,
        resolved: Sequence[int],
        total_votes: np.ndarray,
    ):
        if scan.backend.compiled_scans:
            self.total_votes = total_votes
            self._from_kernel(scan, low, high, resolved)
            return
        checkpoints = np.asarray(resolved, dtype=np.int64)[None, :]
        rows = scan.event_rows[low:high]
        cols = scan.event_cols[low:high]
        vote_index = scan.event_vote_index[low:high]
        next_col = scan.event_next_col[low:high]
        positive = scan.event_states[low:high] == 1
        #: (m,) unadjusted vote totals per checkpoint.
        self.total_votes = total_votes
        active = cols[:, None] < checkpoints  # (E, m)
        last_col = np.minimum(next_col[:, None], checkpoints) - 1
        # Rediscovery counts truncated at each checkpoint; the ``upto = 0``
        # column gathers wrap to the last column but are masked out by
        # ``active`` (no event can precede column 0).
        rediscoveries = np.where(
            active,
            scan.seen_cum[rows[:, None], last_col] - vote_index[:, None] + 1,
            0,
        )
        #: (m,) adjusted observation count ``n_switch`` per checkpoint.
        self.n_switch = rediscoveries.sum(axis=0, dtype=np.int64)
        masks = {
            None: active,
            POSITIVE: active & positive[:, None],
            NEGATIVE: active & ~positive[:, None],
        }
        #: direction -> (m,) observed switch counts.
        self.counts = {}
        #: direction -> (m,) singleton (f'_1) counts.
        self.singletons = {}
        #: direction -> (m,) skew pair sums ``sum_e r_e (r_e - 1)``.
        self.pair_sums = {}
        #: direction -> (m,) distinct items with at least one switch.
        self.items = {}
        for direction, mask in masks.items():
            masked = np.where(mask, rediscoveries, 0)
            self.counts[direction] = mask.sum(axis=0, dtype=np.int64)
            self.singletons[direction] = (masked == 1).sum(axis=0, dtype=np.int64)
            self.pair_sums[direction] = (masked * (masked - 1)).sum(axis=0, dtype=np.int64)
        for direction, event_filter in (
            (None, slice(None)),
            (POSITIVE, positive),
            (NEGATIVE, ~positive),
        ):
            first = _first_columns_per_row(rows[event_filter], cols[event_filter])
            self.items[direction] = np.searchsorted(first, checkpoints[0], side="left")

    def _from_kernel(
        self, scan: _SwitchScan, low: int, high: int, resolved: Sequence[int]
    ) -> None:
        """Fill the per-checkpoint tables from the fused scan kernel.

        One compiled loop over the active (event, checkpoint) pairs
        replaces the ~10 dense ``(events x checkpoints)`` temporaries of
        the vectorised formulation; the kernel's integers are identical
        by construction (see :mod:`repro.core._scan_kernels`).
        """
        n_switch, counts, singletons, pair_sums, items = _scan_kernels.sweep_cells(
            scan.event_rows[low:high],
            scan.event_cols[low:high],
            scan.event_vote_index[low:high],
            scan.event_next_col[low:high],
            scan.event_states[low:high] == 1,
            scan.seen_cum,
            np.asarray(resolved, dtype=np.int64),
        )
        self.n_switch = n_switch
        directions = (None, POSITIVE, NEGATIVE)
        self.counts = {d: counts[i] for i, d in enumerate(directions)}
        self.singletons = {d: singletons[i] for i, d in enumerate(directions)}
        self.pair_sums = {d: pair_sums[i] for i, d in enumerate(directions)}
        self.items = {d: items[i] for i, d in enumerate(directions)}


def _first_columns_per_row(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Sorted first-event columns per distinct row of a row-major event list.

    ``rows`` is ascending and each row's events are in column order, so the
    first event of each run is that row's earliest switch.
    """
    if rows.size == 0:
        return np.zeros(0, dtype=np.int64)
    first = np.empty(rows.shape, dtype=bool)
    first[0] = True
    first[1:] = rows[1:] != rows[:-1]
    return np.sort(cols[first])


class IncrementalSwitchState:
    """Streaming counterpart of the vectorised switch scan.

    Consumes one vote at a time (:meth:`observe`) and maintains every
    switch-derived quantity the estimators read — event counts, the
    adjusted observation count ``n_switch`` and the f'-statistics over
    rediscovery counts — under exactly the scan conventions documented at
    the top of this module.  Each vote costs O(1): the open event of the
    voted item either gains a rediscovery (one fingerprint reclassify) or
    is frozen in place while a new class-1 event opens.

    The object satisfies the same statistics interface as
    :class:`SwitchStatistics` / :class:`_EstimationSwitchStats`, so the
    switch estimators consume it directly; after ``j`` ingested columns
    every exposed quantity is bit-identical to
    ``switch_statistics(matrix, j)``.
    """

    def __init__(self, num_items: int):
        self._margin = np.zeros(num_items, dtype=np.int64)
        self._consensus = np.zeros(num_items, dtype=np.int8)
        #: rediscovery count of each item's open (most recent) event; 0 = no
        #: event yet, in which case further votes are pre-first-switch no-ops.
        self._open_rediscoveries = np.zeros(num_items, dtype=np.int64)
        self._open_positive = np.zeros(num_items, dtype=bool)
        self._has_direction = {
            POSITIVE: np.zeros(num_items, dtype=bool),
            NEGATIVE: np.zeros(num_items, dtype=bool),
        }
        self.num_switches = 0
        self.items_with_switches = 0
        self.n_switch = 0
        self.total_votes = 0
        self._switches_by_direction = {POSITIVE: 0, NEGATIVE: 0}
        self._items_by_direction = {POSITIVE: 0, NEGATIVE: 0}
        self._fingerprints = {
            None: IncrementalFingerprint(),
            POSITIVE: IncrementalFingerprint(),
            NEGATIVE: IncrementalFingerprint(),
        }

    def observe(self, row: int, vote: int) -> None:
        """Ingest one vote (``DIRTY`` or ``CLEAN``) on item row ``row``."""
        if vote == DIRTY:
            delta = 1
        elif vote == CLEAN:
            delta = -1
        else:
            raise ValidationError(f"votes must be DIRTY or CLEAN, got {vote!r}")
        self.total_votes += 1
        previous_margin = int(self._margin[row])
        margin = previous_margin + delta
        self._margin[row] = margin
        if margin > 0:
            new_state = 1
        elif margin < 0:
            new_state = 0
        else:
            # Tie: flip away from the current label.  A tie can only follow
            # a margin of +/-1, so the flip target is the sign opposite of
            # the previous margin (the closed form of the vectorised scan).
            new_state = 1 if previous_margin < 0 else 0
        if new_state != int(self._consensus[row]):
            self._consensus[row] = new_state
            direction = POSITIVE if new_state == 1 else NEGATIVE
            self.num_switches += 1
            self._switches_by_direction[direction] += 1
            if self._open_rediscoveries[row] == 0:
                self.items_with_switches += 1
            if not self._has_direction[direction][row]:
                self._has_direction[direction][row] = True
                self._items_by_direction[direction] += 1
            # The previous open event (if any) freezes at its current
            # rediscovery count; a fresh singleton event opens.
            self._open_rediscoveries[row] = 1
            self._open_positive[row] = new_state == 1
            self._fingerprints[None].reclassify(0, 1)
            self._fingerprints[direction].reclassify(0, 1)
            self.n_switch += 1
        elif self._open_rediscoveries[row] > 0:
            count = int(self._open_rediscoveries[row])
            self._open_rediscoveries[row] = count + 1
            direction = POSITIVE if self._open_positive[row] else NEGATIVE
            self._fingerprints[None].reclassify(count, count + 1)
            self._fingerprints[direction].reclassify(count, count + 1)
            self.n_switch += 1
        # else: vote before the item's first switch — a no-op by Equation 7.

    # -- the statistics interface the estimators consume ----------------- #
    def num_switches_by_direction(self, direction: str) -> int:
        """Observed switch count restricted to one direction."""
        return self._switches_by_direction[direction]

    def items_with_direction(self, direction: str) -> int:
        """Number of items with at least one switch of the given direction."""
        return self._items_by_direction[direction]

    def fingerprint(self, direction: Optional[str] = None) -> Fingerprint:
        """f'-statistics over rediscovery counts (see :class:`SwitchStatistics`)."""
        return self._fingerprints[direction].snapshot(num_observations=self.n_switch)

    def final_consensus(self, item_ids: Sequence[int]) -> Dict[int, int]:
        """Consensus label per item id, under the scan's tie-flip convention."""
        return {item: int(label) for item, label in zip(item_ids, self._consensus)}

    # -- snapshot codec --------------------------------------------------- #
    def to_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Serialise the tracker into npz-able arrays plus JSON-safe metadata.

        The frozen events behind the f'-statistics are not reconstructible
        from the per-item arrays alone, so the three fingerprint tables are
        carried explicitly.  :meth:`from_arrays` restores a tracker whose
        every exposed statistic — and every *future* statistic after more
        votes — is bit-identical to one that never stopped.
        """
        arrays = {
            "margin": self._margin.copy(),
            "consensus": self._consensus.copy(),
            "open_rediscoveries": self._open_rediscoveries.copy(),
            "open_positive": self._open_positive.copy(),
            "has_positive": self._has_direction[POSITIVE].copy(),
            "has_negative": self._has_direction[NEGATIVE].copy(),
        }
        meta: Dict[str, object] = {
            "num_switches": int(self.num_switches),
            "items_with_switches": int(self.items_with_switches),
            "n_switch": int(self.n_switch),
            "total_votes": int(self.total_votes),
            "switches_by_direction": {
                POSITIVE: int(self._switches_by_direction[POSITIVE]),
                NEGATIVE: int(self._switches_by_direction[NEGATIVE]),
            },
            "items_by_direction": {
                POSITIVE: int(self._items_by_direction[POSITIVE]),
                NEGATIVE: int(self._items_by_direction[NEGATIVE]),
            },
            "fingerprints": {
                "all": self._fingerprints[None].state_dict(),
                POSITIVE: self._fingerprints[POSITIVE].state_dict(),
                NEGATIVE: self._fingerprints[NEGATIVE].state_dict(),
            },
        }
        return arrays, meta

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "IncrementalSwitchState":
        """Rebuild a tracker from :meth:`to_arrays` output."""
        margin = np.asarray(arrays["margin"], dtype=np.int64)
        state = cls(int(margin.shape[0]))
        state._margin = margin.copy()
        state._consensus = np.asarray(arrays["consensus"], dtype=np.int8).copy()
        state._open_rediscoveries = np.asarray(
            arrays["open_rediscoveries"], dtype=np.int64
        ).copy()
        state._open_positive = np.asarray(arrays["open_positive"], dtype=bool).copy()
        state._has_direction = {
            POSITIVE: np.asarray(arrays["has_positive"], dtype=bool).copy(),
            NEGATIVE: np.asarray(arrays["has_negative"], dtype=bool).copy(),
        }
        shapes = {value.shape for value in state._has_direction.values()}
        shapes.update(
            (state._consensus.shape, state._open_rediscoveries.shape, state._open_positive.shape)
        )
        if shapes != {margin.shape}:
            raise ValidationError("switch-state arrays must share one item dimension")
        state.num_switches = int(meta["num_switches"])
        state.items_with_switches = int(meta["items_with_switches"])
        state.n_switch = int(meta["n_switch"])
        state.total_votes = int(meta["total_votes"])
        state._switches_by_direction = {
            POSITIVE: int(meta["switches_by_direction"][POSITIVE]),
            NEGATIVE: int(meta["switches_by_direction"][NEGATIVE]),
        }
        state._items_by_direction = {
            POSITIVE: int(meta["items_by_direction"][POSITIVE]),
            NEGATIVE: int(meta["items_by_direction"][NEGATIVE]),
        }
        fingerprints = meta["fingerprints"]
        state._fingerprints = {
            None: IncrementalFingerprint.from_state_dict(fingerprints["all"]),
            POSITIVE: IncrementalFingerprint.from_state_dict(fingerprints[POSITIVE]),
            NEGATIVE: IncrementalFingerprint.from_state_dict(fingerprints[NEGATIVE]),
        }
        return state


def _estimation_sweep(
    matrix: ResponseMatrix, checkpoints: Sequence[int]
) -> List[_EstimationSwitchStats]:
    """Array-backed switch statistics per checkpoint, for the estimators."""
    resolved = [matrix.resolve_upto(checkpoint) for checkpoint in checkpoints]
    scan = _SwitchScan(matrix.values)
    stats = []
    for upto in resolved:
        active = scan.event_cols < upto
        stats.append(
            _EstimationSwitchStats(
                rediscoveries=scan.rediscoveries(upto, active),
                states=scan.event_states[active],
                rows=scan.event_rows[active],
                total_votes=int(scan.seen_cum[:, upto - 1].sum(dtype=np.int64)) if upto else 0,
            )
        )
    return stats


def count_switches(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``switch(I)`` — the total number of observed consensus switches (Equation 7)."""
    return switch_statistics(matrix, upto).num_switches


def estimate_total_switches(
    stats: SwitchStatistics,
    *,
    direction: Optional[str] = None,
    use_skew_correction: bool = True,
) -> float:
    """Estimate the total number of switches as ``K -> inf`` (Equation 8).

    Parameters
    ----------
    stats:
        Switch statistics of the observed prefix.
    direction:
        Estimate only ``"positive"`` or only ``"negative"`` switches, or
        every switch when ``None``.
    use_skew_correction:
        Include the coefficient-of-variation correction term.

    Returns
    -------
    float
        The estimated total number of switches of the requested direction.
        Falls back to the observed count when the sample coverage is zero.
    """
    fingerprint = stats.fingerprint(direction)
    if direction is None:
        distinct = stats.items_with_switches
    else:
        distinct = stats.items_with_direction(direction)
    return chao92_estimate(
        fingerprint,
        distinct=distinct,
        use_skew_correction=use_skew_correction,
    )


def estimate_remaining_switches(
    stats: SwitchStatistics,
    *,
    direction: Optional[str] = None,
    use_skew_correction: bool = True,
) -> float:
    """``xi`` — the estimated number of switches still to come.

    ``xi = D_switch - switch(I)`` restricted to the requested direction,
    clipped at zero.
    """
    total = estimate_total_switches(
        stats, direction=direction, use_skew_correction=use_skew_correction
    )
    if direction is None:
        observed = stats.num_switches
    else:
        observed = stats.num_switches_by_direction(direction)
    return max(0.0, float(total) - float(observed))


@dataclass
class SwitchEstimator(StateEstimatorMixin):
    """Matrix-level remaining-switch estimator (Problem 2 / Equation 8).

    The ``estimate`` field of the result is the estimated **total** number
    of switches; ``observed`` is ``switch(I)``; ``remaining`` is the
    expected number of consensus decisions that will still change.

    Parameters
    ----------
    direction:
        Restrict the estimation to ``"positive"`` or ``"negative"``
        switches (``None`` estimates all switches).
    use_skew_correction:
        Include the coefficient-of-variation correction.
    name:
        Registry / report name.
    """

    direction: Optional[str] = None
    use_skew_correction: bool = True
    name: str = "switch"

    def _result_from_stats(
        self,
        *,
        n_switch: int,
        total_votes: int,
        observed: int,
        distinct: int,
        singletons: int,
        pair_sum: int,
        items_with_switches: int,
    ) -> EstimateResult:
        total, coverage, gamma_squared = chao92_components_from_stats(
            distinct=distinct,
            num_observations=n_switch,
            singletons=singletons,
            pair_sum=pair_sum,
            use_skew_correction=self.use_skew_correction,
        )
        if self.direction is not None and self.use_skew_correction:
            # The diagnostic gamma is always reported against the full
            # items-with-switches count, even for directional estimators.
            gamma_squared = _skew_from_stats(
                items_with_switches, n_switch, coverage, pair_sum
            )
        return EstimateResult(
            estimate=float(total),
            observed=float(observed),
            details={
                "n_switch": float(n_switch),
                "total_votes": float(total_votes),
                "coverage": coverage,
                "singletons": float(singletons),
                "items_with_switches": float(items_with_switches),
                "gamma_squared": gamma_squared,
            },
        )

    def _result(self, stats) -> EstimateResult:
        # ``stats`` is a SwitchStatistics, its array-backed sweep stand-in,
        # or the live IncrementalSwitchState of a streaming session.
        fingerprint = stats.fingerprint(self.direction)
        if self.direction is None:
            observed = stats.num_switches
            distinct = stats.items_with_switches
        else:
            observed = stats.num_switches_by_direction(self.direction)
            distinct = stats.items_with_direction(self.direction)
        return self._result_from_stats(
            n_switch=stats.n_switch,
            total_votes=stats.total_votes,
            observed=observed,
            distinct=distinct,
            singletons=fingerprint.singletons,
            pair_sum=_pair_sum(fingerprint) if self.use_skew_correction else 0,
            items_with_switches=stats.items_with_switches,
        )

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total number of consensus switches."""
        return self._result(state.switch_stats())

    def estimate_sweep_batch(self, batch) -> List[List[EstimateResult]]:
        """Cross-permutation sweep over the batch's single switch scan.

        All ``R`` permutations share one :class:`_SwitchScan` (rows are
        independent, so the stacked ``(R * N, K)`` array is scanned once);
        the per-checkpoint sufficient statistics then come from each
        permutation's vectorised :class:`_SwitchSweepCells`, and the final
        arithmetic reuses the exact scalar code path — every estimate is
        bit-identical to the serial sweep.
        """
        direction = self.direction
        results = []
        for p in range(batch.num_permutations):
            cells = batch.switch_sweep_cells(p)
            results.append(
                [
                    self._result_from_stats(
                        n_switch=int(cells.n_switch[j]),
                        total_votes=int(cells.total_votes[j]),
                        observed=int(cells.counts[direction][j]),
                        distinct=int(cells.items[direction][j]),
                        singletons=int(cells.singletons[direction][j]),
                        pair_sum=int(cells.pair_sums[direction][j]),
                        items_with_switches=int(cells.items[None][j]),
                    )
                    for j in range(batch.num_checkpoints)
                ]
            )
        return results
