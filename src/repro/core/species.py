"""Additional classical species estimators used for ablations.

The paper uses Chao92; the species-estimation literature it cites offers
several other estimators with different bias/variance trade-offs.  These
are not required for any headline experiment, but the ablation benchmark
(``benchmarks/test_bench_ablation_estimators.py``) compares them against
Chao92 and SWITCH on the same vote matrices to show that the false-positive
sensitivity is a property of the whole family, not of Chao92 specifically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.chao92 import good_turing_coverage
from repro.core.fstatistics import Fingerprint


class _FingerprintEstimatorMixin(StateEstimatorMixin):
    """Shared evaluation for estimators driven by ``(fingerprint, nominal count)``.

    Subclasses provide ``_result(fingerprint, observed)``; ``estimate``,
    ``estimate_sweep`` and the streaming path are all derived from it via
    the shared estimation-state layer.
    """

    def _result(self, fingerprint: Fingerprint, observed: int) -> EstimateResult:
        raise NotImplementedError

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total error count from the state's vote fingerprint."""
        return self._result(state.positive_fingerprint(), state.nominal_count())


def good_turing_estimate(fingerprint: Fingerprint, *, distinct: Optional[int] = None) -> float:
    """Plain Good–Turing (sample-coverage) estimate ``c / C`` without skew correction.

    Equivalent to Chao92 with ``use_skew_correction=False``; exposed under
    its own name because the paper's Example 1 refers to it as the
    Good–Turing estimate.
    """
    c = fingerprint.distinct if distinct is None else int(distinct)
    coverage = good_turing_coverage(fingerprint)
    if coverage <= 0.0:
        return float(c)
    return float(c / coverage)


def chao84_estimate(fingerprint: Fingerprint, *, distinct: Optional[int] = None) -> float:
    """Chao84 lower-bound estimator ``c + f_1^2 / (2 f_2)``.

    When there are no doubletons the bias-corrected form
    ``c + f_1 (f_1 - 1) / 2`` is used.
    """
    c = fingerprint.distinct if distinct is None else int(distinct)
    f1 = fingerprint.singletons
    f2 = fingerprint.doubletons
    if f2 > 0:
        return float(c + (f1 * f1) / (2.0 * f2))
    return float(c + f1 * (f1 - 1) / 2.0)


def jackknife_estimate(
    fingerprint: Fingerprint,
    *,
    distinct: Optional[int] = None,
    order: int = 1,
) -> float:
    """First- or second-order jackknife species estimate.

    ``order=1``: ``c + f_1 * (n - 1) / n``;
    ``order=2``: ``c + 2 f_1 - f_2`` (the common large-``n`` approximation).
    """
    c = fingerprint.distinct if distinct is None else int(distinct)
    n = fingerprint.num_observations
    f1 = fingerprint.singletons
    f2 = fingerprint.doubletons
    if order == 1:
        if n <= 0:
            return float(c)
        return float(c + f1 * (n - 1) / n)
    if order == 2:
        return float(max(c, c + 2 * f1 - f2))
    raise ValueError(f"jackknife order must be 1 or 2, got {order}")


@dataclass
class GoodTuringEstimator(_FingerprintEstimatorMixin):
    """Matrix-level Good–Turing estimator (Chao92 without the skew term)."""

    name: str = "good_turing"

    def _result(self, fingerprint: Fingerprint, observed: int) -> EstimateResult:
        estimate = good_turing_estimate(fingerprint, distinct=observed)
        return EstimateResult(
            estimate=estimate,
            observed=float(observed),
            details={"coverage": good_turing_coverage(fingerprint)},
        )


@dataclass
class Chao84Estimator(_FingerprintEstimatorMixin):
    """Matrix-level Chao84 lower-bound estimator."""

    name: str = "chao84"

    def _result(self, fingerprint: Fingerprint, observed: int) -> EstimateResult:
        estimate = chao84_estimate(fingerprint, distinct=observed)
        return EstimateResult(
            estimate=estimate,
            observed=float(observed),
            details={
                "singletons": float(fingerprint.singletons),
                "doubletons": float(fingerprint.doubletons),
            },
        )


@dataclass
class JackknifeEstimator(_FingerprintEstimatorMixin):
    """Matrix-level jackknife estimator of configurable order."""

    order: int = 1
    name: str = "jackknife"

    def _result(self, fingerprint: Fingerprint, observed: int) -> EstimateResult:
        estimate = jackknife_estimate(fingerprint, distinct=observed, order=self.order)
        return EstimateResult(
            estimate=estimate,
            observed=float(observed),
            details={"order": float(self.order)},
        )
