"""Descriptive baselines: nominal count and majority voting (Section 2.2).

These are not predictive — they summarise what the first ``K`` workers have
already said — but they are both the baselines the paper plots (VOTING) and
building blocks of the predictive estimators (Chao92 starts from the
nominal count, vChao92 and SWITCH start from the majority count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.validation import check_int, check_probability
from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.crowd.consensus import majority_count, nominal_count
from repro.crowd.response_matrix import ResponseMatrix


def nominal_estimate(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_nominal`` — items marked dirty by at least one worker (Section 2.2.1)."""
    return nominal_count(matrix, upto)


def majority_estimate(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_majority`` — items whose majority consensus is dirty (Section 2.2.2)."""
    return majority_count(matrix, upto)


def _descriptive_batch_results(count_table) -> list:
    """``[permutation][checkpoint]`` results from an ``(R, m)`` count table."""
    return [
        [
            EstimateResult(estimate=float(count), observed=float(count), details={})
            for count in row
        ]
        for row in count_table.tolist()
    ]


@dataclass
class NominalEstimator(StateEstimatorMixin):
    """Descriptive estimator returning the nominal error count."""

    name: str = "nominal"

    def estimate_state(self, state) -> EstimateResult:
        """Return the nominal count; ``estimate == observed`` by construction."""
        count = float(state.nominal_count())
        return EstimateResult(estimate=count, observed=count, details={})

    def estimate_sweep_batch(self, batch) -> list:
        """All (permutation, checkpoint) cells straight from the batch table."""
        return _descriptive_batch_results(batch.nominal_counts)


@dataclass
class VotingEstimator(StateEstimatorMixin):
    """Descriptive estimator returning the majority-consensus error count.

    This is the paper's VOTING baseline: the best purely descriptive answer
    available with the current workers, but with no predictive power about
    how many errors additional workers would still uncover.
    """

    name: str = "voting"

    def estimate_state(self, state) -> EstimateResult:
        """Return the majority count; ``estimate == observed`` by construction."""
        count = float(state.majority_count())
        return EstimateResult(estimate=count, observed=count, details={})

    def estimate_sweep_batch(self, batch) -> list:
        """All (permutation, checkpoint) cells straight from the batch table."""
        return _descriptive_batch_results(batch.majority_counts)


@dataclass(frozen=True)
class CollusionReport:
    """Pairwise-agreement collusion diagnostics for one response matrix.

    Collusion detection here is descriptive, like the Section 2.2
    baselines: it summarises the votes already received rather than
    predicting anything.  Two task columns are *flagged* when they voted
    on at least ``min_overlap`` common items and agreed on at least
    ``threshold`` of them; flagged pairs are chained into cliques
    (connected components), which is what a coordinated answer sheet
    produces and what independent honest errors almost never do.
    """

    num_columns: int
    num_pairs: int
    mean_agreement: float
    max_agreement: float
    flagged_pairs: Tuple[Tuple[int, int, float], ...] = ()
    cliques: Tuple[Tuple[int, ...], ...] = ()
    flagged_workers: Tuple[int, ...] = ()
    threshold: float = 0.9
    min_overlap: int = 5

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly payload (served by the HTTP estimates route)."""
        return {
            "num_columns": self.num_columns,
            "num_pairs": self.num_pairs,
            "mean_agreement": self.mean_agreement,
            "max_agreement": self.max_agreement,
            "flagged_pairs": [
                [a, b, agreement] for a, b, agreement in self.flagged_pairs
            ],
            "cliques": [list(clique) for clique in self.cliques],
            "flagged_workers": list(self.flagged_workers),
            "threshold": self.threshold,
            "min_overlap": self.min_overlap,
        }


def collusion_report(
    matrix: ResponseMatrix,
    *,
    threshold: float = 0.9,
    min_overlap: int = 5,
) -> CollusionReport:
    """Scan ``matrix`` for suspiciously agreeing column pairs.

    Every pair of task columns with ``min_overlap`` or more co-voted
    items contributes its agreement fraction; pairs at or above
    ``threshold`` are flagged and merged into cliques of column indices.
    ``flagged_workers`` are the worker ids behind the flagged columns —
    with cross-session collusion the same campaign flags overlapping
    worker sets in every poisoned session.
    """
    check_probability(threshold, "threshold")
    check_int(min_overlap, "min_overlap", minimum=1)
    votes = [matrix.column_votes(column) for column in range(matrix.num_columns)]
    agreements: List[float] = []
    flagged: List[Tuple[int, int, float]] = []
    for a in range(len(votes)):
        for b in range(a + 1, len(votes)):
            common = votes[a].keys() & votes[b].keys()
            if len(common) < min_overlap:
                continue
            agreement = sum(
                1 for item in common if votes[a][item] == votes[b][item]
            ) / len(common)
            agreements.append(agreement)
            if agreement >= threshold:
                flagged.append((a, b, agreement))

    # Chain flagged pairs into cliques (connected components over columns).
    parent: Dict[int, int] = {}

    def find(column: int) -> int:
        parent.setdefault(column, column)
        while parent[column] != column:
            parent[column] = parent[parent[column]]
            column = parent[column]
        return column

    for a, b, _ in flagged:
        parent[find(a)] = find(b)
    members: Dict[int, List[int]] = {}
    for column in parent:
        members.setdefault(find(column), []).append(column)
    cliques = tuple(
        tuple(sorted(group)) for group in sorted(members.values(), key=min)
    )
    workers = matrix.column_workers
    flagged_workers = tuple(
        sorted({workers[column] for clique in cliques for column in clique})
    )
    return CollusionReport(
        num_columns=matrix.num_columns,
        num_pairs=len(agreements),
        mean_agreement=(
            sum(agreements) / len(agreements) if agreements else 0.0
        ),
        max_agreement=max(agreements, default=0.0),
        flagged_pairs=tuple(flagged),
        cliques=cliques,
        flagged_workers=flagged_workers,
        threshold=float(threshold),
        min_overlap=int(min_overlap),
    )
