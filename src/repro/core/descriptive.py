"""Descriptive baselines: nominal count and majority voting (Section 2.2).

These are not predictive — they summarise what the first ``K`` workers have
already said — but they are both the baselines the paper plots (VOTING) and
building blocks of the predictive estimators (Chao92 starts from the
nominal count, vChao92 and SWITCH start from the majority count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.base import EstimateResult, SweepEstimatorMixin
from repro.crowd.consensus import (
    majority_count,
    majority_counts_at,
    nominal_count,
    nominal_counts_at,
)
from repro.crowd.response_matrix import ResponseMatrix


def nominal_estimate(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_nominal`` — items marked dirty by at least one worker (Section 2.2.1)."""
    return nominal_count(matrix, upto)


def majority_estimate(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_majority`` — items whose majority consensus is dirty (Section 2.2.2)."""
    return majority_count(matrix, upto)


@dataclass
class NominalEstimator(SweepEstimatorMixin):
    """Descriptive estimator returning the nominal error count."""

    name: str = "nominal"

    def estimate(self, matrix: ResponseMatrix, upto: Optional[int] = None) -> EstimateResult:
        """Return the nominal count; ``estimate == observed`` by construction."""
        count = float(nominal_estimate(matrix, upto))
        return EstimateResult(estimate=count, observed=count, details={})

    def estimate_sweep(
        self, matrix: ResponseMatrix, checkpoints: Sequence[int]
    ) -> List[EstimateResult]:
        """Nominal counts at every checkpoint in one incremental pass."""
        return [
            EstimateResult(estimate=float(count), observed=float(count), details={})
            for count in nominal_counts_at(matrix, checkpoints)
        ]


@dataclass
class VotingEstimator(SweepEstimatorMixin):
    """Descriptive estimator returning the majority-consensus error count.

    This is the paper's VOTING baseline: the best purely descriptive answer
    available with the current workers, but with no predictive power about
    how many errors additional workers would still uncover.
    """

    name: str = "voting"

    def estimate(self, matrix: ResponseMatrix, upto: Optional[int] = None) -> EstimateResult:
        """Return the majority count; ``estimate == observed`` by construction."""
        count = float(majority_estimate(matrix, upto))
        return EstimateResult(estimate=count, observed=count, details={})

    def estimate_sweep(
        self, matrix: ResponseMatrix, checkpoints: Sequence[int]
    ) -> List[EstimateResult]:
        """Majority counts at every checkpoint in one incremental pass."""
        return [
            EstimateResult(estimate=float(count), observed=float(count), details={})
            for count in majority_counts_at(matrix, checkpoints)
        ]
