"""Descriptive baselines: nominal count and majority voting (Section 2.2).

These are not predictive — they summarise what the first ``K`` workers have
already said — but they are both the baselines the paper plots (VOTING) and
building blocks of the predictive estimators (Chao92 starts from the
nominal count, vChao92 and SWITCH start from the majority count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.crowd.consensus import majority_count, nominal_count
from repro.crowd.response_matrix import ResponseMatrix


def nominal_estimate(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_nominal`` — items marked dirty by at least one worker (Section 2.2.1)."""
    return nominal_count(matrix, upto)


def majority_estimate(matrix: ResponseMatrix, upto: Optional[int] = None) -> int:
    """``c_majority`` — items whose majority consensus is dirty (Section 2.2.2)."""
    return majority_count(matrix, upto)


def _descriptive_batch_results(count_table) -> list:
    """``[permutation][checkpoint]`` results from an ``(R, m)`` count table."""
    return [
        [
            EstimateResult(estimate=float(count), observed=float(count), details={})
            for count in row
        ]
        for row in count_table.tolist()
    ]


@dataclass
class NominalEstimator(StateEstimatorMixin):
    """Descriptive estimator returning the nominal error count."""

    name: str = "nominal"

    def estimate_state(self, state) -> EstimateResult:
        """Return the nominal count; ``estimate == observed`` by construction."""
        count = float(state.nominal_count())
        return EstimateResult(estimate=count, observed=count, details={})

    def estimate_sweep_batch(self, batch) -> list:
        """All (permutation, checkpoint) cells straight from the batch table."""
        return _descriptive_batch_results(batch.nominal_counts)


@dataclass
class VotingEstimator(StateEstimatorMixin):
    """Descriptive estimator returning the majority-consensus error count.

    This is the paper's VOTING baseline: the best purely descriptive answer
    available with the current workers, but with no predictive power about
    how many errors additional workers would still uncover.
    """

    name: str = "voting"

    def estimate_state(self, state) -> EstimateResult:
        """Return the majority count; ``estimate == observed`` by construction."""
        count = float(state.majority_count())
        return EstimateResult(estimate=count, observed=count, details={})

    def estimate_sweep_batch(self, batch) -> list:
        """All (permutation, checkpoint) cells straight from the batch table."""
        return _descriptive_batch_results(batch.majority_counts)
