"""The Chao92 sample-coverage species estimator (Section 3.2 of the paper).

Given the fingerprint of positive votes, Chao92 estimates the total number
of distinct errors as

.. math::

    \\hat{D}_{Chao92} = \\frac{c}{\\hat{C}} + \\frac{f_1 \\hat{\\gamma}^2}{\\hat{C}},
    \\qquad \\hat{C} = 1 - f_1 / n^+,

where ``c`` is the number of distinct observed errors, ``f_1`` the number
of singleton errors, ``n^+`` the number of positive votes, and
``\\hat{\\gamma}^2`` the estimated squared coefficient of variation of the
item detection probabilities (Equation 5).  Without the skew term the
estimator reduces to the plain sample-coverage estimate ``c / \\hat{C}``.

The module exposes both a functional API (:func:`chao92_estimate`) working
directly on a :class:`~repro.core.fstatistics.Fingerprint` and the
matrix-level :class:`Chao92Estimator` used by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.fstatistics import Fingerprint


def _coverage_from_stats(singletons: int, num_observations: int) -> float:
    """Good–Turing coverage from its two sufficient statistics."""
    if num_observations <= 0:
        return 0.0
    return max(0.0, 1.0 - singletons / num_observations)


def _skew_from_stats(
    distinct: int, num_observations: int, coverage: float, pair_sum: int
) -> float:
    """``gamma^2`` from scalar statistics; ``pair_sum = sum_j j(j-1) f_j``."""
    if num_observations <= 1 or coverage <= 0.0 or distinct <= 0:
        return 0.0
    gamma_squared = (
        (distinct / coverage) * pair_sum / (num_observations * (num_observations - 1))
        - 1.0
    )
    return max(gamma_squared, 0.0)


def _pair_sum(fingerprint: Fingerprint) -> int:
    """``sum_j j(j-1) f_j`` — the skew numerator of a fingerprint.

    Equals ``sum_i n_i (n_i - 1)`` over the per-item occurrence counts,
    which is how the batched fast paths compute it straight from a count
    table without materialising the fingerprint.
    """
    return sum(j * (j - 1) * fj for j, fj in fingerprint.frequencies.items())


def good_turing_coverage(fingerprint: Fingerprint) -> float:
    """Good–Turing sample-coverage estimate ``C = 1 - f_1 / n``.

    Returns 0.0 when there are no observations (coverage unknown) and
    clips to 0.0 when ``f_1 >= n`` (every observation is a singleton, so
    the sample says nothing about the unseen mass).
    """
    return _coverage_from_stats(fingerprint.singletons, fingerprint.num_observations)


def skew_coefficient(
    fingerprint: Fingerprint,
    distinct: Optional[int] = None,
    coverage: Optional[float] = None,
) -> float:
    """Estimated squared coefficient of variation ``gamma^2`` (Equation 5).

    Parameters
    ----------
    fingerprint:
        The f-statistics.
    distinct:
        ``c`` — the number of distinct observed items; defaults to the
        fingerprint's own distinct count (callers may pass the majority
        count instead, as vChao92 does).
    coverage:
        Sample coverage ``C``; defaults to :func:`good_turing_coverage`.

    Returns
    -------
    float
        ``max(gamma^2, 0)``; returns 0 when the sample is too small for the
        formula (fewer than two observations or zero coverage).
    """
    c = fingerprint.distinct if distinct is None else int(distinct)
    cov = good_turing_coverage(fingerprint) if coverage is None else float(coverage)
    return _skew_from_stats(c, fingerprint.num_observations, cov, _pair_sum(fingerprint))


def chao92_components_from_stats(
    *,
    distinct: int,
    num_observations: int,
    singletons: int,
    pair_sum: int,
    use_skew_correction: bool = True,
) -> Tuple[float, float, float]:
    """Chao92 components from the four sufficient statistics.

    This is the single arithmetic core behind :func:`chao92_components`:
    the fingerprint path extracts the statistics from a
    :class:`~repro.core.fstatistics.Fingerprint`, the cross-permutation
    batch engine reduces them from its count tables — both then run the
    identical scalar float operations, which is what makes the batched
    estimates bit-identical to the per-prefix ones.
    """
    c = int(distinct)
    n = int(num_observations)
    f1 = int(singletons)
    coverage = _coverage_from_stats(f1, n)
    gamma_squared = (
        _skew_from_stats(c, n, coverage, int(pair_sum)) if use_skew_correction else 0.0
    )
    if coverage <= 0.0:
        return float(c), coverage, gamma_squared
    estimate = c / coverage
    if use_skew_correction:
        estimate += f1 * gamma_squared / coverage
    return float(estimate), coverage, gamma_squared


def chao92_components(
    fingerprint: Fingerprint,
    *,
    distinct: Optional[int] = None,
    use_skew_correction: bool = True,
) -> Tuple[float, float, float]:
    """Chao92 estimate plus the intermediates it is built from.

    Returns ``(estimate, coverage, gamma_squared)`` so callers that also
    report the sample coverage and skew coefficient (every estimator's
    ``details`` dict) compute them exactly once instead of re-deriving them
    from the fingerprint.
    """
    return chao92_components_from_stats(
        distinct=fingerprint.distinct if distinct is None else int(distinct),
        num_observations=fingerprint.num_observations,
        singletons=fingerprint.singletons,
        pair_sum=_pair_sum(fingerprint) if use_skew_correction else 0,
        use_skew_correction=use_skew_correction,
    )


def chao92_estimate(
    fingerprint: Fingerprint,
    *,
    distinct: Optional[int] = None,
    use_skew_correction: bool = True,
) -> float:
    """Chao92 estimate of the total number of distinct items.

    Parameters
    ----------
    fingerprint:
        f-statistics of the observed sample.
    distinct:
        The observed distinct count ``c`` to scale up.  Defaults to the
        fingerprint's distinct count (``c_nominal`` for the vote
        fingerprint); vChao92 passes ``c_majority`` instead.
    use_skew_correction:
        Include the ``f_1 * gamma^2 / C`` skew term (Equation 4).  Without
        it the estimate is the basic sample-coverage estimate
        (Equation 3).

    Returns
    -------
    float
        The estimated total number of distinct items.  When the sample
        coverage is zero (no observations, or every observation a
        singleton) the estimate falls back to the observed distinct count —
        the estimator has no basis for extrapolation yet.
    """
    estimate, _, _ = chao92_components(
        fingerprint, distinct=distinct, use_skew_correction=use_skew_correction
    )
    return estimate


@dataclass
class Chao92Estimator(StateEstimatorMixin):
    """Matrix-level Chao92 estimator (the paper's CHAO92 baseline).

    Parameters
    ----------
    use_skew_correction:
        Include the coefficient-of-variation correction term.
    name:
        Registry / report name.
    """

    use_skew_correction: bool = True
    name: str = "chao92"

    def _result_from_stats(
        self, observed: int, n: int, f1: int, f2: int, pair_sum: int
    ) -> EstimateResult:
        estimate, coverage, gamma_squared = chao92_components_from_stats(
            distinct=observed,
            num_observations=n,
            singletons=f1,
            pair_sum=pair_sum,
            use_skew_correction=self.use_skew_correction,
        )
        return EstimateResult(
            estimate=estimate,
            observed=float(observed),
            details={
                "coverage": coverage,
                "singletons": float(f1),
                "doubletons": float(f2),
                "positive_votes": float(n),
                "gamma_squared": gamma_squared,
            },
        )

    def _result(self, fingerprint: Fingerprint, observed: int) -> EstimateResult:
        return self._result_from_stats(
            observed,
            fingerprint.num_observations,
            fingerprint.singletons,
            fingerprint.doubletons,
            _pair_sum(fingerprint) if self.use_skew_correction else 0,
        )

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total error count from the state's vote fingerprint."""
        return self._result(state.positive_fingerprint(), state.nominal_count())

    def estimate_sweep_batch(self, batch) -> list:
        """Vectorised cross-permutation sweep over a :class:`PermutationBatch`.

        The fingerprint sufficient statistics (``n``, ``f_1``, ``f_2`` and
        the skew pair sum) reduce from the batched positive-count table in
        C; the per-cell arithmetic then reuses the exact scalar code path,
        so every estimate is bit-identical to the serial sweep.
        """
        positives = batch.positive_table  # (R, m, N)
        n = positives.sum(axis=2, dtype=np.int64)
        f1 = np.count_nonzero(positives == 1, axis=2)
        f2 = np.count_nonzero(positives == 2, axis=2)
        # The int64 scalar promotes the product before it can overflow the
        # table's compact dtype.
        pair_sum = (positives * (positives - np.int64(1))).sum(axis=2)
        observed = batch.nominal_counts
        return [
            [
                self._result_from_stats(
                    int(observed[p, j]),
                    int(n[p, j]),
                    int(f1[p, j]),
                    int(f2[p, j]),
                    int(pair_sum[p, j]),
                )
                for j in range(batch.num_checkpoints)
            ]
            for p in range(batch.num_permutations)
        ]
