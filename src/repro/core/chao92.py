"""The Chao92 sample-coverage species estimator (Section 3.2 of the paper).

Given the fingerprint of positive votes, Chao92 estimates the total number
of distinct errors as

.. math::

    \\hat{D}_{Chao92} = \\frac{c}{\\hat{C}} + \\frac{f_1 \\hat{\\gamma}^2}{\\hat{C}},
    \\qquad \\hat{C} = 1 - f_1 / n^+,

where ``c`` is the number of distinct observed errors, ``f_1`` the number
of singleton errors, ``n^+`` the number of positive votes, and
``\\hat{\\gamma}^2`` the estimated squared coefficient of variation of the
item detection probabilities (Equation 5).  Without the skew term the
estimator reduces to the plain sample-coverage estimate ``c / \\hat{C}``.

The module exposes both a functional API (:func:`chao92_estimate`) working
directly on a :class:`~repro.core.fstatistics.Fingerprint` and the
matrix-level :class:`Chao92Estimator` used by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.base import EstimateResult, StateEstimatorMixin
from repro.core.fstatistics import Fingerprint


def good_turing_coverage(fingerprint: Fingerprint) -> float:
    """Good–Turing sample-coverage estimate ``C = 1 - f_1 / n``.

    Returns 0.0 when there are no observations (coverage unknown) and
    clips to 0.0 when ``f_1 >= n`` (every observation is a singleton, so
    the sample says nothing about the unseen mass).
    """
    n = fingerprint.num_observations
    if n <= 0:
        return 0.0
    return max(0.0, 1.0 - fingerprint.singletons / n)


def skew_coefficient(
    fingerprint: Fingerprint,
    distinct: Optional[int] = None,
    coverage: Optional[float] = None,
) -> float:
    """Estimated squared coefficient of variation ``gamma^2`` (Equation 5).

    Parameters
    ----------
    fingerprint:
        The f-statistics.
    distinct:
        ``c`` — the number of distinct observed items; defaults to the
        fingerprint's own distinct count (callers may pass the majority
        count instead, as vChao92 does).
    coverage:
        Sample coverage ``C``; defaults to :func:`good_turing_coverage`.

    Returns
    -------
    float
        ``max(gamma^2, 0)``; returns 0 when the sample is too small for the
        formula (fewer than two observations or zero coverage).
    """
    n = fingerprint.num_observations
    c = fingerprint.distinct if distinct is None else int(distinct)
    cov = good_turing_coverage(fingerprint) if coverage is None else float(coverage)
    if n <= 1 or cov <= 0.0 or c <= 0:
        return 0.0
    sum_term = sum(j * (j - 1) * fj for j, fj in fingerprint.frequencies.items())
    gamma_squared = (c / cov) * sum_term / (n * (n - 1)) - 1.0
    return max(gamma_squared, 0.0)


def chao92_components(
    fingerprint: Fingerprint,
    *,
    distinct: Optional[int] = None,
    use_skew_correction: bool = True,
) -> Tuple[float, float, float]:
    """Chao92 estimate plus the intermediates it is built from.

    Returns ``(estimate, coverage, gamma_squared)`` so callers that also
    report the sample coverage and skew coefficient (every estimator's
    ``details`` dict) compute them exactly once instead of re-deriving them
    from the fingerprint.
    """
    c = fingerprint.distinct if distinct is None else int(distinct)
    coverage = good_turing_coverage(fingerprint)
    gamma_squared = (
        skew_coefficient(fingerprint, distinct=c, coverage=coverage)
        if use_skew_correction
        else 0.0
    )
    if coverage <= 0.0:
        return float(c), coverage, gamma_squared
    estimate = c / coverage
    if use_skew_correction:
        estimate += fingerprint.singletons * gamma_squared / coverage
    return float(estimate), coverage, gamma_squared


def chao92_estimate(
    fingerprint: Fingerprint,
    *,
    distinct: Optional[int] = None,
    use_skew_correction: bool = True,
) -> float:
    """Chao92 estimate of the total number of distinct items.

    Parameters
    ----------
    fingerprint:
        f-statistics of the observed sample.
    distinct:
        The observed distinct count ``c`` to scale up.  Defaults to the
        fingerprint's distinct count (``c_nominal`` for the vote
        fingerprint); vChao92 passes ``c_majority`` instead.
    use_skew_correction:
        Include the ``f_1 * gamma^2 / C`` skew term (Equation 4).  Without
        it the estimate is the basic sample-coverage estimate
        (Equation 3).

    Returns
    -------
    float
        The estimated total number of distinct items.  When the sample
        coverage is zero (no observations, or every observation a
        singleton) the estimate falls back to the observed distinct count —
        the estimator has no basis for extrapolation yet.
    """
    estimate, _, _ = chao92_components(
        fingerprint, distinct=distinct, use_skew_correction=use_skew_correction
    )
    return estimate


@dataclass
class Chao92Estimator(StateEstimatorMixin):
    """Matrix-level Chao92 estimator (the paper's CHAO92 baseline).

    Parameters
    ----------
    use_skew_correction:
        Include the coefficient-of-variation correction term.
    name:
        Registry / report name.
    """

    use_skew_correction: bool = True
    name: str = "chao92"

    def _result(self, fingerprint: Fingerprint, observed: int) -> EstimateResult:
        estimate, coverage, gamma_squared = chao92_components(
            fingerprint,
            distinct=observed,
            use_skew_correction=self.use_skew_correction,
        )
        return EstimateResult(
            estimate=estimate,
            observed=float(observed),
            details={
                "coverage": coverage,
                "singletons": float(fingerprint.singletons),
                "doubletons": float(fingerprint.doubletons),
                "positive_votes": float(fingerprint.num_observations),
                "gamma_squared": gamma_squared,
            },
        )

    def estimate_state(self, state) -> EstimateResult:
        """Estimate the total error count from the state's vote fingerprint."""
        return self._result(state.positive_fingerprint(), state.nominal_count())
