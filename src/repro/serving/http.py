"""The HTTP boundary of the serving layer: a JSON API over a service.

:class:`ServingApi` maps a small REST surface onto an
:class:`~repro.streaming.serving.EstimationService` (or the hash-sharded
:class:`~repro.streaming.serving.ShardedEstimationService` — the façade
is identical, so the wire layer cannot tell them apart):

====== =================================== =====================================
Method Path                                Meaning
====== =================================== =====================================
GET    ``/health``                         liveness + session/shard counts
GET    ``/sessions``                       known session names
POST   ``/sessions``                       create a session
GET    ``/sessions/<name>``                progress summary
DELETE ``/sessions/<name>``                drop the session everywhere
POST   ``/sessions/<name>/batches``        ingest one batch (idempotent)
GET    ``/sessions/<name>/estimates``      cached estimates + state version
POST   ``/sessions/<name>/snapshot``       persist a snapshot to the store
POST   ``/sessions/<name>/compact``        fold the session's log into a snapshot
====== =================================== =====================================

The ``(source, sequence)`` pair of the ingest body is the **wire-level
retry contract**: a client that dies before reading its acknowledgement
simply re-POSTs the whole batch, and a batch whose sequence does not
advance its source's high-water mark is acknowledged as a no-op
(``duplicate: true``, 200) instead of double-counting votes.  The
``version`` triple in the estimates response lets that client verify the
retry really changed nothing.

Errors are structured, never tracebacks:

* unknown session → **404** (:class:`~repro.streaming.store.UnknownSessionError`)
* malformed body / bad votes / bad names → **400** (``ValidationError``)
* conflicting configuration (name already exists, unknown estimator)
  → **409** (``ConfigurationError``)
* unreadable stored bytes → **500**
  (:class:`~repro.streaming.store.StoreCorruptionError`)

Transport is the stdlib :class:`http.server.ThreadingHTTPServer` — one
thread per connection, which the per-session locks of the service were
built for.  :class:`ServingApi` itself is transport-free (``handle`` maps
``(method, path, body)`` to ``(status, payload)``), so tests can drive
the full routing and error mapping without opening a socket, and
:class:`SessionClient` is the matching stdlib ``urllib`` client whose
methods return the same dataclasses as the in-process façade.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.exceptions import ConfigurationError, ReproError, ValidationError
from repro.core.base import EstimateResult
from repro.streaming.serving import EstimateReport, IngestResult, ShardUnavailableError
from repro.streaming.store import StoreCorruptionError, UnknownSessionError

#: Bodies larger than this are rejected up front (64 MiB is far beyond
#: any sane vote batch and keeps a misbehaving client from ballooning
#: the handler thread).
MAX_BODY_BYTES = 64 << 20

_JSON_CONTENT_TYPE = "application/json"


class HttpApiError(ReproError):
    """An error response from the serving API, with its HTTP status.

    Raised by :class:`SessionClient`; ``status`` carries the mapped code
    (404 unknown session, 400 validation, 409 conflict, 500 corruption or
    internal failure) and ``kind`` the server's error classification.

    Known error kinds raise the dual-typed subclasses below
    (:class:`HttpUnknownSessionError` and friends), which are *also* the
    exception type the in-process façade would have raised — so code
    written against :class:`~repro.streaming.serving.EstimationService`
    catches exactly the same exceptions over the wire (``except
    UnknownSessionError`` keeps meaning "no such session", and a 404 is
    no longer catchable as a 409-style ``ConfigurationError`` conflict).
    Only responses the client cannot classify (unknown kinds, non-JSON
    bodies, unroutable paths) surface as this bare base class.
    """

    def __init__(self, status: int, message: str, kind: str = "error") -> None:
        super().__init__(message)
        self.status = int(status)
        self.kind = str(kind)


class HttpUnknownSessionError(UnknownSessionError, HttpApiError):
    """404: the named session does not exist (in-process twin: ``UnknownSessionError``)."""


class HttpValidationError(ValidationError, HttpApiError):
    """400: the request was malformed (in-process twin: ``ValidationError``)."""


class HttpConflictError(ConfigurationError, HttpApiError):
    """409: conflicting configuration (in-process twin: ``ConfigurationError``)."""


class HttpStoreCorruptionError(StoreCorruptionError, HttpApiError):
    """500: unreadable stored bytes (in-process twin: ``StoreCorruptionError``)."""


class HttpShardUnavailableError(ShardUnavailableError, HttpApiError):
    """500: a shard worker process is down (in-process twin: ``ShardUnavailableError``)."""


#: How the server classifies library errors: ``(exception, status, kind)``,
#: checked in order (subclasses before their bases).  Shared by
#: :meth:`ServingApi.handle` and the per-shard worker processes
#: (:mod:`repro.serving.workers`), so the two boundaries cannot drift.
SERVER_ERROR_TAXONOMY: Tuple[Tuple[type, int, str], ...] = (
    (UnknownSessionError, 404, "unknown_session"),
    (StoreCorruptionError, 500, "store_corruption"),
    (ShardUnavailableError, 500, "shard_unavailable"),
    (ValidationError, 400, "validation"),
    (ConfigurationError, 409, "conflict"),
)

#: The client-side inverse: the server's ``kind`` field back to the typed
#: exception a caller of the in-process façade would have seen.
CLIENT_ERROR_TYPES: Dict[str, type] = {
    "unknown_session": HttpUnknownSessionError,
    "validation": HttpValidationError,
    "conflict": HttpConflictError,
    "store_corruption": HttpStoreCorruptionError,
    "shard_unavailable": HttpShardUnavailableError,
}


def classify_error(error: BaseException) -> Optional[Tuple[int, str]]:
    """Map a library exception onto ``(status, kind)`` — ``None`` if unmapped."""
    for exception_type, status, kind in SERVER_ERROR_TAXONOMY:
        if isinstance(error, exception_type):
            return status, kind
    return None


def error_from_kind(status: int, message: str, kind: str) -> HttpApiError:
    """Build the typed client-side exception for a structured error response.

    Known kinds return the dual-typed subclass (e.g. ``unknown_session``
    → :class:`HttpUnknownSessionError`, catchable as
    ``UnknownSessionError``); unknown kinds fall back to the bare
    :class:`HttpApiError`.  Status and kind stay attached either way.
    """
    return CLIENT_ERROR_TYPES.get(kind, HttpApiError)(status, message, kind)


# --------------------------------------------------------------------- #
# wire codecs (shared by the server, the client and the CLI)
# --------------------------------------------------------------------- #
def _plain(value):
    """JSON-safe value: numpy scalars and arrays become Python equivalents."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        # Estimator ``details`` legitimately carry arrays (frequency
        # tables, per-checkpoint traces); ``tolist`` yields nested lists
        # of exact Python scalars instead of crashing ``json.dumps``.
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    return value


def parse_columns_payload(
    payload: object,
) -> Tuple[List[Dict[int, int]], List[Optional[int]]]:
    """Decode the JSON wire shape of a vote batch into ingest arguments.

    The accepted shape — shared by ``POST /sessions/<name>/batches`` and
    ``repro session ingest`` — is a list with one entry per task column,
    each either ``{"votes": {"<item>": vote, ...}, "worker": id}`` or the
    bare ``{"<item>": vote}`` mapping itself.  Anything else raises
    ``ValidationError`` with the offending entry's position; nothing here
    lets a malformed body escape as a raw traceback.
    """
    if not isinstance(payload, list):
        raise ValidationError(
            f"vote batch must be a JSON list of column objects, "
            f"got {type(payload).__name__}"
        )
    columns: List[Dict[int, int]] = []
    workers: List[Optional[int]] = []
    for position, entry in enumerate(payload):
        if not isinstance(entry, dict):
            raise ValidationError(
                f"column {position} must be an object, got {type(entry).__name__}"
            )
        worker = None
        votes = entry
        if "votes" in entry:
            votes = entry["votes"]
            if not isinstance(votes, dict):
                raise ValidationError(
                    f"column {position}: 'votes' must be an object mapping "
                    f"item ids to votes, got {type(votes).__name__}"
                )
            worker = entry.get("worker")
            unknown = sorted(set(entry) - {"votes", "worker"})
            if unknown:
                raise ValidationError(
                    f"column {position}: unknown key(s) {unknown}; "
                    "expected 'votes' and optional 'worker'"
                )
        column: Dict[int, int] = {}
        for item, vote in votes.items():
            try:
                column[int(item)] = int(vote)
            except (TypeError, ValueError):
                raise ValidationError(
                    f"column {position}: item ids and votes must be "
                    f"integers, got {item!r}: {vote!r}"
                ) from None
        try:
            workers.append(None if worker is None else int(worker))
        except (TypeError, ValueError):
            raise ValidationError(
                f"column {position}: 'worker' must be an integer, got {worker!r}"
            ) from None
        columns.append(column)
    return columns, workers


def result_to_payload(result: EstimateResult) -> Dict[str, object]:
    """One :class:`EstimateResult` as its JSON wire object."""
    return {
        "estimate": _plain(float(result.estimate)),
        "observed": _plain(float(result.observed)),
        "remaining": _plain(float(result.remaining)),
        "details": _plain(dict(result.details)),
    }


def result_from_payload(payload: Mapping[str, object]) -> EstimateResult:
    """The client-side inverse of :func:`result_to_payload`.

    JSON floats round-trip exactly (the encoder emits the shortest
    representation that parses back to the identical double), so the
    reconstructed :class:`EstimateResult` compares equal bit for bit with
    the server's — the property the end-to-end harness pins.
    """
    return EstimateResult(
        estimate=float(payload["estimate"]),
        observed=float(payload["observed"]),
        details={str(key): value for key, value in dict(payload.get("details", {})).items()},
    )


def report_to_payload(report: EstimateReport) -> Dict[str, object]:
    """One :class:`EstimateReport` as the estimates response body."""
    return {
        "session": report.session,
        "version": [int(part) for part in report.version],
        "estimates": {
            name: result_to_payload(result)
            for name, result in sorted(report.results.items())
        },
    }


def report_from_payload(payload: Mapping[str, object]) -> EstimateReport:
    """The client-side inverse of :func:`report_to_payload`."""
    return EstimateReport(
        session=str(payload["session"]),
        version=tuple(int(part) for part in payload["version"]),
        results={
            str(name): result_from_payload(result)
            for name, result in dict(payload["estimates"]).items()
        },
    )


# --------------------------------------------------------------------- #
# the transport-free API core
# --------------------------------------------------------------------- #
class ServingApi:
    """Route ``(method, path, body)`` requests onto a serving façade.

    Works over anything with the :class:`EstimationService` surface —
    including :class:`ShardedEstimationService`.  Thread-safe to exactly
    the degree the underlying service is; the only state of its own is a
    lock-guarded request counter.
    """

    def __init__(self, service) -> None:
        self.service = service
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0

    def stats(self) -> Dict[str, int]:
        """Requests handled and error responses sent so far."""
        with self._stats_lock:
            return {"requests": self._requests, "errors": self._errors}

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def handle(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, Dict[str, object]]:
        """One request in, ``(status, JSON-safe payload)`` out.

        Every library error is mapped to a structured JSON error body —
        the transport layer never sees an exception for a client-caused
        problem.
        """
        with self._stats_lock:
            self._requests += 1
        try:
            status, payload = self._route(method.upper(), path, body)
        except ReproError as error:
            mapped = classify_error(error)
            if mapped is None:
                raise  # unmapped library error: the transport's 500 path
            status, kind = mapped
            payload = {"error": str(error), "kind": kind}
        if status >= 400:
            with self._stats_lock:
                self._errors += 1
        return status, payload

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        route, _, raw_query = path.partition("?")
        parts = [part for part in route.split("/") if part]
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(raw_query).items()
        }
        if parts == ["health"] and method == "GET":
            return self._health()
        if parts == ["sessions"]:
            if method == "GET":
                return 200, {"sessions": self.service.sessions()}
            if method == "POST":
                return self._create(self._json_body(body))
        if len(parts) == 2 and parts[0] == "sessions":
            name = parts[1]
            if method == "GET":
                return 200, {
                    "session": name,
                    "progress": _plain(self.service.progress(name)),
                }
            if method == "DELETE":
                self.service.drop(name)
                return 200, {"session": name, "dropped": True}
        if len(parts) == 3 and parts[0] == "sessions":
            name, action = parts[1], parts[2]
            if action == "batches" and method == "POST":
                return self._ingest(name, self._json_body(body))
            if action == "estimates" and method == "GET":
                payload = report_to_payload(self.service.estimate_report(name))
                if _query_flag(query, "collusion"):
                    payload["collusion"] = self._collusion(name, query)
                return 200, payload
            if action == "snapshot" and method == "POST":
                self.service.snapshot(name)
                return 200, {"session": name, "snapshotted": True}
            if action == "compact" and method == "POST":
                self.service.compact(name)
                return 200, {"session": name, "compacted": True}
        return 404, {
            "error": f"no route for {method} {path}",
            "kind": "unknown_route",
        }

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def _collusion(self, name: str, query: Dict[str, str]) -> Dict[str, object]:
        """The estimates route's ``?collusion=1`` extension.

        Optional ``threshold`` / ``min_overlap`` query parameters tune
        the agreement scan; a service without the capability (the
        process-sharded facade keeps its worker RPC surface minimal)
        answers with a 400 rather than a confusing unknown-route 404.
        """
        reporter = getattr(self.service, "collusion_report", None)
        if reporter is None:
            raise ValidationError(
                "this service does not support collusion reports "
                "(process-sharded serving keeps the worker protocol to the "
                "core ingest/estimate surface)"
            )
        kwargs: Dict[str, object] = {}
        if "threshold" in query:
            try:
                kwargs["threshold"] = float(query["threshold"])
            except ValueError:
                raise ValidationError(
                    f"'threshold' must be a number, got {query['threshold']!r}"
                ) from None
        if "min_overlap" in query:
            try:
                kwargs["min_overlap"] = int(query["min_overlap"])
            except ValueError:
                raise ValidationError(
                    f"'min_overlap' must be an integer, got {query['min_overlap']!r}"
                ) from None
        return reporter(name, **kwargs).to_dict()

    def _health(self) -> Tuple[int, Dict[str, object]]:
        service = self.service
        return 200, {
            "status": "ok",
            "sessions": len(service.sessions()),
            "active_sessions": len(service.active_sessions()),
            "shards": int(getattr(service, "num_shards", 1)),
            "wal": bool(getattr(service, "wal_enabled", False)),
        }

    def _create(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        name = payload.get("name")
        if not isinstance(name, str):
            raise ValidationError("create body requires a string 'name'")
        unknown = sorted(
            set(payload) - {"name", "item_ids", "items", "estimators", "keep_votes"}
        )
        if unknown:
            raise ValidationError(
                f"unknown create key(s) {unknown}; expected 'name', "
                "'item_ids' or 'items', optional 'estimators' and 'keep_votes'"
            )
        if ("item_ids" in payload) == ("items" in payload):
            raise ValidationError(
                "create body requires exactly one of 'item_ids' (explicit id "
                "list) or 'items' (ids 0..N-1)"
            )
        if "item_ids" in payload:
            raw = payload["item_ids"]
            if not isinstance(raw, list):
                raise ValidationError("'item_ids' must be a list of integers")
            try:
                item_ids = [int(item) for item in raw]
            except (TypeError, ValueError):
                raise ValidationError("'item_ids' must be a list of integers") from None
        else:
            try:
                item_ids = list(range(int(payload["items"])))
            except (TypeError, ValueError):
                raise ValidationError("'items' must be an integer") from None
        estimators = payload.get("estimators")
        if estimators is not None:
            if not isinstance(estimators, list) or not all(
                isinstance(entry, str) for entry in estimators
            ):
                raise ValidationError("'estimators' must be a list of registry names")
        keep_votes = payload.get("keep_votes", True)
        if not isinstance(keep_votes, bool):
            raise ValidationError("'keep_votes' must be a boolean")
        self.service.create_session(name, item_ids, estimators, keep_votes=keep_votes)
        return 201, {
            "session": name,
            "num_items": len(item_ids),
            "keep_votes": keep_votes,
        }

    def _ingest(
        self, name: str, payload: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        if not isinstance(payload, dict):
            raise ValidationError(
                f"ingest body must be an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"columns", "source", "sequence"})
        if unknown:
            raise ValidationError(
                f"unknown ingest key(s) {unknown}; expected 'columns', "
                "optional 'source' and 'sequence'"
            )
        columns, workers = parse_columns_payload(payload.get("columns"))
        source = payload.get("source")
        if source is not None and not isinstance(source, str):
            raise ValidationError(f"'source' must be a string, got {source!r}")
        sequence = payload.get("sequence")
        if sequence is not None:
            try:
                sequence = int(sequence)
            except (TypeError, ValueError):
                raise ValidationError(
                    f"'sequence' must be an integer, got {sequence!r}"
                ) from None
        result = self.service.ingest(
            name, columns, worker_ids=workers, source=source, sequence=sequence
        )
        return 200, {
            "session": result.session,
            "applied": result.applied,
            "duplicate": result.duplicate,
            "num_columns": result.num_columns,
            "total_votes": result.total_votes,
        }

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, object]:
        if not body:
            raise ValidationError("request body must be a JSON object, got nothing")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValidationError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ValidationError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload


# --------------------------------------------------------------------- #
# the stdlib transport
# --------------------------------------------------------------------- #
class _ServingRequestHandler(BaseHTTPRequestHandler):
    """Thin glue: bytes in from the socket, ``ServingApi.handle``, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serving"

    def _respond(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            status, payload = 400, {
                "error": f"request body exceeds {MAX_BODY_BYTES} bytes",
                "kind": "validation",
            }
            # Never materialise (or even wait for) the declared body: a
            # single ``read(length)`` here would allocate whatever
            # Content-Length the client claimed — exactly the ballooning
            # the guard exists to prevent — and would block until those
            # bytes actually arrived.  The connection is closed after the
            # error response instead of drained for keep-alive; a client
            # that declares gigabytes does not deserve its socket back.
            self.close_connection = True
        else:
            body = self.rfile.read(length) if length else b""
            try:
                status, payload = self.server.api.handle(self.command, self.path, body)
            except Exception as error:  # never leak a traceback onto the wire
                status, payload = 500, {"error": repr(error), "kind": "internal"}
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", _JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(encoded)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(encoded)

    do_GET = do_POST = do_DELETE = _respond

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the per-request stderr chatter (stats() has the counts)."""


class _ServingHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Ephemeral test servers come and go on the same port; don't linger.
    allow_reuse_address = True

    def __init__(self, address, api: ServingApi) -> None:
        super().__init__(address, _ServingRequestHandler)
        self.api = api


class HttpServingServer:
    """An :class:`EstimationService` behind a real TCP port.

    Parameters
    ----------
    service:
        The façade to serve — an
        :class:`~repro.streaming.serving.EstimationService` or
        :class:`~repro.streaming.serving.ShardedEstimationService`.
    host / port:
        Bind address.  ``port=0`` (the default) binds an ephemeral port;
        read the resolved one from :attr:`port` / :attr:`url`.

    The socket is bound (and the port resolved) at construction time;
    :meth:`start` begins serving on a daemon thread and is what the
    context-manager protocol calls.  ``repro serve`` uses
    :meth:`serve_forever` instead to stay in the foreground.

    Examples
    --------
    >>> from repro.serving import EstimationService
    >>> with HttpServingServer(EstimationService()) as server:
    ...     client = SessionClient(server.url)
    ...     client.health()["status"]
    'ok'
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.api = ServingApi(service)
        self._server = _ServingHTTPServer((host, int(port)), self.api)
        self._thread: Optional[threading.Thread] = None
        #: whether ``serve_forever`` ever began: ``BaseServer.shutdown``
        #: waits on an event only ``serve_forever`` sets, so calling it on
        #: a server that never served would block forever.
        self._serving = False

    @property
    def service(self):
        """The façade being served."""
        return self.api.service

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpServingServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"repro-serving:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` is called."""
        self._serving = True
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the port (idempotent).

        Safe on a server that was constructed but never started: the
        stdlib ``BaseServer.shutdown`` waits on an event only
        ``serve_forever`` sets, so it is skipped unless serving actually
        began — the port is released either way.
        """
        if self._serving:
            self._serving = False
            self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "HttpServingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# --------------------------------------------------------------------- #
# the stdlib client
# --------------------------------------------------------------------- #
def _query_flag(query: Mapping[str, str], key: str) -> bool:
    """Whether a query parameter is present and truthy (``0``/``false`` off)."""
    value = query.get(key)
    if value is None:
        return False
    return value.strip().lower() not in {"", "0", "false", "no"}


class SessionClient:
    """A ``urllib``-based client speaking the :class:`ServingApi` wire format.

    Methods mirror the in-process façade and return the same dataclasses
    (:class:`IngestResult`, :class:`EstimateReport`,
    :class:`~repro.core.base.EstimateResult`), so code — including the
    load generator — can run against either without changes.  Error
    responses raise the typed exception the façade would have raised
    (``unknown_session`` → :class:`HttpUnknownSessionError`, catchable as
    ``UnknownSessionError``, and so on per :data:`CLIENT_ERROR_TYPES`);
    every raised error is also an :class:`HttpApiError` carrying the HTTP
    status and the server's error kind.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        data = None
        headers = {"Accept": _JSON_CONTENT_TYPE}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = _JSON_CONTENT_TYPE
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(raw)
                message = str(parsed.get("error", raw))
                kind = str(parsed.get("kind", "error"))
            except json.JSONDecodeError:
                message, kind = raw or str(error), "error"
            raise error_from_kind(error.code, message, kind) from None
        return body

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")

    def sessions(self) -> List[str]:
        return [str(name) for name in self._request("GET", "/sessions")["sessions"]]

    def create_session(
        self,
        name: str,
        item_ids: Optional[Sequence[int]] = None,
        estimators: Optional[Sequence[str]] = None,
        *,
        items: Optional[int] = None,
        keep_votes: bool = True,
    ) -> str:
        payload: Dict[str, object] = {"name": name, "keep_votes": keep_votes}
        if item_ids is not None:
            payload["item_ids"] = [int(item) for item in item_ids]
        if items is not None:
            payload["items"] = int(items)
        if estimators is not None:
            payload["estimators"] = list(estimators)
        self._request("POST", "/sessions", payload)
        return name

    def progress(self, name: str) -> Dict[str, float]:
        payload = self._request("GET", f"/sessions/{name}")["progress"]
        return {str(key): float(value) for key, value in payload.items()}

    def ingest(
        self,
        name: str,
        columns: Sequence[Mapping[int, int]],
        *,
        worker_ids: Optional[Sequence[Optional[int]]] = None,
        source: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> IngestResult:
        if worker_ids is not None and len(worker_ids) != len(columns):
            # The same check the in-process façade makes; without it a
            # short ``worker_ids`` would escape as a bare ``IndexError``
            # below instead of a diagnosable validation failure.
            raise ValidationError(
                f"worker_ids length {len(worker_ids)} does not match "
                f"{len(columns)} column(s)"
            )
        wire_columns: List[Dict[str, object]] = []
        for index, votes in enumerate(columns):
            entry: Dict[str, object] = {
                "votes": {str(item): int(vote) for item, vote in votes.items()}
            }
            if worker_ids is not None and worker_ids[index] is not None:
                entry["worker"] = int(worker_ids[index])
            wire_columns.append(entry)
        payload: Dict[str, object] = {"columns": wire_columns}
        if source is not None:
            payload["source"] = source
        if sequence is not None:
            payload["sequence"] = int(sequence)
        body = self._request("POST", f"/sessions/{name}/batches", payload)
        return IngestResult(
            session=str(body["session"]),
            applied=int(body["applied"]),
            duplicate=bool(body["duplicate"]),
            num_columns=int(body["num_columns"]),
            total_votes=int(body["total_votes"]),
        )

    def estimate_report(self, name: str) -> EstimateReport:
        return report_from_payload(
            self._request("GET", f"/sessions/{name}/estimates")
        )

    def estimates(self, name: str) -> Dict[str, EstimateResult]:
        return self.estimate_report(name).results

    def collusion_report(
        self,
        name: str,
        *,
        threshold: Optional[float] = None,
        min_overlap: Optional[int] = None,
    ) -> Dict[str, object]:
        """The estimates route's collusion extension, as a plain payload.

        Mirrors ``EstimationService.collusion_report`` over the wire
        (``GET /sessions/{name}/estimates?collusion=1``); omitted knobs
        take the server-side defaults.
        """
        params = {"collusion": "1"}
        if threshold is not None:
            params["threshold"] = repr(float(threshold))
        if min_overlap is not None:
            params["min_overlap"] = str(int(min_overlap))
        body = self._request(
            "GET",
            f"/sessions/{name}/estimates?" + urllib.parse.urlencode(params),
        )
        return dict(body["collusion"])

    def snapshot(self, name: str) -> Dict[str, object]:
        return self._request("POST", f"/sessions/{name}/snapshot", {})

    def compact(self, name: str) -> Dict[str, object]:
        return self._request("POST", f"/sessions/{name}/compact", {})

    def drop(self, name: str) -> None:
        self._request("DELETE", f"/sessions/{name}")
