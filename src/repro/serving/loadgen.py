"""Synthetic-crowd load generation against the serving API.

The missing half of a serving layer is the traffic that proves it: this
module builds a **worker fleet** — every worker a thread with its own
accuracy, think-time and delivery plan — and drives any client with the
:class:`~repro.streaming.serving.EstimationService` surface, which
includes the wire-level :class:`~repro.serving.http.SessionClient` and
the in-process façade itself.

The fleet deliberately produces the traffic a real crowd platform
produces:

* **bursty arrivals** — workers launch in bursts of
  ``workers_per_burst`` separated by ``burst_gap_s``;
* **duplicate deliveries** — every ``duplicate_every``-th delivery is
  re-sent immediately, as a crashed-and-retried loader would;
* **reordered deliveries** — every ``reorder_every``-th adjacent pair of
  a worker's deliveries is swapped, so a *lower* sequence number arrives
  after a higher one and must be dropped by the ``(source, sequence)``
  high-water mark;
* **overlapping sessions** — workers are assigned round-robin, so every
  session is written by several concurrent workers.

Every plan is a pure function of :class:`FleetConfig` (content-wise):
what interleaving the server actually applied is recovered from the
acknowledgements — an applied batch's ``num_columns`` minus its
``applied`` count is the exact column index where it landed — so
:func:`replay_applied_batches` can rebuild each session's column order
deterministically and replay it through a plain
:class:`~repro.streaming.StreamingSession`.  The end-to-end harness
asserts the served estimates equal that replay **bit for bit**; the
:class:`FleetReport` additionally carries the latency distribution
(p50/p95/p99) and throughput that ``repro bench`` records as the
``http-smoke`` / ``http-load`` workload family.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.exceptions import ValidationError
from repro.common.validation import check_int
from repro.core.base import EstimateResult
from repro.streaming.session import StreamingSession


def latency_percentiles(
    latencies_s: Sequence[float], quantiles: Sequence[int] = (50, 95, 99)
) -> Dict[str, float]:
    """Nearest-rank percentiles of a latency sample, as ``{"p50": ...}``.

    Nearest-rank (not interpolated) so every reported number is a latency
    that actually happened.  Raises ``ValidationError`` on an empty
    sample — a load report with no requests has no tail to summarise.
    """
    if not latencies_s:
        raise ValidationError("cannot summarise an empty latency sample")
    ordered = sorted(float(value) for value in latencies_s)
    summary = {}
    for quantile in quantiles:
        if not 0 < quantile <= 100:
            raise ValidationError(f"percentile must be in (0, 100], got {quantile}")
        rank = max(1, math.ceil(quantile / 100 * len(ordered)))
        summary[f"p{quantile}"] = ordered[rank - 1]
    return summary


@dataclass(frozen=True)
class FleetConfig:
    """One synthetic worker fleet (deterministic given ``seed``).

    ``num_workers`` workers deliver ``batches_per_worker`` batches of
    ``columns_per_batch`` task columns each into ``num_sessions``
    sessions (round-robin assignment, so sessions overlap whenever
    ``num_workers > num_sessions``).  Worker accuracy is drawn uniformly
    from ``accuracy``; per-delivery think time uniformly from
    ``latency_s``.  ``duplicate_every``/``reorder_every`` inject the
    retry and out-of-order traffic described in the module docstring
    (``0`` disables either).
    """

    num_sessions: int = 2
    num_workers: int = 6
    num_items: int = 150
    error_rate: float = 0.25
    batches_per_worker: int = 5
    columns_per_batch: int = 3
    items_per_column: int = 10
    accuracy: Tuple[float, float] = (0.7, 0.95)
    latency_s: Tuple[float, float] = (0.0, 0.0)
    workers_per_burst: int = 4
    burst_gap_s: float = 0.0
    duplicate_every: int = 3
    reorder_every: int = 4
    estimators: Tuple[str, ...] = ("voting", "chao92", "switch_total")
    session_prefix: str = "crowd-"
    keep_votes: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        check_int(self.num_sessions, "num_sessions", minimum=1)
        check_int(self.num_workers, "num_workers", minimum=1)
        check_int(self.num_items, "num_items", minimum=1)
        check_int(self.batches_per_worker, "batches_per_worker", minimum=1)
        check_int(self.columns_per_batch, "columns_per_batch", minimum=1)
        check_int(self.items_per_column, "items_per_column", minimum=1)
        check_int(self.workers_per_burst, "workers_per_burst", minimum=1)
        check_int(self.duplicate_every, "duplicate_every", minimum=0)
        check_int(self.reorder_every, "reorder_every", minimum=0)
        if self.items_per_column > self.num_items:
            raise ValidationError(
                f"items_per_column ({self.items_per_column}) cannot exceed "
                f"num_items ({self.num_items})"
            )
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValidationError(f"error_rate must be in [0, 1], got {self.error_rate}")
        low, high = self.accuracy
        if not 0.0 <= low <= high <= 1.0:
            raise ValidationError(f"accuracy must satisfy 0 <= low <= high <= 1, got {self.accuracy}")
        low, high = self.latency_s
        if not 0.0 <= low <= high:
            raise ValidationError(f"latency_s must satisfy 0 <= low <= high, got {self.latency_s}")

    def session_names(self) -> List[str]:
        """The fleet's target session names, by session index."""
        return [
            f"{self.session_prefix}{index:03d}" for index in range(self.num_sessions)
        ]

    def true_labels(self) -> np.ndarray:
        """Ground-truth dirtiness per item (1 = dirty), fixed by ``seed``."""
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0xFEED]))
        return (rng.random(self.num_items) < self.error_rate).astype(np.int8)


@dataclass(frozen=True)
class Delivery:
    """One planned client request: a batch plus its retry metadata."""

    session: str
    source: str
    sequence: int
    columns: Tuple[Dict[int, int], ...]
    worker_ids: Tuple[int, ...]
    #: True when this delivery is the deliberate immediate re-send of the
    #: previous one (the wire retry that must be acknowledged as a no-op).
    is_retry: bool = False
    #: Seconds the worker thinks before sending this delivery.
    think_s: float = 0.0


@dataclass(frozen=True)
class AppliedBatch:
    """A batch the server acknowledged as applied, and where it landed.

    ``start`` is the session column index of the batch's first column —
    recovered from the acknowledgement (``num_columns - applied``), which
    is what makes the concurrent run replayable: sorting a session's
    applied batches by ``start`` *is* the server-side application order.
    """

    session: str
    start: int
    columns: Tuple[Dict[int, int], ...]
    worker_ids: Tuple[int, ...]


@dataclass
class FleetReport:
    """Everything one fleet run produced: traffic stats and replay fuel."""

    config: FleetConfig
    wall_s: float
    deliveries: int
    applied_deliveries: int
    duplicate_acks: int
    #: Duplicate acknowledgements for deliveries that were *not* planned
    #: retries — i.e. reordered (late) batches correctly dropped by the
    #: high-water mark.
    late_drops: int
    columns_applied: int
    votes_applied: int
    latencies_s: List[float] = field(default_factory=list)
    applied_batches: List[AppliedBatch] = field(default_factory=list)

    @property
    def requests_per_s(self) -> float:
        return self.deliveries / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def columns_per_s(self) -> float:
        return self.columns_applied / self.wall_s if self.wall_s > 0 else float("inf")

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99 request latency in seconds."""
        return latency_percentiles(self.latencies_s)


def build_worker_plan(config: FleetConfig, worker: int) -> List[Delivery]:
    """Worker ``worker``'s delivery plan — a pure function of the config.

    Batches carry sequences ``1..batches_per_worker`` toward the worker's
    round-robin session; reordering swaps adjacent planned deliveries
    (so the swapped-early higher sequence wins and the late lower one
    must be dropped), then every ``duplicate_every``-th delivery gains an
    immediate retry twin.
    """
    check_int(worker, "worker", minimum=0)
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 1 + worker]))
    truth = config.true_labels()
    accuracy = float(rng.uniform(*config.accuracy))
    session = config.session_names()[worker % config.num_sessions]
    source = f"worker-{worker:03d}"

    batches: List[Delivery] = []
    for batch_index in range(config.batches_per_worker):
        columns = []
        worker_ids = []
        for _ in range(config.columns_per_batch):
            items = rng.choice(config.num_items, size=config.items_per_column, replace=False)
            flips = rng.random(config.items_per_column) >= accuracy
            votes = np.where(flips, 1 - truth[items], truth[items])
            columns.append(
                {int(item): int(vote) for item, vote in zip(items, votes)}
            )
            worker_ids.append(worker)
        batches.append(
            Delivery(
                session=session,
                source=source,
                sequence=batch_index + 1,
                columns=tuple(columns),
                worker_ids=tuple(worker_ids),
                think_s=float(rng.uniform(*config.latency_s)),
            )
        )

    if config.reorder_every:
        for index in range(config.reorder_every - 1, len(batches) - 1, config.reorder_every):
            batches[index], batches[index + 1] = batches[index + 1], batches[index]

    plan: List[Delivery] = []
    for index, delivery in enumerate(batches):
        plan.append(delivery)
        if config.duplicate_every and (index + 1) % config.duplicate_every == 0:
            plan.append(
                Delivery(
                    session=delivery.session,
                    source=delivery.source,
                    sequence=delivery.sequence,
                    columns=delivery.columns,
                    worker_ids=delivery.worker_ids,
                    is_retry=True,
                    think_s=0.0,
                )
            )
    return plan


class LoadGenerator:
    """Run a worker fleet against a serving client.

    Parameters
    ----------
    client:
        Anything with the service surface the fleet needs:
        ``create_session(name, item_ids, estimators, keep_votes=...)``
        and ``ingest(name, columns, worker_ids=..., source=...,
        sequence=...)`` returning an
        :class:`~repro.streaming.serving.IngestResult`.  Both the HTTP
        :class:`~repro.serving.http.SessionClient` and the in-process
        :class:`~repro.streaming.serving.EstimationService` qualify.
    config:
        The fleet to simulate.
    """

    def __init__(self, client, config: FleetConfig) -> None:
        self.client = client
        self.config = config

    def create_sessions(self) -> List[str]:
        """Create the fleet's target sessions on the service."""
        names = self.config.session_names()
        for name in names:
            self.client.create_session(
                name,
                range(self.config.num_items),
                list(self.config.estimators),
                keep_votes=self.config.keep_votes,
            )
        return names

    def run(
        self,
        *,
        create_sessions: bool = True,
        plans: Optional[Sequence[Sequence[Delivery]]] = None,
    ) -> FleetReport:
        """Drive the whole fleet; returns the :class:`FleetReport`.

        Workers run as real threads, launched in bursts; a worker failure
        (an unexpected error response, a dead server) is re-raised here
        after every thread has stopped.  ``plans`` overrides the default
        per-worker plans (``build_worker_plan`` for every worker) — the
        dynamic-scenario drive injects its own delivery plans this way
        while reusing the threading, bursting and acknowledgement
        bookkeeping unchanged.
        """
        config = self.config
        if create_sessions:
            self.create_sessions()
        if plans is None:
            plans = [
                build_worker_plan(config, worker)
                for worker in range(config.num_workers)
            ]
        plans = [list(plan) for plan in plans]

        lock = threading.Lock()
        latencies: List[float] = []
        applied_batches: List[AppliedBatch] = []
        counts = {"deliveries": 0, "applied": 0, "duplicates": 0, "late_drops": 0,
                  "columns": 0, "votes": 0}
        failures: List[BaseException] = []

        def deliver(plan: List[Delivery]) -> None:
            try:
                for delivery in plan:
                    if delivery.think_s:
                        time.sleep(delivery.think_s)
                    begin = time.perf_counter()
                    result = self.client.ingest(
                        delivery.session,
                        list(delivery.columns),
                        worker_ids=list(delivery.worker_ids),
                        source=delivery.source,
                        sequence=delivery.sequence,
                    )
                    elapsed = time.perf_counter() - begin
                    with lock:
                        latencies.append(elapsed)
                        counts["deliveries"] += 1
                        if result.duplicate:
                            counts["duplicates"] += 1
                            if not delivery.is_retry:
                                counts["late_drops"] += 1
                        else:
                            counts["applied"] += 1
                            counts["columns"] += result.applied
                            counts["votes"] += sum(
                                len(column) for column in delivery.columns
                            )
                            applied_batches.append(
                                AppliedBatch(
                                    session=delivery.session,
                                    start=result.num_columns - result.applied,
                                    columns=delivery.columns,
                                    worker_ids=delivery.worker_ids,
                                )
                            )
            except BaseException as error:  # noqa: BLE001 - reported to the caller
                with lock:
                    failures.append(error)

        threads = [
            threading.Thread(target=deliver, args=(plan,), name=f"loadgen-{index}")
            for index, plan in enumerate(plans)
        ]
        start = time.perf_counter()
        for index, thread in enumerate(threads):
            if index and index % config.workers_per_burst == 0 and config.burst_gap_s:
                time.sleep(config.burst_gap_s)
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if failures:
            raise failures[0]

        return FleetReport(
            config=config,
            wall_s=wall,
            deliveries=counts["deliveries"],
            applied_deliveries=counts["applied"],
            duplicate_acks=counts["duplicates"],
            late_drops=counts["late_drops"],
            columns_applied=counts["columns"],
            votes_applied=counts["votes"],
            latencies_s=latencies,
            applied_batches=applied_batches,
        )


def ordered_session_batches(
    applied_batches: Sequence[AppliedBatch],
    session_names: Optional[Sequence[str]] = None,
) -> Dict[str, List[AppliedBatch]]:
    """Group applied batches by session in server-side application order.

    Sorting a session's batches by their acknowledged landing position
    *is* the order the server applied them; the tiling check (no gaps, no
    overlaps) means a lost or double-applied batch cannot hide.  This is
    the shared first step of :func:`replay_applied_batches` and the
    trace-replay codec in :mod:`repro.scenarios.replay`.
    """
    by_session: Dict[str, List[AppliedBatch]] = {
        name: [] for name in (session_names or [])
    }
    for batch in applied_batches:
        by_session.setdefault(batch.session, []).append(batch)
    ordered: Dict[str, List[AppliedBatch]] = {}
    for name, batches in by_session.items():
        batches = sorted(batches, key=lambda batch: batch.start)
        expected_start = 0
        for batch in batches:
            if batch.start != expected_start:
                raise ValidationError(
                    f"applied batches for session {name!r} do not tile the "
                    f"column range: expected a batch starting at column "
                    f"{expected_start}, found {batch.start} — a delivery was "
                    "lost or double-applied"
                )
            expected_start += len(batch.columns)
        ordered[name] = batches
    return ordered


def replay_batches(
    applied_batches: Sequence[AppliedBatch],
    num_items: int,
    estimators: Sequence[str],
    *,
    keep_votes: bool = False,
    session_names: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, EstimateResult]]:
    """Replay acknowledged batches through plain sessions, per session.

    The generic core of :func:`replay_applied_batches`: any collection of
    :class:`AppliedBatch` records — a fleet report's, or the serial
    dynamic-scenario drive's — replays into fresh
    :class:`~repro.streaming.StreamingSession` instances, one per
    session, in the acknowledged application order.  Returns
    ``{session: {estimator: EstimateResult}}``.
    """
    replayed: Dict[str, Dict[str, EstimateResult]] = {}
    for name, batches in ordered_session_batches(
        applied_batches, session_names
    ).items():
        session = StreamingSession(
            range(num_items), list(estimators), keep_votes=keep_votes
        )
        for batch in batches:
            session.add_columns(list(batch.columns), list(batch.worker_ids))
        replayed[name] = session.estimate()
    return replayed


def replay_applied_batches(
    report: FleetReport,
    estimators: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, EstimateResult]]:
    """Deterministically replay a fleet run through plain sessions.

    For every session the fleet touched, the applied batches are sorted
    by their acknowledged landing position — the server-side application
    order — verified to tile the column range exactly (no gaps, no
    overlaps: a lost or double-applied batch cannot hide), and replayed
    through a fresh :class:`~repro.streaming.StreamingSession`.  Returns
    ``{session: {estimator: EstimateResult}}``; the end-to-end harness
    compares this against the estimates served over HTTP, which must be
    **bit-identical**.
    """
    config = report.config
    return replay_batches(
        report.applied_batches,
        config.num_items,
        list(estimators if estimators is not None else config.estimators),
        keep_votes=config.keep_votes,
        session_names=config.session_names(),
    )
