"""Subprocess entry point for shard workers.

A separate module (not imported by ``repro.serving.__init__``) so that
``python -m repro.serving._worker_main`` executes cleanly — running
``-m`` on a module the package already imported would re-execute it and
trip runpy's double-import warning on the worker's stderr.
"""

import sys

from repro.serving.workers import worker_main

if __name__ == "__main__":
    sys.exit(worker_main())
