"""Process-per-shard serving: each shard owned by its own worker process.

:class:`~repro.streaming.serving.ShardedEstimationService` partitions
sessions across N in-process shards; this module moves each shard into
its **own worker process** behind the identical façade.  Why processes:

* **Ownership instead of locking** — exactly one process opens a shard's
  store (enforced with an advisory ``flock``,
  ``DirectorySessionStore(exclusive=True)``), so WAL appends and
  compactions for a shard can never interleave between writers.
* **Fault containment** — a crashed (even ``kill -9``-ed) worker takes
  down one shard, not the server; the parent restarts it and the
  standard snapshot + WAL replay recovers the shard bit-identically,
  because every acknowledged batch was logged before it was applied.
* **True multi-core ingestion** — shard workers are separate
  interpreters, so CPU-bound estimation and ingestion scale across
  cores instead of serialising on one GIL.

Topology::

    HTTP clients ──► HttpServingServer ──► ServingApi
                                             │
                                  ProcessShardedService (parent)
                                   │ sha256 shard_index(name) │
                            ┌──────┴──────┐           ┌───────┴─────┐
                            ▼             ▼           ▼             ▼
                        worker 0      worker 1    ...           worker N-1
                      (EstimationService over shard-0000/, flock-owned)

The parent↔worker RPC is deliberately tiny: length-prefixed JSON frames
(4-byte big-endian length + UTF-8 JSON) over the worker's stdin/stdout
pipes, reusing the wire codecs of :mod:`repro.serving.http`
(:func:`~repro.serving.http.parse_columns_payload`,
:func:`~repro.serving.http.report_to_payload`) and the same error
taxonomy (:data:`~repro.serving.http.SERVER_ERROR_TAXONOMY`), so the
pipe boundary and the HTTP boundary cannot drift apart.

Failure contract (what callers may rely on):

* **Per-request timeout** — a worker that does not answer within
  ``request_timeout`` seconds is killed and the call raises
  :class:`~repro.streaming.serving.ShardUnavailableError`; the shard
  recovers on its next request.
* **Crash before the request was delivered** — transparently restarted
  and retried once; the caller never notices.
* **Crash mid-request** — :class:`ShardUnavailableError`, because the
  parent cannot know whether the operation applied.  Retrying an ingest
  with its ``(source, sequence)`` pair is always safe: if the batch was
  applied (and therefore logged) before the crash, the retry is a
  duplicate no-op.
* **Restart budget** — each worker may be restarted at most
  ``max_restarts`` times over the service's lifetime; beyond it the
  shard stays unavailable (``ShardUnavailableError``) instead of
  crash-looping.
* **Graceful drain** — :meth:`ProcessShardedService.close` sends every
  worker a ``shutdown`` request and waits, escalating to terminate/kill
  on a deadline.  Nothing is lost either way: all state is already in
  the WAL.
"""

from __future__ import annotations

import argparse
import json
import os
import select
import signal
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import BinaryIO, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.exceptions import ConfigurationError, ReproError, ValidationError
from repro.core.base import EstimateResult
from repro.serving.http import (
    classify_error,
    error_from_kind,
    parse_columns_payload,
    report_from_payload,
    report_to_payload,
    _plain,
)
from repro.streaming.serving import (
    DEFAULT_COMPACT_BYTES,
    EstimateReport,
    EstimationService,
    IngestResult,
    ShardUnavailableError,
    reconcile_shard_manifest,
    shard_index,
)
from repro.streaming.session import SessionSnapshot
from repro.streaming.store import DirectorySessionStore

#: RPC protocol version, checked in the boot handshake.
PROTOCOL_VERSION = 1

#: Upper bound on one RPC frame; a longer length prefix means the stream
#: is desynchronised (or the peer is hostile) and the connection is torn
#: down rather than trusted.
MAX_FRAME_BYTES = 256 << 20

#: How long the parent waits for a worker's boot handshake.  Boot
#: includes WAL recovery of the shard's sessions, so it gets a more
#: generous deadline than steady-state requests.
DEFAULT_BOOT_TIMEOUT = 60.0

#: Default per-request deadline, after which the worker is presumed
#: wedged, killed, and the request fails with ShardUnavailableError.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Default restart budget per worker over the parent's lifetime.
DEFAULT_MAX_RESTARTS = 3


# --------------------------------------------------------------------- #
# framing (shared by both ends of the pipe)
# --------------------------------------------------------------------- #
def write_frame(stream: BinaryIO, payload: Mapping[str, object]) -> None:
    """Write one length-prefixed JSON frame and flush it."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    stream.write(struct.pack(">I", len(data)) + data)
    stream.flush()


def read_frame(stream: BinaryIO) -> Optional[Dict[str, object]]:
    """Read one frame from a blocking stream; ``None`` on clean EOF."""
    header = stream.read(4)
    if len(header) < 4:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise ConfigurationError(
            f"oversized RPC frame ({length} bytes): stream desynchronised"
        )
    data = stream.read(length)
    if len(data) < length:
        return None
    return json.loads(data.decode("utf-8"))


# --------------------------------------------------------------------- #
# the worker process (python -m repro.serving.workers)
# --------------------------------------------------------------------- #
def _ok(result: object) -> Dict[str, object]:
    return {"ok": True, "result": result}


def _err(error: BaseException) -> Dict[str, object]:
    mapped = classify_error(error) if isinstance(error, ReproError) else None
    status, kind = mapped if mapped is not None else (500, "internal")
    return {
        "ok": False,
        "status": status,
        "kind": kind,
        "error": str(error) or repr(error),
    }


def _dispatch(service: EstimationService, request: Mapping[str, object]) -> object:
    """Apply one RPC request to the shard's service; returns the result.

    The wire shapes mirror the HTTP API: ingest columns arrive in the
    :func:`~repro.serving.http.parse_columns_payload` shape and estimate
    reports leave as :func:`~repro.serving.http.report_to_payload`
    objects, so both boundaries decode with the same codecs.
    """
    op = request.get("op")
    name = request.get("name")
    if op == "ping":
        return {"pong": True}
    if op == "create_session":
        service.create_session(
            str(name),
            [int(item) for item in request["item_ids"]],
            request.get("estimators"),
            keep_votes=bool(request.get("keep_votes", True)),
        )
        return {"session": name}
    if op == "ingest":
        columns, workers = parse_columns_payload(request.get("columns"))
        result = service.ingest(
            str(name),
            columns,
            worker_ids=workers,
            source=request.get("source"),
            sequence=request.get("sequence"),
        )
        return {
            "session": result.session,
            "applied": result.applied,
            "duplicate": result.duplicate,
            "num_columns": result.num_columns,
            "total_votes": result.total_votes,
        }
    if op == "estimate_report":
        return report_to_payload(service.estimate_report(str(name)))
    if op == "progress":
        return _plain(service.progress(str(name)))
    if op == "snapshot":
        service.snapshot(str(name))
        return {"session": name, "snapshotted": True}
    if op == "compact":
        service.compact(str(name))
        return {"session": name, "compacted": True}
    if op == "restore":
        return _plain(service.restore(str(name), None, request.get("estimators")))
    if op == "drop":
        service.drop(str(name))
        return {"session": name, "dropped": True}
    if op == "evict":
        victim = service.evict(None if name is None else str(name))
        return {"evicted": victim}
    if op == "sessions":
        return {"sessions": service.sessions()}
    if op == "active_sessions":
        return {"sessions": service.active_sessions()}
    if op == "stats":
        return {
            "estimates_served": service.estimates_served,
            "estimate_cache_hits": service.estimate_cache_hits,
            "sessions_restored": service.sessions_restored,
            "sessions_evicted": service.sessions_evicted,
        }
    if op == "debug_sleep":
        # Test hook for the parent's timeout path: wedge this worker for
        # a caller-chosen interval.
        time.sleep(float(request.get("seconds", 0.0)))
        return {"slept": float(request.get("seconds", 0.0))}
    raise ValidationError(f"unknown worker op {op!r}")


def serve_worker(
    service: EstimationService,
    shard: int,
    stdin: BinaryIO,
    stdout: BinaryIO,
) -> int:
    """The worker request loop: frames in, dispatch, frames out.

    Returns the process exit code.  EOF on stdin means the parent went
    away — treated exactly like a ``shutdown`` request, since every
    acknowledged mutation is already in the shard's WAL.
    """
    write_frame(
        stdout,
        _ok(
            {
                "hello": {
                    "pid": os.getpid(),
                    "shard": shard,
                    "protocol": PROTOCOL_VERSION,
                    "sessions": len(service.sessions()),
                }
            }
        ),
    )
    while True:
        request = read_frame(stdin)
        if request is None:
            return 0
        if request.get("op") == "shutdown":
            write_frame(stdout, _ok({"bye": True}))
            return 0
        try:
            reply = _ok(_dispatch(service, request))
        except Exception as error:  # structured, never a traceback
            reply = _err(error)
        write_frame(stdout, reply)


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.serving._worker_main``.

    Opens the shard store with **exclusive ownership** (another live
    owner is a boot failure, reported as a structured handshake error),
    recovers its sessions lazily through the normal service path, then
    serves RPC frames until shutdown/EOF.
    """
    parser = argparse.ArgumentParser(
        prog="repro-shard-worker",
        description="One shard of a process-sharded estimation service.",
    )
    parser.add_argument("--shard-dir", required=True, help="this shard's store directory")
    parser.add_argument("--shard-index", type=int, required=True)
    parser.add_argument("--max-active", type=int, default=None)
    parser.add_argument(
        "--compact-after-bytes", type=int, default=DEFAULT_COMPACT_BYTES
    )
    parser.add_argument("--sync", action="store_true")
    args = parser.parse_args(argv)

    # The RPC stream must stay clean: keep a private handle on the real
    # stdout pipe and point fd 1 at stderr, so any stray print() from
    # library code lands in the parent's log instead of desynchronising
    # the framing.  SIGINT is ignored — a Ctrl-C on the foreground CLI
    # reaches the whole process group, and the parent must stay in
    # charge of draining its workers.
    rpc_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    try:
        store = DirectorySessionStore(
            args.shard_dir, sync=args.sync, exclusive=True
        )
        service = EstimationService(
            store,
            max_active=args.max_active,
            wal=True,
            compact_after_bytes=args.compact_after_bytes or None,
        )
    except Exception as error:
        write_frame(rpc_out, _err(error))
        return 1
    return serve_worker(service, args.shard_index, sys.stdin.buffer, rpc_out)


# --------------------------------------------------------------------- #
# the parent-side worker handle
# --------------------------------------------------------------------- #
class _WorkerDied(Exception):
    """Internal: EOF from the worker pipe mid-read."""


class _WorkerTimeout(Exception):
    """Internal: the per-request deadline passed without a full reply."""


class _ShardWorker:
    """The parent's handle on one shard worker process.

    One request is in flight per worker at a time (``self.lock``), which
    is what makes the framed pipe a sufficient transport: replies cannot
    interleave.  Cross-shard parallelism comes from having N workers,
    not from pipelining within one.
    """

    def __init__(
        self,
        index: int,
        shard_dir: Path,
        *,
        max_active: Optional[int],
        compact_after_bytes: Optional[int],
        sync: bool,
        request_timeout: float,
        boot_timeout: float,
        max_restarts: int,
    ) -> None:
        self.index = index
        self.shard_dir = shard_dir
        self.max_active = max_active
        self.compact_after_bytes = compact_after_bytes
        self.sync = sync
        self.request_timeout = float(request_timeout)
        self.boot_timeout = float(boot_timeout)
        self.max_restarts = int(max_restarts)
        self.restarts = 0
        self.lock = threading.Lock()
        self.process: Optional[subprocess.Popen] = None
        #: whether a worker was ever spawned: every spawn after the first
        #: is a restart and must be charged against the budget, even when
        #: the corpse has already been reaped away.
        self._ever_spawned = False

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def _command(self) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro.serving._worker_main",
            "--shard-dir",
            str(self.shard_dir),
            "--shard-index",
            str(self.index),
        ]
        if self.max_active is not None:
            command += ["--max-active", str(self.max_active)]
        command += [
            "--compact-after-bytes",
            str(self.compact_after_bytes or 0),
        ]
        if self.sync:
            command.append("--sync")
        return command

    def _spawn(self) -> None:
        import repro

        env = dict(os.environ)
        # The worker must import the same repro tree as the parent,
        # however the parent itself was launched.
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        self._ever_spawned = True
        self.process = subprocess.Popen(
            self._command(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker diagnostics flow to the parent's stderr
            env=env,
        )
        try:
            reply = self._read_frame(time.monotonic() + self.boot_timeout)
        except (_WorkerDied, _WorkerTimeout) as error:
            self._kill()
            raise ShardUnavailableError(
                f"shard {self.index} worker failed to boot: {error!r}"
            ) from None
        if not reply.get("ok"):
            self._kill()
            raise error_from_kind(
                int(reply.get("status", 500)),
                str(reply.get("error", "worker boot failed")),
                str(reply.get("kind", "internal")),
            )

    def _alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def _reap(self) -> None:
        if self.process is not None:
            try:
                self.process.stdin.close()
            except Exception:
                pass
            try:
                self.process.stdout.close()
            except Exception:
                pass
            self.process.wait()
            self.process = None

    def _kill(self) -> None:
        if self.process is not None:
            if self.process.poll() is None:
                self.process.kill()
            self._reap()

    def _ensure_started(self) -> None:
        """Spawn (or lazily respawn) the worker, charging the budget.

        The first spawn is free; every spawn after a death costs one
        restart.  A worker beyond its budget stays down — the shard
        reports :class:`ShardUnavailableError` rather than crash-looping
        over a poisoned store.
        """
        if self._alive():
            return
        if self.process is not None:  # a corpse awaiting reaping
            self._reap()
        if self._ever_spawned:  # this start is a restart
            if self.restarts >= self.max_restarts:
                raise ShardUnavailableError(
                    f"shard {self.index} worker exceeded its restart budget "
                    f"({self.max_restarts}); the shard stays unavailable "
                    "until the service is reopened"
                )
            self.restarts += 1
        self._spawn()

    def note_external_death(self) -> None:
        """Observe (outside a request) that the worker has died."""
        with self.lock:
            if self.process is not None and self.process.poll() is not None:
                self._reap()

    # -------------------------------------------------------------- #
    # framed I/O with deadline
    # -------------------------------------------------------------- #
    def _send(self, payload: Mapping[str, object]) -> None:
        write_frame(self.process.stdin, payload)

    def _read_exact(self, count: int, deadline: float) -> bytes:
        descriptor = self.process.stdout.fileno()
        chunks = b""
        while len(chunks) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerTimeout(f"no reply within deadline")
            ready, _, _ = select.select([descriptor], [], [], remaining)
            if not ready:
                continue
            chunk = os.read(descriptor, count - len(chunks))
            if not chunk:
                raise _WorkerDied("EOF from worker")
            chunks += chunk
        return chunks

    def _read_frame(self, deadline: float) -> Dict[str, object]:
        (length,) = struct.unpack(">I", self._read_exact(4, deadline))
        if length > MAX_FRAME_BYTES:
            raise _WorkerDied(f"oversized frame ({length} bytes)")
        return json.loads(self._read_exact(length, deadline).decode("utf-8"))

    # -------------------------------------------------------------- #
    # the request path
    # -------------------------------------------------------------- #
    def request(
        self,
        op: str,
        params: Optional[Mapping[str, object]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> object:
        """One RPC round-trip, with restart/timeout/crash handling.

        A death detected *before* the worker received the request is
        retried transparently after a restart (the operation cannot have
        applied).  A death or deadline *after* the request was delivered
        raises :class:`ShardUnavailableError` — whether it applied is
        unknowable here, and the ``(source, sequence)`` idempotency pair
        exists precisely so the caller's retry is safe either way.
        """
        frame = {"op": op}
        if params:
            frame.update(params)
        budget = self.request_timeout if timeout is None else float(timeout)
        with self.lock:
            for attempt in (1, 2):
                self._ensure_started()
                try:
                    self._send(frame)
                except (BrokenPipeError, OSError):
                    # The pipe's read end is gone: the worker died before
                    # this request could reach it.  Restart and retry once.
                    self._reap()
                    if attempt == 2:
                        raise ShardUnavailableError(
                            f"shard {self.index} worker died before accepting "
                            f"{op!r} twice in a row"
                        ) from None
                    continue
                try:
                    reply = self._read_frame(time.monotonic() + budget)
                except _WorkerDied:
                    self._reap()
                    raise ShardUnavailableError(
                        f"shard {self.index} worker died while handling {op!r}; "
                        "it will be restarted and recovered from its WAL on "
                        "the next request (retrying with the same "
                        "source/sequence is safe)"
                    ) from None
                except _WorkerTimeout:
                    self._kill()
                    raise ShardUnavailableError(
                        f"shard {self.index} worker exceeded the {budget:.1f}s "
                        f"request deadline on {op!r} and was killed; it will "
                        "be restarted on the next request"
                    ) from None
                break
        if reply.get("ok"):
            return reply.get("result")
        raise error_from_kind(
            int(reply.get("status", 500)),
            str(reply.get("error", "worker error")),
            str(reply.get("kind", "internal")),
        )

    def close(self, timeout: float = 5.0) -> None:
        """Drain this worker: polite shutdown, then terminate, then kill."""
        with self.lock:
            if self.process is None:
                return
            if self.process.poll() is None:
                try:
                    self._send({"op": "shutdown"})
                except Exception:
                    pass
                try:
                    self.process.wait(timeout)
                except subprocess.TimeoutExpired:
                    self.process.terminate()
                    try:
                        self.process.wait(2.0)
                    except subprocess.TimeoutExpired:
                        self.process.kill()
            self._reap()


# --------------------------------------------------------------------- #
# the parent façade
# --------------------------------------------------------------------- #
class ProcessShardedService:
    """The :class:`ShardedEstimationService` façade over worker processes.

    Same routing (sha256 :func:`~repro.streaming.serving.shard_index`),
    same on-disk layout (``<root>/shard-<i>/`` + ``shards.json``), same
    manifest rules — a root written by the in-process sharded service
    reopens under workers and vice versa.  What changes is *where* each
    shard runs: in its own interpreter, which exclusively owns its store.

    Parameters
    ----------
    root:
        The sharded store root.  Required — worker recovery is built on
        the durable snapshot+WAL layout, so a memory-backed process
        shard would turn every crash into data loss.
    num_shards:
        Worker count.  ``None`` reads the root's manifest (a fresh root
        defaults to 1); a mismatch with an existing manifest raises.
    max_active / compact_after_bytes / sync:
        Forwarded to each worker's :class:`EstimationService` and store.
    request_timeout / boot_timeout:
        Per-request and per-boot deadlines (seconds) before a worker is
        declared unavailable.
    max_restarts:
        Crash-restart budget per worker over this service's lifetime.

    Use as a context manager (or call :meth:`close`) so workers drain
    instead of being orphaned.

    Divergences from the in-process façade, all forced by the process
    boundary: :meth:`snapshot` / :meth:`compact` return a confirmation
    mapping instead of the :class:`SessionSnapshot` object;
    :meth:`restore` only restores from the shard's own store (a foreign
    snapshot object cannot cross the pipe — save it into the store
    first); ``estimators`` must be registry names, not estimator
    objects.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        num_shards: Optional[int] = None,
        max_active: Optional[int] = None,
        compact_after_bytes: Optional[int] = DEFAULT_COMPACT_BYTES,
        sync: bool = False,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        boot_timeout: float = DEFAULT_BOOT_TIMEOUT,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
    ) -> None:
        self.root = Path(root)
        self._num_shards = reconcile_shard_manifest(self.root, num_shards)
        self._closed = False
        self._workers: Tuple[_ShardWorker, ...] = tuple(
            _ShardWorker(
                index,
                self.root / f"shard-{index:04d}",
                max_active=max_active,
                compact_after_bytes=compact_after_bytes,
                sync=sync,
                request_timeout=request_timeout,
                boot_timeout=boot_timeout,
                max_restarts=max_restarts,
            )
            for index in range(self._num_shards)
        )
        # Boot every worker up front: configuration errors (a lock held
        # by another owner, a corrupt store) surface here, not on the
        # first unlucky request.
        try:
            for worker in self._workers:
                with worker.lock:
                    worker._ensure_started()
        except Exception:
            self.close()
            raise

    # -------------------------------------------------------------- #
    # topology
    # -------------------------------------------------------------- #
    @property
    def num_shards(self) -> int:
        """The shard (= worker) count recorded for this root."""
        return self._num_shards

    @property
    def wal_enabled(self) -> bool:
        """Always true: worker shards require the write-ahead log."""
        return True

    def shard_of(self, name: str) -> int:
        """The shard index owning session ``name``."""
        return shard_index(name, self._num_shards)

    def worker_pids(self) -> List[Optional[int]]:
        """Current worker PIDs by shard index (``None`` for a dead one)."""
        return [
            worker.process.pid if worker._alive() else None
            for worker in self._workers
        ]

    def _worker(self, name: str) -> _ShardWorker:
        if self._closed:
            raise ConfigurationError(
                "ProcessShardedService is closed; reopen it to serve again"
            )
        return self._workers[self.shard_of(name)]

    # -------------------------------------------------------------- #
    # the EstimationService façade, routed by session-name hash
    # -------------------------------------------------------------- #
    def create_session(
        self,
        name: str,
        item_ids: Sequence[int],
        estimators: Optional[Sequence[str]] = None,
        *,
        keep_votes: bool = True,
    ) -> str:
        """Create the session on its owning shard worker; returns the name."""
        self._worker(name).request(
            "create_session",
            {
                "name": name,
                "item_ids": [int(item) for item in item_ids],
                "estimators": self._estimator_names(estimators),
                "keep_votes": bool(keep_votes),
            },
        )
        return name

    def ingest(
        self,
        name: str,
        columns: Sequence[Mapping[int, int]],
        *,
        worker_ids: Optional[Sequence[Optional[int]]] = None,
        source: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> IngestResult:
        """Ingest into the owning shard worker (same contract, same wire
        shape as the HTTP batch endpoint)."""
        if worker_ids is not None and len(worker_ids) != len(columns):
            raise ValidationError(
                f"worker_ids length {len(worker_ids)} does not match "
                f"{len(columns)} column(s)"
            )
        wire_columns: List[Dict[str, object]] = []
        for index, votes in enumerate(columns):
            entry: Dict[str, object] = {
                "votes": {str(item): int(vote) for item, vote in votes.items()}
            }
            if worker_ids is not None and worker_ids[index] is not None:
                entry["worker"] = int(worker_ids[index])
            wire_columns.append(entry)
        body = self._worker(name).request(
            "ingest",
            {
                "name": name,
                "columns": wire_columns,
                "source": source,
                "sequence": None if sequence is None else int(sequence),
            },
        )
        return IngestResult(
            session=str(body["session"]),
            applied=int(body["applied"]),
            duplicate=bool(body["duplicate"]),
            num_columns=int(body["num_columns"]),
            total_votes=int(body["total_votes"]),
        )

    def estimates(self, name: str) -> Dict[str, EstimateResult]:
        """Current (cached) estimates from the owning shard worker."""
        return self.estimate_report(name).results

    def estimate_report(self, name: str) -> EstimateReport:
        """Versioned estimate read from the owning shard worker."""
        return report_from_payload(
            self._worker(name).request("estimate_report", {"name": name})
        )

    def progress(self, name: str) -> Dict[str, float]:
        """The named session's stream-progress summary."""
        payload = self._worker(name).request("progress", {"name": name})
        return {str(key): float(value) for key, value in payload.items()}

    def snapshot(self, name: str) -> Dict[str, object]:
        """Snapshot (compact) the session on its shard; returns a receipt."""
        return self._worker(name).request("snapshot", {"name": name})

    def compact(self, name: str) -> Dict[str, object]:
        """Fold the session's log into a snapshot on its shard worker."""
        return self._worker(name).request("compact", {"name": name})

    def restore(
        self,
        name: str,
        snapshot: Optional[SessionSnapshot] = None,
        estimators: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Re-activate ``name`` from its shard's store (store copies only)."""
        if snapshot is not None:
            raise ValidationError(
                "ProcessShardedService.restore only restores from the shard's "
                "own store; save the snapshot into the store first"
            )
        payload = self._worker(name).request(
            "restore",
            {"name": name, "estimators": self._estimator_names(estimators)},
        )
        return {str(key): float(value) for key, value in payload.items()}

    def drop(self, name: str) -> None:
        """Forget the session on its owning shard worker."""
        self._worker(name).request("drop", {"name": name})

    def evict(self, name: Optional[str] = None) -> Optional[str]:
        """Park a live session; ``None`` asks each shard for its LRU victim."""
        if name is not None:
            return self._worker(name).request("evict", {"name": name})["evicted"]
        for worker in self._workers:
            victim = worker.request("evict", {"name": None})["evicted"]
            if victim is not None:
                return victim
        return None

    def sessions(self) -> List[str]:
        """Every known session name across all shard workers, sorted."""
        names: List[str] = []
        for worker in self._workers:
            names.extend(worker.request("sessions")["sessions"])
        return sorted(set(names))

    def active_sessions(self) -> List[str]:
        """Live in-memory session names across shard workers (shard order)."""
        names: List[str] = []
        for worker in self._workers:
            names.extend(worker.request("active_sessions")["sessions"])
        return names

    # -------------------------------------------------------------- #
    # aggregated serving counters (live workers only: a restarted
    # worker restarts its in-memory counters, like any process would)
    # -------------------------------------------------------------- #
    def _stat(self, counter: str) -> int:
        total = 0
        for worker in self._workers:
            total += int(worker.request("stats")[counter])
        return total

    @property
    def estimates_served(self) -> int:
        return self._stat("estimates_served")

    @property
    def estimate_cache_hits(self) -> int:
        return self._stat("estimate_cache_hits")

    @property
    def sessions_restored(self) -> int:
        return self._stat("sessions_restored")

    @property
    def sessions_evicted(self) -> int:
        return self._stat("sessions_evicted")

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    def close(self, timeout: float = 5.0) -> None:
        """Drain every worker (shutdown → terminate → kill).  Idempotent."""
        self._closed = True
        for worker in self._workers:
            worker.close(timeout)

    def __enter__(self) -> "ProcessShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _estimator_names(
        estimators: Optional[Sequence[object]],
    ) -> Optional[List[str]]:
        if estimators is None:
            return None
        names = []
        for estimator in estimators:
            if not isinstance(estimator, str):
                raise ValidationError(
                    "process-sharded services accept estimator registry "
                    f"names only (got {type(estimator).__name__}); estimator "
                    "objects cannot cross the worker process boundary"
                )
            names.append(estimator)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ProcessShardedService(num_shards={self._num_shards}, "
            f"root={str(self.root)!r}, closed={self._closed})"
        )


