"""``repro.serving`` — the multi-tenant serving layer, by its public name.

This package is the stable import surface for the serving stack; the
in-process façade lives next to the session machinery it builds on
(:mod:`repro.streaming.serving` and :mod:`repro.streaming.store`), while
the network boundary is native to this package:

* :mod:`repro.serving.http` — a JSON HTTP API over an
  :class:`EstimationService` (or :class:`ShardedEstimationService`):
  session CRUD, batched idempotent ingestion, cached estimate reads,
  snapshot/compact, with structured error mapping (unknown session →
  404, validation → 400, store corruption → 500).
* :mod:`repro.serving.workers` — process-per-shard serving:
  :class:`ProcessShardedService` presents the same façade but runs each
  shard in its own worker process that exclusively owns its shard store
  (``repro serve --workers N``), with per-request timeouts, bounded
  crash-restart-and-recover, and graceful drain.
* :mod:`repro.serving.loadgen` — the synthetic worker fleet that hammers
  that API end to end: bursty arrivals, per-worker accuracy/latency,
  deliberate duplicate and reordered deliveries, and a deterministic
  replay check proving the served estimates are bit-identical to a
  direct :class:`~repro.streaming.StreamingSession` replay.

Quick use::

    from repro.serving import DirectorySessionStore, EstimationService

    service = EstimationService(DirectorySessionStore("sessions"), max_active=32)
    service.create_session("tenant-a", item_ids=range(100), estimators=["chao92"])
    service.ingest("tenant-a", [{0: 1, 3: 0}], source="loader", sequence=1)
    print(service.estimates("tenant-a")["chao92"].remaining)

Or over the wire (``repro serve`` runs the same server from the CLI)::

    from repro.serving import EstimationService, HttpServingServer, SessionClient

    with HttpServingServer(EstimationService()) as server:
        client = SessionClient(server.url)
        client.create_session("tenant-a", item_ids=range(100), estimators=["chao92"])
        client.ingest("tenant-a", [{0: 1, 3: 0}], source="loader", sequence=1)
        print(client.estimates("tenant-a")["chao92"].remaining)

See ``docs/http.md`` for the wire API and the load harness,
``docs/serving.md`` for the full in-process tour (idempotent ingestion,
cached estimates, LRU eviction, bit-identical snapshot/restore) and
``docs/persistence.md`` for the log-structured store underneath it: the
per-session write-ahead log, size-triggered compaction, and the
hash-sharded :class:`ShardedEstimationService` front.
"""

from repro.serving.http import (
    CLIENT_ERROR_TYPES,
    SERVER_ERROR_TAXONOMY,
    HttpApiError,
    HttpConflictError,
    HttpServingServer,
    HttpShardUnavailableError,
    HttpStoreCorruptionError,
    HttpUnknownSessionError,
    HttpValidationError,
    ServingApi,
    SessionClient,
    classify_error,
    error_from_kind,
    parse_columns_payload,
    result_from_payload,
    result_to_payload,
)
from repro.serving.loadgen import (
    AppliedBatch,
    Delivery,
    FleetConfig,
    FleetReport,
    LoadGenerator,
    latency_percentiles,
    ordered_session_batches,
    replay_applied_batches,
    replay_batches,
)
from repro.serving.workers import ProcessShardedService
from repro.streaming.serving import (
    DEFAULT_COMPACT_BYTES,
    EstimateReport,
    EstimationService,
    IngestResult,
    ShardedEstimationService,
    ShardUnavailableError,
    replay_batch_record,
    shard_index,
)
from repro.streaming.session import (
    SNAPSHOT_FORMAT_VERSION,
    SessionSnapshot,
    read_snapshot,
    write_snapshot,
)
from repro.streaming.store import (
    DirectorySessionStore,
    MemorySessionStore,
    SessionStore,
    StoreCorruptionError,
    UnknownSessionError,
    check_session_name,
)
from repro.streaming.wal import (
    WAL_FORMAT_VERSION,
    BatchRecord,
    CreateRecord,
    SessionLog,
)

__all__ = [
    "EstimationService",
    "ShardedEstimationService",
    "ProcessShardedService",
    "ShardUnavailableError",
    "IngestResult",
    "EstimateReport",
    "SessionSnapshot",
    "SNAPSHOT_FORMAT_VERSION",
    "read_snapshot",
    "write_snapshot",
    "SessionStore",
    "MemorySessionStore",
    "DirectorySessionStore",
    "UnknownSessionError",
    "StoreCorruptionError",
    "check_session_name",
    "SessionLog",
    "CreateRecord",
    "BatchRecord",
    "WAL_FORMAT_VERSION",
    "DEFAULT_COMPACT_BYTES",
    "replay_batch_record",
    "shard_index",
    # the HTTP boundary (repro.serving.http)
    "ServingApi",
    "HttpServingServer",
    "SessionClient",
    "HttpApiError",
    "HttpUnknownSessionError",
    "HttpValidationError",
    "HttpConflictError",
    "HttpStoreCorruptionError",
    "HttpShardUnavailableError",
    "SERVER_ERROR_TAXONOMY",
    "CLIENT_ERROR_TYPES",
    "classify_error",
    "error_from_kind",
    "parse_columns_payload",
    "result_to_payload",
    "result_from_payload",
    # the synthetic-crowd load harness (repro.serving.loadgen)
    "AppliedBatch",
    "Delivery",
    "FleetConfig",
    "FleetReport",
    "LoadGenerator",
    "latency_percentiles",
    "ordered_session_batches",
    "replay_applied_batches",
    "replay_batches",
]
