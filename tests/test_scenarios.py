"""Unit tests for the scenario subsystem: specs, runner, golden helpers."""

from __future__ import annotations

import json

import pytest

from repro.common.exceptions import ConfigurationError
from repro.crowd.worker import (
    CliqueRegime,
    DriftRegime,
    HomogeneousRegime,
    MixtureRegime,
    StratifiedRegime,
)
from repro.scenarios import (
    AssignmentSpec,
    DatasetSpec,
    RegimeSpec,
    Scenario,
    ScenarioRunner,
    available_scenarios,
    get_scenario,
    read_golden,
    record_scenarios,
    register_scenario,
    unregister_scenario,
    write_golden,
)
from repro.scenarios.golden import check_scenario


class TestDatasetSpec:
    def test_synthetic_build_is_deterministic_per_seed(self):
        spec = DatasetSpec("synthetic", {"num_items": 50, "num_errors": 10})
        a, b = spec.build(3), spec.build(3)
        assert a.dirty_ids == b.dirty_ids
        assert len(a) == 50 and a.num_dirty == 10
        assert spec.build(4).dirty_ids != a.dirty_ids

    def test_address_build(self):
        spec = DatasetSpec("address", {"num_records": 60, "num_errors": 6})
        dataset = spec.build(1)
        assert len(dataset) == 60 and dataset.num_dirty == 6

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dataset kind"):
            DatasetSpec("csv-upload").build(0)

    def test_unknown_params_rejected_with_remediation(self):
        with pytest.raises(ConfigurationError, match="num_item"):
            DatasetSpec("synthetic", {"num_item": 50}).build(0)
        with pytest.raises(ConfigurationError, match="num_record"):
            DatasetSpec("address", {"num_record": 50}).build(0)

    def test_per_dataset_seed_param_rejected(self):
        """Dataset randomness derives from the scenario root seed; a
        params-level 'seed' would be a silently ignored knob."""
        with pytest.raises(ConfigurationError, match="seed"):
            DatasetSpec("synthetic", {"num_items": 50, "seed": 42}).build(0)

    def test_round_trip(self):
        spec = DatasetSpec("synthetic", {"num_items": 50, "num_errors": 10})
        assert DatasetSpec.from_dict(spec.to_dict()) == spec


class TestRegimeSpec:
    def test_each_kind_builds_its_regime_class(self):
        profile = {"false_negative_rate": 0.1, "false_positive_rate": 0.02}
        cases = {
            "homogeneous": ({"profile": profile}, HomogeneousRegime),
            "mixture": ({"components": [[1.0, profile]]}, MixtureRegime),
            "drift": ({"start": profile, "end": profile, "horizon": 5}, DriftRegime),
            "cliques": ({"profile": profile, "colluder_profile": profile}, CliqueRegime),
            "stratified": (
                {"profile": profile, "stratum_profiles": {"0": profile}},
                StratifiedRegime,
            ),
        }
        for kind, (params, regime_cls) in cases.items():
            regime = RegimeSpec(kind, params, completion_rate=0.9).build()
            assert isinstance(regime, regime_cls)
            assert regime.completion_rate == 0.9

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown regime kind"):
            RegimeSpec("telepathic").build()

    def test_unknown_params_rejected(self):
        with pytest.raises(ConfigurationError, match="colluder_profil"):
            RegimeSpec("cliques", {"colluder_profil": {}}).build()

    def test_omitted_params_fall_back_to_regime_defaults(self):
        """An unspecified colluder_profile keeps the class default (not oracle)."""
        regime = RegimeSpec("cliques", {"num_cliques": 3}).build()
        assert regime.num_cliques == 3
        assert regime.colluder_profile == CliqueRegime().colluder_profile
        assert regime.colluder_profile.false_negative_rate > 0.0

    def test_typoed_profile_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="fn_rate"):
            RegimeSpec("homogeneous", {"profile": {"fn_rate": 0.3}}).build()

    def test_round_trip(self):
        spec = RegimeSpec(
            "mixture",
            {"components": [[0.6, {"false_negative_rate": 0.1}], [0.4, {}]]},
            completion_rate=0.8,
        )
        assert RegimeSpec.from_dict(spec.to_dict()) == spec


class TestAssignmentSpec:
    def test_uniform_means_no_builder(self):
        assert AssignmentSpec("uniform").builder() is None

    def test_skewed_builder_produces_assigner(self):
        build = AssignmentSpec("skewed", {"exponent": 1.5}).builder()
        assigner = build(list(range(30)), 5, 0)
        task = assigner.next_task()
        assert len(task.item_ids) == 5
        assert assigner.exponent == 1.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown assignment kind"):
            AssignmentSpec("round-robin").builder()

    def test_unknown_params_rejected_for_both_kinds(self):
        with pytest.raises(ConfigurationError, match="exponant"):
            AssignmentSpec("skewed", {"exponant": 3.0}).builder()
        with pytest.raises(ConfigurationError, match="exponent"):
            AssignmentSpec("uniform", {"exponent": 2.0}).builder()


class TestScenarioSpec:
    def test_full_round_trip_through_json(self):
        scenario = get_scenario("colluding-cliques")
        rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert rebuilt == scenario

    def test_validation_rejects_degenerate_specs(self):
        with pytest.raises(ConfigurationError, match="non-empty name"):
            Scenario(name="", description="x")
        with pytest.raises(ConfigurationError, match="no estimators"):
            Scenario(name="x", description="x", estimators=())

    def test_from_dict_rejects_unknown_keys(self):
        """A typoed top-level key fails loudly instead of taking defaults."""
        with pytest.raises(ConfigurationError, match="num_task"):
            Scenario.from_dict({"name": "x", "description": "d", "num_task": 40})

    def test_minimal_dict_builds_like_minimal_constructor(self):
        """from_dict with only name/description uses the dataclass defaults."""
        from_dict = Scenario.from_dict({"name": "minimal", "description": "d"})
        direct = Scenario(name="minimal", description="d")
        assert from_dict == direct
        assert from_dict.estimators == direct.estimators

    def test_checkpoints_are_even_and_bounded(self):
        scenario = get_scenario("baseline-uniform")
        points = scenario.checkpoints(80)
        assert len(points) == scenario.num_checkpoints
        assert points[-1] == 80
        assert points == sorted(set(points))
        assert scenario.checkpoints(3) == [1, 2, 3]


class TestScenarioRegistry:
    def test_duplicate_registration_rejected_with_remedy(self):
        scenario = get_scenario("fp-heavy")
        with pytest.raises(ConfigurationError, match="overwrite=True"):
            register_scenario(scenario)
        register_scenario(scenario, overwrite=True)  # no-op replace is fine

    def test_unknown_scenario_error_lists_available(self):
        with pytest.raises(ConfigurationError, match="baseline-uniform"):
            get_scenario("not-a-scenario")

    def test_register_and_unregister_custom_scenario(self):
        scenario = Scenario(
            name="custom-test-scenario",
            description="registry round-trip",
            dataset=DatasetSpec("synthetic", {"num_items": 30, "num_errors": 5}),
            num_tasks=10,
        )
        try:
            register_scenario(scenario)
            assert "custom-test-scenario" in available_scenarios()
            assert get_scenario("CUSTOM-test-scenario") == scenario
        finally:
            unregister_scenario("custom-test-scenario")
        assert "custom-test-scenario" not in available_scenarios()


class TestScenarioRunner:
    def test_seed_override_changes_the_trajectory(self):
        runner = ScenarioRunner()
        scenario = get_scenario("baseline-uniform")
        default = runner.run(scenario)
        same = runner.run(scenario, seed=scenario.seed)
        other = runner.run(scenario, seed=scenario.seed + 1)
        assert default.canonical_json() == same.canonical_json()
        assert default.canonical_json() != other.canonical_json()
        assert other.seed == scenario.seed + 1

    def test_trajectory_payload_shape(self):
        trajectory = ScenarioRunner().run(get_scenario("perfect-crowd"))
        payload = trajectory.payload()
        assert payload["dataset"]["true_errors"] == trajectory.true_errors
        assert set(payload["trajectories"]) == set(
            get_scenario("perfect-crowd").estimators
        )
        # Canonical text is stable JSON: parse -> dump round-trips.
        text = trajectory.canonical_json()
        assert json.dumps(json.loads(text), sort_keys=True, indent=2) == text

    def test_perfect_crowd_converges_to_truth(self):
        trajectory = ScenarioRunner().run(get_scenario("perfect-crowd"))
        assert trajectory.estimates["voting"][-1] == float(trajectory.true_errors)

    def test_aliased_estimators_rejected_up_front(self):
        """Registry aliases resolving to the same instance name can't be
        evaluated side by side — the runner refuses instead of silently
        collapsing two series into one."""
        from repro.core.descriptive import VotingEstimator
        from repro.core.registry import register_estimator, unregister_estimator

        register_estimator("voting-alias-test", VotingEstimator, overwrite=True)
        scenario = Scenario(
            name="alias-collision",
            description="two registry names, one instance name",
            dataset=DatasetSpec("synthetic", {"num_items": 30, "num_errors": 5}),
            estimators=("voting", "voting-alias-test"),
            num_tasks=10,
        )
        try:
            with pytest.raises(ConfigurationError, match="duplicate instance names"):
                ScenarioRunner().run(scenario)
        finally:
            unregister_estimator("voting-alias-test")

    def test_strict_runner_flags_broken_equivalence(self, monkeypatch):
        """A state-estimator that diverges from its batch path is caught."""
        from repro.core.descriptive import VotingEstimator

        runner = ScenarioRunner(strict=True)
        original = VotingEstimator.estimate

        def broken_estimate(self, matrix, upto=None):
            result = original(self, matrix, upto)
            return type(result)(estimate=result.estimate + 1.0, observed=result.observed)

        monkeypatch.setattr(VotingEstimator, "estimate", broken_estimate)
        with pytest.raises(ConfigurationError, match="modes disagree"):
            runner.run(get_scenario("fp-heavy"))


class TestGoldenHelpers:
    def test_write_read_check_round_trip_in_tmpdir(self, tmp_path):
        runner = ScenarioRunner()
        trajectory = runner.run(get_scenario("fn-heavy"))
        path = write_golden(trajectory, tmp_path)
        assert path == tmp_path / "fn-heavy.json"
        assert read_golden("fn-heavy", tmp_path) == trajectory.canonical_json() + "\n"
        ok, diff = check_scenario("fn-heavy", directory=tmp_path, runner=runner)
        assert ok and diff == ""

    def test_check_reports_drift_with_a_diff(self, tmp_path):
        runner = ScenarioRunner()
        trajectory = runner.run(get_scenario("fn-heavy"))
        text = trajectory.canonical_json().replace(
            '"format_version"', '"stale": true, "format_version"'
        )
        (tmp_path / "fn-heavy.json").write_text(text + "\n", encoding="utf-8")
        ok, diff = check_scenario("fn-heavy", directory=tmp_path, runner=runner)
        assert not ok
        assert "stale" in diff and "---" in diff

    def test_missing_golden_names_the_record_command(self, tmp_path):
        with pytest.raises(ConfigurationError, match="record"):
            read_golden("fn-heavy", tmp_path)

    def test_record_scenarios_writes_selected_names(self, tmp_path):
        paths = record_scenarios(["fp-heavy", "fn-heavy"], directory=tmp_path)
        assert sorted(p.name for p in paths) == ["fn-heavy.json", "fp-heavy.json"]
