"""The dynamic-scenario subsystem: specs, plans, and the serving drive.

The serving-path contract under test: a scenario's matrix, delivered as
multi-session multi-source traffic with duplicates, reorders and
abandonment, must serve estimates **bit-identical** to the
acknowledged-batch replay oracle — and the whole drive must be
deterministic enough to byte-pin.
"""

from __future__ import annotations

import json

import pytest

from repro.common.exceptions import ConfigurationError
from repro.scenarios import (
    Scenario,
    ScenarioRunner,
    SessionDynamics,
    build_delivery_plans,
    drive_scenario,
    get_scenario,
)
from repro.scenarios.dynamics import fleet_config
from repro.serving.loadgen import LoadGenerator, replay_applied_batches
from repro.streaming.serving import EstimationService


def dynamic_scenario(**overrides) -> Scenario:
    base = get_scenario("baseline-uniform")
    knobs = {
        "num_sessions": 2,
        "sources_per_session": 2,
        "columns_per_batch": 3,
        "duplicate_every": 2,
        "reorder_every": 3,
        "abandon_rate": 0.4,
    }
    knobs.update(overrides)
    dynamics = SessionDynamics(**knobs)
    return Scenario(
        name="dyn-unit",
        description="unit-test dynamic scenario",
        dataset=base.dataset,
        regime=base.regime,
        assignment=base.assignment,
        seed=21,
        dynamics=dynamics,
    )


class TestSessionDynamicsSpec:
    def test_round_trips_through_json(self):
        dynamics = SessionDynamics(
            num_sessions=3,
            loop_delay_s=(0.1, 0.5),
            duplicate_every=2,
            abandon_rate=0.25,
        )
        rebuilt = SessionDynamics.from_dict(
            json.loads(json.dumps(dynamics.to_dict()))
        )
        assert rebuilt == dynamics

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="dynamics keys"):
            SessionDynamics.from_dict({"num_sessions": 2, "burst": 1})

    def test_rejects_inverted_delay_range(self):
        with pytest.raises(ConfigurationError, match="loop_delay_s"):
            SessionDynamics(loop_delay_s=(0.5, 0.1))

    def test_rejects_bad_counts(self):
        with pytest.raises(Exception):
            SessionDynamics(num_sessions=0)
        with pytest.raises(Exception):
            SessionDynamics(abandon_rate=1.5)

    def test_scenario_serialisation_omits_absent_dynamics(self):
        """Scenarios without dynamics serialise exactly as before the
        field existed — the byte-stability contract of old goldens."""
        plain = get_scenario("baseline-uniform")
        assert "dynamics" not in plain.to_dict()
        assert "trace" not in plain.to_dict()
        dyn = dynamic_scenario()
        assert "dynamics" in dyn.to_dict()
        assert Scenario.from_dict(json.loads(json.dumps(dyn.to_dict()))) == dyn


class TestDeliveryPlans:
    def test_plans_are_deterministic_and_cover_every_column_once(self):
        scenario = dynamic_scenario(abandon_rate=0.0, reorder_every=0)
        matrix = ScenarioRunner().simulate(scenario).matrix
        plans_a = build_delivery_plans(scenario, matrix)
        plans_b = build_delivery_plans(scenario, matrix)
        assert plans_a == plans_b
        # Without abandonment/reorder, the non-retry deliveries carry
        # every matrix column exactly once.
        delivered = sum(
            len(d.columns)
            for plan in plans_a
            for d in plan
            if not d.is_retry
        )
        assert delivered == matrix.num_columns

    def test_retry_twins_repeat_source_and_sequence(self):
        scenario = dynamic_scenario(abandon_rate=0.0, duplicate_every=1)
        matrix = ScenarioRunner().simulate(scenario).matrix
        for plan in build_delivery_plans(scenario, matrix):
            originals = [d for d in plan if not d.is_retry]
            retries = [d for d in plan if d.is_retry]
            assert len(retries) == len(originals)
            for original, retry in zip(originals, retries):
                assert retry.source == original.source
                assert retry.sequence == original.sequence
                assert retry.columns == original.columns

    def test_each_source_owns_one_idempotency_stream(self):
        scenario = dynamic_scenario(abandon_rate=0.0, reorder_every=0)
        matrix = ScenarioRunner().simulate(scenario).matrix
        for plan in build_delivery_plans(scenario, matrix):
            sources = {d.source for d in plan}
            assert len(sources) == 1
            sequences = [d.sequence for d in plan if not d.is_retry]
            assert sequences == sorted(sequences)

    def test_requires_a_dynamics_block(self):
        plain = get_scenario("baseline-uniform")
        matrix = ScenarioRunner().simulate(plain).matrix
        with pytest.raises(ConfigurationError, match="no dynamics block"):
            build_delivery_plans(plain, matrix)
        with pytest.raises(ConfigurationError, match="no dynamics block"):
            fleet_config(plain, matrix.num_items)


class TestServingDrive:
    def test_served_estimates_match_replay_oracle_bit_for_bit(self):
        scenario = dynamic_scenario()
        matrix = ScenarioRunner().simulate(scenario).matrix
        drive = drive_scenario(scenario, matrix)
        assert drive.serving_matches_replay
        # The fault injection actually fired: planned retries acknowledged
        # as duplicates, and reordered batches dropped as late.
        assert drive.report.duplicate_acks > 0
        assert drive.report.late_drops > 0

    def test_serial_drive_is_deterministic(self):
        scenario = dynamic_scenario()
        matrix = ScenarioRunner().simulate(scenario).matrix
        stats_a = drive_scenario(scenario, matrix).stats()
        stats_b = drive_scenario(scenario, matrix).stats()
        assert stats_a == stats_b

    def test_runner_records_the_serving_equivalence_flag(self):
        scenario = dynamic_scenario()
        trajectory = ScenarioRunner().run(scenario)
        assert trajectory.equivalence["serving_vs_replay"] is True
        assert trajectory.dynamics_stats is not None
        assert "dynamics" in trajectory.payload()
        assert (
            trajectory.payload()["dynamics"]["deliveries"]
            == trajectory.dynamics_stats["deliveries"]
        )

    def test_plain_scenarios_keep_the_three_key_equivalence(self):
        trajectory = ScenarioRunner().run(get_scenario("baseline-uniform"))
        assert set(trajectory.equivalence) == {
            "batch_vs_sweep",
            "streaming_vs_sweep",
            "perm_batch_vs_sweep",
        }
        assert trajectory.dynamics_stats is None
        assert "dynamics" not in trajectory.payload()

    def test_threaded_loadgen_accepts_injected_plans(self):
        """The dynamics plans drive the stock LoadGenerator via its
        ``plans`` override; the replay oracle still pins the estimates."""
        scenario = dynamic_scenario()
        matrix = ScenarioRunner().simulate(scenario).matrix
        config = fleet_config(scenario, matrix.num_items)
        plans = build_delivery_plans(scenario, matrix)
        service = EstimationService()
        report = LoadGenerator(service, config).run(plans=plans)
        replayed = replay_applied_batches(report)
        for name, results in replayed.items():
            served = service.estimates(name)
            for estimator, result in results.items():
                assert served[estimator].estimate == result.estimate
                assert served[estimator].observed == result.observed
