"""ShardedEstimationService: hash routing, manifests, façade parity.

The sharding contract: a session lives on exactly one shard chosen by a
stable hash of its name, the shard count is recorded in the root
manifest and validated on reopen, and the façade is indistinguishable
from a single :class:`EstimationService` — ``N=1`` *is* one service.
"""

from __future__ import annotations

import json

import pytest

from repro.common.exceptions import ConfigurationError, ValidationError
from repro.common.labels import CLEAN, DIRTY
from repro.serving import (
    EstimationService,
    MemorySessionStore,
    ShardedEstimationService,
    shard_index,
)
from repro.streaming.serving import SHARD_MANIFEST_FILENAME

ESTIMATORS = ["voting", "chao92"]


def _batch(offset: int = 0):
    return [{offset % 4: DIRTY, (offset + 1) % 4: CLEAN}]


def _populate(service, names):
    for index, name in enumerate(names):
        service.create_session(name, range(4), ESTIMATORS)
        service.ingest(name, _batch(index), source="t", sequence=1)


class TestRouting:
    def test_shard_index_is_stable_and_in_range(self):
        for name in ("alpha", "beta", "tenant-042"):
            first = shard_index(name, 7)
            assert first == shard_index(name, 7)
            assert 0 <= first < 7
        assert shard_index("anything", 1) == 0

    def test_shard_index_validates_inputs(self):
        with pytest.raises(ValidationError):
            shard_index("ok", 0)
        with pytest.raises(ValidationError):
            shard_index("bad name!", 4)

    def test_sessions_land_on_their_hashed_shard_only(self, tmp_path):
        service = ShardedEstimationService(tmp_path, num_shards=4)
        names = [f"tenant-{i:02d}" for i in range(16)]
        _populate(service, names)
        for name in names:
            owner = service.shard_of(name)
            for index, shard in enumerate(service.shards):
                assert (name in shard.sessions()) == (index == owner)
        assert service.sessions() == sorted(names)

    def test_memory_backed_sharding_needs_no_root(self):
        service = ShardedEstimationService(num_shards=3)
        assert service.root is None
        assert not service.wal_enabled
        _populate(service, ["a", "b", "c"])
        assert service.sessions() == ["a", "b", "c"]


class TestRootManifest:
    def test_manifest_written_once_and_reused(self, tmp_path):
        ShardedEstimationService(tmp_path, num_shards=4)
        manifest = json.loads(
            (tmp_path / SHARD_MANIFEST_FILENAME).read_text(encoding="utf-8")
        )
        assert manifest["num_shards"] == 4
        reopened = ShardedEstimationService(tmp_path)  # count comes from disk
        assert reopened.num_shards == 4
        explicit = ShardedEstimationService(tmp_path, num_shards=4)
        assert explicit.num_shards == 4

    def test_mismatched_shard_count_rejected_on_reopen(self, tmp_path):
        ShardedEstimationService(tmp_path, num_shards=4)
        with pytest.raises(ConfigurationError, match="shard count mismatch"):
            ShardedEstimationService(tmp_path, num_shards=2)

    def test_unsupported_manifest_version_rejected(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / SHARD_MANIFEST_FILENAME).write_text(
            json.dumps({"format_version": 99, "num_shards": 2}), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="manifest version"):
            ShardedEstimationService(tmp_path)

    def test_sharded_root_survives_crash_and_reopen(self, tmp_path):
        service = ShardedEstimationService(tmp_path, num_shards=4)
        names = [f"tenant-{i:02d}" for i in range(8)]
        _populate(service, names)
        live = {name: service.estimates(name) for name in names}
        del service
        recovered = ShardedEstimationService(tmp_path)
        assert {name: recovered.estimates(name) for name in names} == live


class TestFacadeParity:
    def test_single_shard_matches_a_plain_service(self, tmp_path):
        sharded = ShardedEstimationService(tmp_path / "sharded", num_shards=1)
        plain = EstimationService(MemorySessionStore())
        for service in (sharded, plain):
            _populate(service, ["a", "b"])
            service.ingest("a", _batch(5), source="t", sequence=2)
        assert sharded.estimates("a") == plain.estimates("a")
        assert sharded.estimates("b") == plain.estimates("b")
        assert sharded.progress("a") == plain.progress("a")
        assert sharded.sessions() == plain.sessions()

    def test_idempotent_ingest_travels_through_the_shard(self, tmp_path):
        service = ShardedEstimationService(tmp_path, num_shards=3)
        service.create_session("a", range(4), ESTIMATORS)
        assert not service.ingest("a", _batch(), source="t", sequence=1).duplicate
        assert service.ingest("a", _batch(), source="t", sequence=1).duplicate

    def test_unknown_session_names_all_shards_error_cleanly(self, tmp_path):
        service = ShardedEstimationService(tmp_path, num_shards=2)
        with pytest.raises(ConfigurationError, match="unknown session"):
            service.estimates("ghost")

    def test_drop_compact_evict_and_counters_route_correctly(self, tmp_path):
        service = ShardedEstimationService(tmp_path, num_shards=2, max_active=1)
        names = [f"tenant-{i:02d}" for i in range(6)]
        _populate(service, names)
        for name in names:
            service.estimates(name)
        assert service.estimates_served >= len(names)
        assert service.sessions_evicted > 0  # max_active=1 per shard forced churn
        service.compact(names[0])
        owner = service.shards[service.shard_of(names[0])]
        assert owner.store.log_size(names[0]) == 0
        service.drop(names[0])
        assert names[0] not in service.sessions()
        victim = service.evict()
        assert victim is None or victim in names

    def test_restore_foreign_snapshot_routes_by_hash(self, tmp_path):
        donor = EstimationService(MemorySessionStore())
        donor.create_session("imported", range(4), ESTIMATORS)
        donor.ingest("imported", _batch(), source="t", sequence=1)
        snapshot = donor.snapshot("imported")
        service = ShardedEstimationService(tmp_path, num_shards=3)
        service.restore("imported", snapshot)
        owner = service.shards[service.shard_of("imported")]
        assert "imported" in owner.sessions()
        assert service.estimates("imported") == donor.estimates("imported")
