"""Tests of the array-backend seam (registry, ops, kernels, dtypes).

Four layers, cheapest first:

* registry semantics — registration, env/default resolution, and the
  one-line ``ConfigurationError`` hygiene for unknown/unavailable names;
* per-op semantics — every seam operation compared against the NumPy
  reference for each backend available on this machine;
* compiled-kernel logic — the :mod:`repro.core._scan_kernels` loops are
  plain Python when Numba is absent, so their logic is pinned here against
  the vectorised formulation without needing Numba installed;
* dtype audit — the ``seen_cum`` int16/int32 promotion and the margin
  cumsum int32/int64 promotion, including a real scan past the int16
  boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.common.labels import CLEAN, DIRTY, UNSEEN
from repro.core import backend as backend_module
from repro.core.backend import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from repro.core.base import batch_estimates
from repro.core.registry import available_estimators, get_estimator
from repro.core.state import PermutationBatch
from repro.core.switch import (
    _SwitchScan,
    _margin_cumsum_dtype,
    _seen_count_dtype,
)
from repro.crowd.response_matrix import ResponseMatrix


def _random_matrix(num_items, num_columns, seed=11):
    rng = np.random.default_rng(seed)
    votes = rng.choice(
        [UNSEEN, CLEAN, DIRTY], size=(num_items, num_columns), p=[0.5, 0.2, 0.3]
    ).astype(np.int8)
    return ResponseMatrix.from_array(votes)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"numpy", "numba", "cupy", "torch"} <= set(registered_backends())

    def test_numpy_always_available_and_default(self):
        assert "numpy" in available_backends()
        assert get_backend().name == "numpy"
        assert get_backend("numpy") is get_backend("numpy")  # cached instance

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().name == "numpy"

    def test_env_var_unknown_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ConfigurationError, match=BACKEND_ENV_VAR):
            get_backend()

    def test_unknown_backend_lists_registered_and_available(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_backend("not-a-backend")
        message = str(excinfo.value)
        assert "registered:" in message
        assert "available here:" in message
        assert "\n" not in message  # one-line CLI hygiene

    def test_unavailable_backend_lists_available(self):
        missing = sorted(set(registered_backends()) - set(available_backends()))
        if not missing:
            pytest.skip("every registered backend is available on this machine")
        with pytest.raises(ConfigurationError, match="available here:"):
            get_backend(missing[0])

    def test_register_unregister_roundtrip(self):
        class Custom(NumpyBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            assert "custom-test" in registered_backends()
            assert get_backend("custom-test").name == "custom-test"
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend("custom-test", Custom)
            register_backend("custom-test", Custom, overwrite=True)
        finally:
            unregister_backend("custom-test")
        assert "custom-test" not in registered_backends()

    def test_reference_backend_cannot_be_removed(self):
        with pytest.raises(ConfigurationError, match="numpy"):
            unregister_backend("numpy")

    def test_resolve_backend_accepts_instance_name_and_none(self):
        instance = get_backend("numpy")
        assert resolve_backend(instance) is instance
        assert resolve_backend("numpy") is instance
        assert resolve_backend(None).name == "numpy"


@pytest.mark.parametrize("name", available_backends())
class TestOpSemantics:
    """Each seam op must reproduce the NumPy reference bit-for-bit."""

    @pytest.fixture
    def xp(self, name):
        return get_backend(name)

    def _roundtrip(self, xp, values):
        return xp.asnumpy(xp.asarray(values))

    def test_asarray_asnumpy_roundtrip(self, xp):
        values = np.array([[1, -2], [3, 0]], dtype=np.int32)
        out = self._roundtrip(xp, values)
        assert out.tolist() == values.tolist()
        assert out.dtype == values.dtype

    def test_constructors(self, xp):
        assert xp.asnumpy(xp.zeros((2, 3), np.int32)).tolist() == [[0, 0, 0]] * 2
        assert xp.asnumpy(xp.full((2,), 7, np.int64)).tolist() == [7, 7]
        assert xp.asnumpy(xp.arange(5, np.int64)).tolist() == [0, 1, 2, 3, 4]

    def test_astype(self, xp):
        values = xp.asarray(np.array([1, 0, 3], dtype=np.int8))
        assert xp.asnumpy(xp.astype(values, np.int32)).dtype == np.int32

    def test_cumsum_with_dtype_and_axis(self, xp):
        values = np.array([[1, 0, 1, 1], [0, 1, 1, 0]], dtype=np.int8)
        got = xp.asnumpy(xp.cumsum(xp.asarray(values), axis=1, dtype=np.int32))
        want = np.cumsum(values, axis=1, dtype=np.int32)
        assert got.tolist() == want.tolist()
        assert got.dtype == want.dtype

    def test_sum_with_axis_and_dtype(self, xp):
        values = np.arange(24, dtype=np.int8).reshape(2, 3, 4)
        got = xp.asnumpy(xp.sum(xp.asarray(values), axis=2, dtype=np.int32))
        assert got.tolist() == values.sum(axis=2, dtype=np.int32).tolist()

    def test_maximum_accumulate(self, xp):
        values = np.array([0, 3, 1, 5, 2], dtype=np.int64)
        got = xp.asnumpy(xp.maximum_accumulate(xp.asarray(values)))
        assert got.tolist() == np.maximum.accumulate(values).tolist()

    def test_where_and_nonzero(self, xp):
        values = np.array([1, 0, 2, 0, 3], dtype=np.int32)
        device = xp.asarray(values)
        got = xp.asnumpy(xp.where(device > 0, np.int32(1), np.int32(-1)))
        assert got.tolist() == [1, -1, 1, -1, 1]
        (indices,) = xp.nonzero(device)
        assert xp.asnumpy(indices).tolist() == [0, 2, 4]

    def test_bincount_with_weights(self, xp):
        values = np.array([0, 2, 2, 1, 0], dtype=np.int64)
        weights = np.array([1, -1, 1, 1, -1], dtype=np.int8)
        got = xp.asnumpy(
            xp.bincount(xp.asarray(values), weights=xp.asarray(weights), minlength=5)
        )
        want = np.bincount(values, weights=weights, minlength=5)
        assert np.asarray(got, dtype=np.float64).tolist() == want.tolist()

    def test_segment_sum_matches_add_at(self, xp):
        values = np.array([5, -2, 3, 1, 4], dtype=np.int64)
        segments = np.array([0, 2, 2, 1, 0], dtype=np.int64)
        got = xp.asnumpy(
            xp.segment_sum(xp.asarray(values), xp.asarray(segments), 4)
        )
        want = np.zeros(4, dtype=np.int64)
        np.add.at(want, segments, values)
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("side", ["left", "right"])
    def test_searchsorted_sides(self, xp, side):
        haystack = np.array([1, 3, 3, 7], dtype=np.int64)
        queries = np.array([0, 3, 8], dtype=np.int64)
        got = xp.asnumpy(
            xp.searchsorted(xp.asarray(haystack), xp.asarray(queries), side=side)
        )
        assert got.tolist() == np.searchsorted(haystack, queries, side=side).tolist()

    def test_argsort_is_stable(self, xp):
        values = np.array([2, 1, 2, 1, 2], dtype=np.int64)
        got = xp.asnumpy(xp.argsort_stable(xp.asarray(values)))
        assert got.tolist() == np.argsort(values, kind="stable").tolist()

    def test_sort_and_ascontiguous(self, xp):
        values = np.array([3, 1, 2], dtype=np.int64)
        assert xp.asnumpy(xp.sort(xp.asarray(values))).tolist() == [1, 2, 3]
        strided = np.arange(12, dtype=np.int32).reshape(3, 4).T
        out = xp.asnumpy(xp.ascontiguous(xp.asarray(strided)))
        assert out.tolist() == strided.tolist()


class _CompiledScansNumpy(NumpyBackend):
    """NumPy storage with ``compiled_scans`` forced on.

    Routes the scan hot path through :mod:`repro.core._scan_kernels`,
    which fall back to plain-Python loops when Numba is absent — so the
    kernel *logic* is testable on every machine, compiled or not.
    """

    name = "numpy-compiled-scans"
    compiled_scans = True


class TestScanKernelLogic:
    """The fused loops must match the vectorised formulation exactly."""

    def _assert_equal_estimates(self, matrix, orders, checkpoints):
        vectorised = PermutationBatch(matrix, orders, checkpoints)
        fused = PermutationBatch(
            matrix, orders, checkpoints, backend=_CompiledScansNumpy()
        )
        for name in available_estimators():
            estimator = get_estimator(name)
            got = batch_estimates(estimator, fused)
            want = batch_estimates(estimator, vectorised)
            for p in range(len(orders)):
                for a, b in zip(got[p], want[p]):
                    assert a.estimate == b.estimate, (name, p)
                    assert a.observed == b.observed, (name, p)
                    assert a.details == b.details, (name, p)

    def test_random_matrix(self):
        matrix = _random_matrix(25, 14)
        rng = np.random.default_rng(5)
        orders = [None, [int(i) for i in rng.permutation(14)]]
        self._assert_equal_estimates(matrix, orders, [0, 3, 7, 14])

    def test_degenerate_matrices(self):
        for fill in (CLEAN, DIRTY, UNSEEN):
            matrix = ResponseMatrix.from_array(np.full((5, 6), fill, dtype=np.int8))
            self._assert_equal_estimates(matrix, [None], [0, 2, 6])

    def test_zero_columns(self):
        matrix = ResponseMatrix.from_array(np.zeros((4, 0), dtype=np.int8))
        self._assert_equal_estimates(matrix, [None], [0])

    def test_scan_internals_match(self):
        matrix = _random_matrix(40, 9, seed=31)
        reference = _SwitchScan(matrix.values)
        fused = _SwitchScan(matrix.values, backend=_CompiledScansNumpy())
        np.testing.assert_array_equal(fused.seen_cum, reference.seen_cum)
        np.testing.assert_array_equal(fused.event_rows, reference.event_rows)
        np.testing.assert_array_equal(fused.event_cols, reference.event_cols)
        np.testing.assert_array_equal(fused.event_states, reference.event_states)
        np.testing.assert_array_equal(
            fused.event_vote_index, reference.event_vote_index
        )
        np.testing.assert_array_equal(fused.event_next_col, reference.event_next_col)
        np.testing.assert_array_equal(
            fused.vote_majority_delta, reference.vote_majority_delta
        )


class TestDtypeAudit:
    """Overflow guards on the scan hot path (satellite: dtype audit)."""

    def test_seen_count_dtype_boundary(self):
        boundary = int(np.iinfo(np.int16).max)  # 32767
        assert _seen_count_dtype(boundary - 1) == np.int16
        assert _seen_count_dtype(boundary) == np.int32
        assert _seen_count_dtype(boundary + 1) == np.int32

    def test_margin_cumsum_dtype_boundary(self):
        boundary = int(np.iinfo(np.int32).max)
        assert _margin_cumsum_dtype(boundary) == np.int32
        assert _margin_cumsum_dtype(boundary + 1) == np.int64

    def test_seen_cum_survives_int16_overflow(self):
        # One item, 40k columns, every vote seen: the running seen count
        # tops out at 40000 > int16 max.  With an int16 table this would
        # wrap negative; the promotion keeps it exact.
        num_columns = 40_000
        values = np.full((1, num_columns), DIRTY, dtype=np.int8)
        scan = _SwitchScan(values)
        assert scan.seen_cum.dtype == np.int32
        assert int(scan.seen_cum[0, -1]) == num_columns

    def test_narrow_matrix_keeps_int16(self):
        values = np.full((3, 16), DIRTY, dtype=np.int8)
        scan = _SwitchScan(values)
        assert scan.seen_cum.dtype == np.int16
        assert int(scan.seen_cum[0, -1]) == 16


class TestRunnerConfigValidation:
    def test_bad_backend_rejected_eagerly(self):
        from repro.experiments.runner import RunnerConfig

        with pytest.raises(ConfigurationError, match="unknown backend"):
            RunnerConfig(backend="not-a-backend")

    def test_unavailable_backend_rejected_eagerly(self):
        from repro.experiments.runner import RunnerConfig

        missing = sorted(set(registered_backends()) - set(available_backends()))
        if not missing:
            pytest.skip("every registered backend is available on this machine")
        with pytest.raises(ConfigurationError, match="available here:"):
            RunnerConfig(backend=missing[0])

    def test_metadata_records_backend(self):
        from repro.experiments.runner import EstimationRunner, RunnerConfig

        matrix = _random_matrix(12, 8)
        runner = EstimationRunner(
            ["voting"], RunnerConfig(num_permutations=2, num_checkpoints=3)
        )
        result = runner.run(matrix)
        assert result.metadata["backend"] == "numpy"
