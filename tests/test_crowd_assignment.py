"""Tests for the task-assignment strategies."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.common.exceptions import ConfigurationError
from repro.crowd.assignment import (
    FixedQuorumAssigner,
    PrioritizedAssigner,
    SkewedAssigner,
    Task,
    UniformRandomAssigner,
)


class TestUniformRandomAssigner:
    def test_task_size_respected(self):
        assigner = UniformRandomAssigner(list(range(50)), items_per_task=10, seed=0)
        task = assigner.next_task()
        assert len(task) == 10

    def test_no_repeats_within_a_task(self):
        assigner = UniformRandomAssigner(list(range(30)), items_per_task=15, seed=1)
        for task in assigner.tasks(20):
            assert len(set(task.item_ids)) == len(task.item_ids)

    def test_task_ids_sequential(self):
        assigner = UniformRandomAssigner(list(range(20)), items_per_task=5, seed=2)
        tasks = assigner.tasks(4)
        assert [t.task_id for t in tasks] == [0, 1, 2, 3]

    def test_items_come_from_candidate_set(self):
        candidate_ids = [100, 200, 300, 400, 500]
        assigner = UniformRandomAssigner(candidate_ids, items_per_task=3, seed=3)
        for task in assigner.tasks(10):
            assert set(task.item_ids) <= set(candidate_ids)

    def test_coverage_grows_with_tasks(self):
        assigner = UniformRandomAssigner(list(range(100)), items_per_task=10, seed=4)
        seen = set()
        for task in assigner.tasks(50):
            seen.update(task.item_ids)
        # 500 draws over 100 items should touch almost everything.
        assert len(seen) > 90

    def test_empty_candidate_set_rejected(self):
        with pytest.raises(ConfigurationError, match="empty candidate set"):
            UniformRandomAssigner([], items_per_task=1)

    def test_oversized_task_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            UniformRandomAssigner([1, 2, 3], items_per_task=10)

    def test_deterministic_for_seed(self):
        a = UniformRandomAssigner(list(range(40)), items_per_task=5, seed=7).tasks(5)
        b = UniformRandomAssigner(list(range(40)), items_per_task=5, seed=7).tasks(5)
        assert [t.item_ids for t in a] == [t.item_ids for t in b]


class TestPrioritizedAssigner:
    def test_epsilon_zero_draws_only_ambiguous(self):
        assigner = PrioritizedAssigner(
            list(range(50)), list(range(50, 100)), items_per_task=10, epsilon=0.0, seed=0
        )
        for task in assigner.tasks(20):
            assert all(item < 50 for item in task.item_ids)

    def test_epsilon_one_draws_only_complement(self):
        assigner = PrioritizedAssigner(
            list(range(50)), list(range(50, 100)), items_per_task=10, epsilon=1.0, seed=0
        )
        for task in assigner.tasks(20):
            assert all(item >= 50 for item in task.item_ids)

    def test_intermediate_epsilon_mixes_roughly_proportionally(self):
        assigner = PrioritizedAssigner(
            list(range(200)), list(range(200, 400)), items_per_task=10, epsilon=0.2, seed=1
        )
        counts = Counter()
        for task in assigner.tasks(200):
            for item in task.item_ids:
                counts["complement" if item >= 200 else "ambiguous"] += 1
        complement_fraction = counts["complement"] / sum(counts.values())
        assert complement_fraction == pytest.approx(0.2, abs=0.05)

    def test_falls_back_when_one_side_empty(self):
        assigner = PrioritizedAssigner(
            list(range(20)), [], items_per_task=5, epsilon=0.5, seed=2
        )
        task = assigner.next_task()
        assert len(task) == 5
        assert all(item < 20 for item in task.item_ids)

    def test_no_repeats_within_task(self):
        assigner = PrioritizedAssigner(
            list(range(10)), list(range(10, 20)), items_per_task=8, epsilon=0.3, seed=3
        )
        for task in assigner.tasks(10):
            assert len(set(task.item_ids)) == len(task.item_ids)

    def test_both_sides_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            PrioritizedAssigner([], [], items_per_task=5)


class TestFixedQuorumAssigner:
    def test_every_item_reviewed_quorum_times(self):
        assigner = FixedQuorumAssigner(list(range(30)), quorum=3, items_per_task=10, seed=0)
        counts = Counter()
        for task in assigner.tasks():
            counts.update(task.item_ids)
        # Greedy de-duplication may drop the odd slot, but coverage must be
        # at least quorum-1 everywhere and exactly quorum for most items.
        assert all(count >= 2 for count in counts.values())
        assert sum(1 for c in counts.values() if c == 3) >= 25

    def test_num_tasks_formula(self):
        assigner = FixedQuorumAssigner(list(range(100)), quorum=3, items_per_task=10, seed=0)
        assert assigner.num_tasks() == 30

    def test_num_tasks_rounds_up(self):
        assigner = FixedQuorumAssigner(list(range(7)), quorum=3, items_per_task=10, seed=0)
        assert assigner.num_tasks() == 3

    def test_task_size_bounded(self):
        assigner = FixedQuorumAssigner(list(range(25)), quorum=2, items_per_task=10, seed=1)
        assert all(len(task) <= 10 for task in assigner.tasks())

    def test_empty_items_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedQuorumAssigner([], quorum=3)


class TestSkewedAssigner:
    def test_tasks_sample_without_replacement_within_a_task(self):
        assigner = SkewedAssigner(list(range(50)), items_per_task=10, seed=0)
        for task in assigner.tasks(20):
            assert len(task.item_ids) == 10
            assert len(set(task.item_ids)) == 10

    def test_attention_is_skewed_towards_a_head(self):
        """With a Zipf exponent the busiest item dwarfs the quietest."""
        assigner = SkewedAssigner(
            list(range(100)), items_per_task=5, exponent=1.5, seed=7
        )
        counts = Counter()
        for task in assigner.tasks(300):
            counts.update(task.item_ids)
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] >= 5 * max(1, min(counts.values(), default=1))

    def test_zero_exponent_is_roughly_uniform(self):
        assigner = SkewedAssigner(
            list(range(20)), items_per_task=5, exponent=0.0, seed=3
        )
        counts = Counter()
        for task in assigner.tasks(400):
            counts.update(task.item_ids)
        assert len(counts) == 20
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_deterministic_per_seed(self):
        a = SkewedAssigner(list(range(30)), items_per_task=4, exponent=1.0, seed=11)
        b = SkewedAssigner(list(range(30)), items_per_task=4, exponent=1.0, seed=11)
        assert [t.item_ids for t in a.tasks(15)] == [t.item_ids for t in b.tasks(15)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SkewedAssigner([], items_per_task=2)
        with pytest.raises(ConfigurationError):
            SkewedAssigner([1, 2], items_per_task=3)
        with pytest.raises(ConfigurationError):
            SkewedAssigner([1, 2, 3], items_per_task=2, exponent=-0.5)

    def test_task_ids_are_sequential(self):
        assigner = SkewedAssigner(list(range(10)), items_per_task=3, seed=0)
        assert [t.task_id for t in assigner.tasks(5)] == [0, 1, 2, 3, 4]


class TestTask:
    def test_len(self):
        assert len(Task(task_id=0, item_ids=(1, 2, 3))) == 3
